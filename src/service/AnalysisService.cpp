//===----------------------------------------------------------------------===//
///
/// \file
/// AnalysisService implementation.
///
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "analysis/SummaryIO.h"
#include "engine/TieredStore.h"
#include "ir/Validator.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace dynsum;
using namespace dynsum::service;
using incremental::CommitOutcome;
using incremental::CommitStats;
using incremental::InvalidationPlan;
using incremental::InvalidationPolicy;

//===----------------------------------------------------------------------===//
// CommitTicket
//===----------------------------------------------------------------------===//

bool CommitTicket::done() const {
  if (!S)
    return false;
  std::lock_guard<std::mutex> Lock(S->M);
  return S->Done;
}

CommitStats CommitTicket::wait() const {
  assert(S && "waiting on an invalid ticket");
  std::unique_lock<std::mutex> Lock(S->M);
  S->Cv.wait(Lock, [this] { return S->Done; });
  return S->Stats;
}

uint64_t CommitTicket::generation() const {
  assert(S && "waiting on an invalid ticket");
  std::unique_lock<std::mutex> Lock(S->M);
  S->Cv.wait(Lock, [this] { return S->Done; });
  return S->Generation;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

AnalysisService::AnalysisService(std::unique_ptr<ir::Program> P,
                                 ServiceOptions Opts)
    : Opts(std::move(Opts)), Prog(std::move(P)),
      Store(this->Opts.StoreStripes) {
  // Parallel commit budgets get a persistent pool once, here, so every
  // phase of every commit reuses the same threads instead of spawning
  // fresh ones per phase.
  if (!this->Opts.Commit.Pool && this->Opts.Commit.threads() > 1)
    this->Opts.Commit.Pool =
        std::make_shared<support::WorkerPool>(this->Opts.Commit.Budget);
  publish(buildFirstGeneration()); // generation 0, store is empty
  CommittedClock = Prog->modClock();
  // Warm restart: attach the previous run's shutdown snapshot as the
  // store's read-only disk tier.  Nothing is loaded eagerly — queries
  // that miss the hot tier probe the mapped file and promote hits.  A
  // refused attach (missing file, damage, fingerprint mismatch) just
  // means a cold start; it is never an error.
  if (!this->Opts.WarmFromDiskPath.empty())
    Store.attachDiskTier(this->Opts.WarmFromDiskPath,
                         *current()->Built->Graph);
}

AnalysisService::~AnalysisService() {
  {
    std::lock_guard<std::mutex> Lock(AsyncMutex);
    AsyncStop = true;
    WorkCv.notify_all();
  }
  if (Committer.joinable())
    Committer.join();
  // The warmer stops after the committer: the committer's last commit
  // may have queued one final warm job, and the warmer drains its
  // pending slot before exiting, so the shutdown snapshot below covers
  // the warmed summaries too.
  {
    std::lock_guard<std::mutex> Lock(WarmMutex);
    WarmStop = true;
    WarmCv.notify_all();
  }
  if (Warmer.joinable())
    Warmer.join();
  // Graceful snapshot-to-disk: best effort, after the committer has
  // drained so the snapshot covers every accepted commit.  Shutdown
  // must never throw; a failed save just means a cold next start.
  if (!Opts.SnapshotOnShutdownPath.empty()) {
    try {
      saveSummaries(Opts.SnapshotOnShutdownPath);
    } catch (...) {
    }
  }
}

std::shared_ptr<const AnalysisService::Generation>
AnalysisService::buildFirstGeneration() {
  auto G = std::make_shared<Generation>();
  G->Number = Store.generation();
  G->NumVars = Prog->variables().size();
  G->Built = std::make_shared<pag::BuiltPAG>(
      pag::buildPAG(*Prog, nullptr, Opts.Commit));
  G->Engine = std::make_unique<engine::QueryScheduler>(
      *G->Built->Graph, Opts.Engine, Store, G->Number);
  return G;
}

void AnalysisService::publish(std::shared_ptr<const Generation> G) {
  std::lock_guard<std::mutex> Lock(GenMutex);
  if (Current) {
    History.push_back(std::move(Current));
    while (History.size() > Opts.KeepGenerations)
      History.pop_front();
  }
  Current = std::move(G);
}

std::shared_ptr<const AnalysisService::Generation>
AnalysisService::current() const {
  std::lock_guard<std::mutex> Lock(GenMutex);
  return Current;
}

std::shared_ptr<const AnalysisService::Generation>
AnalysisService::findGeneration(uint64_t Number) const {
  std::lock_guard<std::mutex> Lock(GenMutex);
  if (Current && Current->Number == Number)
    return Current;
  for (const std::shared_ptr<const Generation> &G : History)
    if (G->Number == Number)
      return G;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Edits
//===----------------------------------------------------------------------===//

void AnalysisService::addStatement(ir::MethodId M, ir::Statement S) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  Prog->addStatement(M, std::move(S)); // stamps M on the edit clock
}

size_t AnalysisService::removeStatements(
    ir::MethodId M, const std::function<bool(const ir::Statement &)> &Pred) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  return Prog->removeStatements(M, Pred); // stamps M on the edit clock
}

void AnalysisService::markDirty(ir::MethodId M) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  Prog->touchMethod(M);
}

void AnalysisService::editProgram(
    const std::function<std::vector<ir::MethodId>(ir::Program &)> &Edit) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  for (ir::MethodId M : Edit(*Prog))
    Prog->touchMethod(M);
}

bool AnalysisService::dirty() const {
  std::lock_guard<std::mutex> Lock(EditMutex);
  return Prog->modClock() != CommittedClock;
}

//===----------------------------------------------------------------------===//
// Commits
//===----------------------------------------------------------------------===//

CommitStats AnalysisService::commitLocked(CommitMode Mode) {
  if (Prog->modClock() == CommittedClock)
    return {};

  Timer Clock;
  CommitStats Stats;
  Stats.Outcome = CommitOutcome::Committed;
  Stats.SummariesBefore = Store.size();
  const support::ExecContext &Exec = Opts.Commit;

  // Pre-commit gate: validate exactly the methods this commit would
  // re-lower (O(dirty), not O(program)).  A rejected commit leaves
  // everything — generation chain, store, boundary cache, committed
  // clock — untouched; the edits stay buffered until fixed.
  if (Opts.ValidateCommits) {
    std::vector<std::string> Problems = ir::validateMethods(
        *Prog, Prog->methodsTouchedSince(CommittedClock));
    if (!Problems.empty()) {
      Stats.Outcome = CommitOutcome::ValidationRejected;
      Stats.Error = Problems.front();
      if (Problems.size() > 1)
        Stats.Error +=
            " (+" + std::to_string(Problems.size() - 1) + " more)";
      Stats.Seconds = Clock.seconds();
      CommitValidationRejects.fetch_add(1, std::memory_order_relaxed);
      return Stats;
    }
  }

  // The pre-edit boundary flags are usually carried forward from the
  // previous commit (CachedBoundary); whether they can be patched in
  // O(delta) or must be re-diffed in full is decided after the delta
  // build below.  The old generation's graph is immutable, so a full
  // sweep — needed only on the first commit and after rollback or a
  // ClearAll commit — can equally run after the build.
  std::shared_ptr<const Generation> Old = current();
  const bool CarriedValid = CachedBoundaryGen == Old->Number;
  CachedBoundaryGen = kNoBoundaryGen;

  // Pre-summarization scope: ClearAll drops every summary, so only a
  // full warm makes sense regardless of the configured scope.  The
  // invalidated-method set is captured from the plan below.
  const bool WarmAll =
      Opts.Presummarize && (Opts.Policy == InvalidationPolicy::ClearAll ||
                            Opts.WarmScope == PresummarizeScope::All);
  std::unordered_set<ir::MethodId> WarmMethods;

  // Everything below, up to the publish, is failure-isolated: the new
  // generation is built on a private copy-on-write snapshot, so a
  // throw anywhere in the pipeline (a lowering worker, an allocation
  // failure) just abandons that snapshot — the old generation's chunks
  // are immutable while shared, the committed clock has not advanced,
  // and no store invalidation has run yet.  The boundary carry was
  // invalidated above, so the next commit re-sweeps; that costs one
  // full diff, never correctness.
  try {
    // Snapshot the previous epoch's graph.  Storage is chunked and
    // copy-on-write, so this "clone" is a chunk-table copy plus
    // refcount bumps — O(tables), independent of graph size — and the
    // delta build below splits only the chunks the edit touches.  The
    // old generation keeps serving in-flight batches untouched the
    // whole time (its chunks are immutable while shared); node ids are
    // shared between the two graphs by construction.
    Timer CloneClock;
    support::faultPoint("commit.snapshot");
    auto NewBuilt = std::make_shared<pag::BuiltPAG>();
    NewBuilt->Graph = std::make_unique<pag::PAG>(*Old->Built->Graph);
    NewBuilt->Calls = Old->Built->Calls;
    Stats.CloneSeconds = CloneClock.seconds();
    pag::DeltaStats Delta = pag::buildPAGDelta(
        *NewBuilt->Graph, NewBuilt->Calls, nullptr,
        /*ForceFull=*/Mode == CommitMode::Scratch, Exec);
    Stats.MethodsRelowered = Delta.Relowered.size();
    Stats.ShapeSeconds = Delta.ShapeSeconds;
    Stats.LowerSeconds = Delta.LowerSeconds;
    Stats.ApplySeconds = Delta.ApplySeconds;
    Stats.RepackSeconds = Delta.RepackSeconds;

    if (Opts.Policy == InvalidationPolicy::ClearAll) {
      Stats.SummariesDropped = Store.size();
      Store.clear(); // bumps the store generation
    } else {
      std::unordered_set<ir::MethodId> Dirty(Delta.Touched.begin(),
                                             Delta.Touched.end());
      // Fast path: the carried snapshot plus the repack's own
      // dirty-node list give an O(delta) plan.  A compaction (or an
      // invalidated carry) rederived every flag, so fall back to the
      // full position-for-position diff and recapture the snapshot
      // from it.
      InvalidationPlan Plan;
      if (CarriedValid && !NewBuilt->Graph->lastRepackCompacted()) {
        Plan = incremental::patchInvalidation(
            CachedBoundary, *NewBuilt->Graph,
            NewBuilt->Graph->lastRepackAffectedNodes(), Dirty);
      } else {
        incremental::BoundarySnapshot OldBoundary =
            CarriedValid
                ? std::move(CachedBoundary)
                : incremental::snapshotBoundary(*Old->Built->Graph, Exec);
        incremental::BoundarySnapshot NewBoundary;
        Plan = incremental::planInvalidation(OldBoundary, *NewBuilt->Graph,
                                             Dirty, Exec, &NewBoundary);
        CachedBoundary = std::move(NewBoundary);
      }
      Stats.MethodsInvalidated = Plan.Methods.size();
      Stats.SummariesDropped = Store.beginGeneration(*NewBuilt->Graph, Plan);
      if (Opts.Presummarize && !WarmAll)
        WarmMethods = Plan.Methods;
    }
    Stats.SharedSummariesDropped = Stats.SummariesDropped;

    // Publish: from here on new batches pin the new generation;
    // batches that already grabbed Old keep it alive and drain against
    // it (their store epoch went stale with the bump above, so they
    // compute privately and never cross-contaminate).
    auto NewGen = std::make_shared<Generation>();
    NewGen->Number = Store.generation();
    NewGen->NumVars = Prog->variables().size();
    NewGen->Built = std::move(NewBuilt);
    NewGen->Engine = std::make_unique<engine::QueryScheduler>(
        *NewGen->Built->Graph, Opts.Engine, Store, NewGen->Number);
    // The invalidation diff captured the new graph's boundary flags
    // into CachedBoundary; stamp them with the generation they
    // describe.  A ClearAll commit skipped the diff, so its next
    // commit re-sweeps.
    if (Opts.Policy != InvalidationPolicy::ClearAll)
      CachedBoundaryGen = NewGen->Number;
    publish(std::move(NewGen));
  } catch (const std::exception &E) {
    Stats.Outcome = CommitOutcome::BuildFailed;
    Stats.Error = E.what();
    Stats.Seconds = Clock.seconds();
    CommitFailures.fetch_add(1, std::memory_order_relaxed);
    return Stats;
  }

  CommittedClock = Prog->modClock();
  // A published commit proves the buffered edits are good again: lift
  // any poison-edit quarantine (see committerLoop).
  QuarantineActive = false;
  Stats.Seconds = Clock.seconds();
  Commits.fetch_add(1, std::memory_order_relaxed);
  SharedDropped.fetch_add(Stats.SummariesDropped, std::memory_order_relaxed);
  uint64_t Micros = uint64_t(Stats.Seconds * 1e6);
  LastCommitMicros.store(Micros, std::memory_order_relaxed);
  TotalCommitMicros.fetch_add(Micros, std::memory_order_relaxed);
  LastCommitRelowered.store(Stats.MethodsRelowered,
                            std::memory_order_relaxed);
  if (Opts.Presummarize)
    scheduleWarm(WarmAll, WarmMethods);
  return Stats;
}

void AnalysisService::completeTicket(
    const std::shared_ptr<CommitTicket::State> &S, const CommitStats &Stats,
    uint64_t Generation) {
  std::lock_guard<std::mutex> Lock(S->M);
  S->Stats = Stats;
  S->Generation = Generation;
  S->Done = true;
  S->Cv.notify_all();
}

CommitTicket AnalysisService::submitCommit(const CommitRequest &Req) {
  if (!Req.Background) {
    auto S = std::make_shared<CommitTicket::State>();
    CommitStats Stats;
    uint64_t Gen = 0;
    {
      std::lock_guard<std::mutex> Lock(EditMutex);
      Stats = commitLocked(Req.Mode);
      Gen = current()->Number;
    }
    completeTicket(S, Stats, Gen);
    return CommitTicket(std::move(S));
  }

  // Background: attach to the coalesced pending slot.  A request
  // arriving while a commit is queued shares that commit's ticket state
  // — the covering commit publishes every edit buffered before it grabs
  // the edit lock, so one completion answers them all (Scratch wins
  // when modes mix).  A request arriving while a commit is only *in
  // flight* starts a fresh pending slot: its edits may have missed that
  // commit's cutoff, so it must be covered by a follow-up.
  std::lock_guard<std::mutex> Lock(AsyncMutex);
  AsyncRequested.fetch_add(1, std::memory_order_relaxed);
  // Backlog watermark: when the pending slot has already absorbed
  // MaxCommitBacklog requests, shed this one instead of queueing more.
  // Shedding loses nothing — the edits stay buffered and the pending
  // commit covers them — it only tells the submitter to back off.
  if (Opts.Overload.MaxCommitBacklog != 0 && PendingTicket &&
      PendingCoalesced >= Opts.Overload.MaxCommitBacklog) {
    CommitsShed.fetch_add(1, std::memory_order_relaxed);
    auto S = std::make_shared<CommitTicket::State>();
    CommitStats Shed;
    Shed.Outcome = CommitOutcome::Shed;
    Shed.Error = "background commit backlog over watermark";
    completeTicket(S, Shed, current()->Number);
    return CommitTicket(std::move(S));
  }
  if (PendingTicket || AsyncInFlight)
    AsyncCoalesced.fetch_add(1, std::memory_order_relaxed);
  if (!PendingTicket) {
    PendingTicket = std::make_shared<CommitTicket::State>();
    PendingMode = CommitMode::Delta;
    PendingCoalesced = 0;
  }
  ++PendingCoalesced;
  if (Req.Mode == CommitMode::Scratch)
    PendingMode = CommitMode::Scratch; // scratch wins when modes mix
  if (!Committer.joinable())
    Committer = std::thread([this] { committerLoop(); });
  WorkCv.notify_one();
  return CommitTicket(PendingTicket);
}

//===----------------------------------------------------------------------===//
// Background committer
//===----------------------------------------------------------------------===//
//
// One background committer drains a single coalesced request slot: a
// commit covers every edit buffered before it grabs the edit lock, so
// any number of requests queued while one is in flight collapse into
// one follow-up commit without losing anything.  The committer publishes
// through the same epoch handoff as foreground commits — readers never
// see a half-built generation, they just keep draining the previous
// snapshot until the atomic pointer swap.

void AnalysisService::committerLoop() {
  std::unique_lock<std::mutex> Lock(AsyncMutex);
  for (;;) {
    WorkCv.wait(Lock, [this] { return PendingTicket != nullptr || AsyncStop; });
    if (!PendingTicket) // stop requested and queue drained
      return;
    CommitMode Mode = PendingMode;
    std::shared_ptr<CommitTicket::State> Ticket = std::move(PendingTicket);
    PendingTicket = nullptr;
    PendingMode = CommitMode::Delta;
    PendingCoalesced = 0;
    AsyncInFlight = true;
    Lock.unlock();

    // Failure policy: a commit whose build threw (a transient fault)
    // is retried with capped exponential backoff; a validation
    // rejection is deterministic and never retried.  Either way a
    // commit that stays bad arms the poison-edit quarantine — further
    // background requests fail fast until the edit clock moves (new
    // edits arrive) or a commit succeeds (foreground commits always
    // run and lift the quarantine on success).
    CommitStats Stats;
    uint64_t Gen = 0;
    unsigned Attempt = 0;
    for (;;) {
      bool Retry = false;
      {
        std::lock_guard<std::mutex> Edit(EditMutex);
        if (QuarantineActive && Prog->modClock() == QuarantineClock) {
          Stats = CommitStats();
          Stats.Outcome = CommitOutcome::Quarantined;
          Stats.Error =
              "edit set quarantined after repeated commit failures";
          CommitsQuarantined.fetch_add(1, std::memory_order_relaxed);
        } else {
          Stats = commitLocked(Mode);
          if (Stats.Outcome == CommitOutcome::BuildFailed &&
              Attempt < Opts.BackgroundCommitRetries) {
            Retry = true;
          } else if (Stats.Outcome == CommitOutcome::BuildFailed ||
                     Stats.Outcome == CommitOutcome::ValidationRejected) {
            QuarantineActive = true;
            QuarantineClock = Prog->modClock();
          }
        }
        Gen = current()->Number;
      }
      if (!Retry)
        break;
      ++Attempt;
      CommitRetries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(1u << (Attempt - 1), 50u)));
    }
    completeTicket(Ticket, Stats, Gen);
    Lock.lock();
    AsyncInFlight = false;
    IdleCv.notify_all();
  }
}

void AnalysisService::waitForCommits() {
  std::unique_lock<std::mutex> Lock(AsyncMutex);
  IdleCv.wait(Lock, [this] { return !PendingTicket && !AsyncInFlight; });
}

//===----------------------------------------------------------------------===//
// Post-commit pre-summarization
//===----------------------------------------------------------------------===//
//
// A successful commit queues one warm job: the variables whose
// summaries the commit just dropped (plus the recently-queried hot
// set, scope permitting), against the generation it published.  A
// single warmer thread runs jobs newest-wins — a commit racing ahead
// of a queued pass simply replaces it, and a pass racing a commit is
// harmless because it publishes through an epoch pinned to its own
// generation: the store's gate drops stale entries.  The pass fans out
// over the commit ExecContext; WorkerPool::run is internally
// serialized, so sharing the committer's pool costs ordering, never
// correctness.

void AnalysisService::scheduleWarm(
    bool All, const std::unordered_set<ir::MethodId> &Methods) {
  std::shared_ptr<const Generation> Gen = current();
  const bool UseHot = !All && (Opts.WarmScope == PresummarizeScope::Hot ||
                               Opts.WarmScope ==
                                   PresummarizeScope::HotAndInvalidated);
  const bool UseInvalidated =
      !All && Opts.WarmScope != PresummarizeScope::Hot;
  std::unordered_set<ir::VarId> Hot;
  if (UseHot) {
    std::lock_guard<std::mutex> Lock(HotMutex);
    Hot = HotSet;
  }
  // Warm set per scope: recently-queried variables re-demand exactly
  // the dropped summaries on paths clients actually use (hot variables
  // whose summaries survived cost one store hit each — noise); the
  // invalidated-method scopes add every variable the edited methods
  // own, a speculative bet that new code is queried next.
  std::vector<ir::VarId> Vars;
  const std::vector<ir::Variable> &AllVars = Prog->variables();
  size_t Known = std::min(AllVars.size(), Gen->NumVars);
  for (size_t I = 0; I < Known; ++I) {
    if (All || (UseInvalidated && Methods.count(AllVars[I].Owner)) ||
        (UseHot && Hot.count(ir::VarId(I))))
      Vars.push_back(ir::VarId(I));
  }
  if (Vars.empty())
    return;

  std::lock_guard<std::mutex> Lock(WarmMutex);
  if (WarmStop)
    return;
  PendingWarm = WarmJob{std::move(Gen), std::move(Vars)}; // newest wins
  if (!Warmer.joinable())
    Warmer = std::thread([this] { warmerLoop(); });
  WarmCv.notify_one();
}

void AnalysisService::warmerLoop() {
  std::unique_lock<std::mutex> Lock(WarmMutex);
  for (;;) {
    WarmCv.wait(Lock,
                [this] { return PendingWarm.has_value() || WarmStop; });
    if (!PendingWarm) // stop requested and queue drained
      return;
    WarmJob Job = std::move(*PendingWarm);
    PendingWarm.reset();
    WarmInFlight = true;
    Lock.unlock();
    try {
      runWarmJob(Job);
    } catch (...) {
      // Best effort by contract: a failed pass costs cold queries
      // later, nothing else.
    }
    Lock.lock();
    WarmInFlight = false;
    WarmIdleCv.notify_all();
  }
}

void AnalysisService::runWarmJob(const WarmJob &Job) {
  if (Store.generation() != Job.Gen->Number)
    return; // superseded before it started
  WarmRunsCount.fetch_add(1, std::memory_order_relaxed);
  engine::SummaryStoreEpoch Epoch(Store, Job.Gen->Number);
  const pag::PAG &G = *Job.Gen->Built->Graph;
  std::atomic<uint64_t> Computed{0};
  parallelChunks(
      Job.Vars.size(), Opts.Commit, [&](size_t Begin, size_t End, unsigned) {
        analysis::DynSumAnalysis A(G, Opts.Engine.Analysis);
        A.setSummaryExchange(&Epoch);
        for (size_t I = Begin; I < End; ++I) {
          if (Store.generation() != Job.Gen->Number)
            break; // superseded mid-pass: stop burning cycles
          A.query(G.nodeOfVar(Job.Vars[I]));
        }
        Computed.fetch_add(A.stats().get("dynsum.pptaComputed"),
                           std::memory_order_relaxed);
      });
  WarmQueriesRun.fetch_add(Job.Vars.size(), std::memory_order_relaxed);
  WarmComputed.fetch_add(Computed.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

void AnalysisService::waitForWarm() {
  std::unique_lock<std::mutex> Lock(WarmMutex);
  WarmIdleCv.wait(Lock,
                  [this] { return !PendingWarm.has_value() && !WarmInFlight; });
}

//===----------------------------------------------------------------------===//
// Generation history
//===----------------------------------------------------------------------===//

std::vector<GenerationInfo> AnalysisService::generations() const {
  std::vector<std::shared_ptr<const Generation>> Gens;
  {
    std::lock_guard<std::mutex> Lock(GenMutex);
    Gens.assign(History.begin(), History.end());
    if (Current)
      Gens.push_back(Current);
  }
  std::vector<GenerationInfo> Out;
  Out.reserve(Gens.size());
  for (size_t I = 0; I < Gens.size(); ++I) {
    const Generation &G = *Gens[I];
    GenerationInfo Info;
    Info.Number = G.Number;
    Info.NumVars = G.NumVars;
    Info.IsCurrent = I + 1 == Gens.size();
    pag::PAGMemoryStats GraphMem = G.Built->Graph->memoryStats();
    support::ChunkMemoryStats CallMem = G.Built->Calls.memory();
    Info.TotalBytes = GraphMem.TotalBytes + CallMem.TotalBytes;
    Info.RetainedBytes =
        GraphMem.RetainedBytes + (CallMem.TotalBytes - CallMem.SharedBytes);
    Out.push_back(Info);
  }
  return Out;
}

std::optional<ServiceBatchResult>
AnalysisService::queryVarsAt(uint64_t Generation,
                             const std::vector<ir::VarId> &Vars) {
  std::shared_ptr<const AnalysisService::Generation> Gen =
      findGeneration(Generation);
  if (!Gen)
    return std::nullopt;
  return runBatch(Gen, Vars, nullptr);
}

bool AnalysisService::rollback(uint64_t Generation) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  std::shared_ptr<const AnalysisService::Generation> R =
      findGeneration(Generation);
  if (!R)
    return false;

  // Summaries are validated by per-method diffs along the generation
  // lineage; republishing an older snapshot branches that lineage, so
  // entries validated on the abandoned branch cannot be trusted by any
  // future diff.  Drop them (the graphs themselves share chunks safely
  // across the branch — refcounts are lineage-blind).
  Store.clear();

  auto NewGen = std::make_shared<AnalysisService::Generation>();
  NewGen->Number = Store.generation();
  NewGen->NumVars = R->NumVars;
  NewGen->Built = R->Built; // O(1): the snapshot is shared, not rebuilt
  NewGen->Engine = std::make_unique<engine::QueryScheduler>(
      *NewGen->Built->Graph, Opts.Engine, Store, NewGen->Number);
  publish(std::move(NewGen));

  // Rewind the committed clock to the snapshot's build clock: program
  // edits made after its capture count as pending again, and the next
  // commit re-applies them as an ordinary delta of the restored graph.
  CommittedClock = R->Built->Graph->builtModClock();
  // The carried boundary snapshot described the abandoned head; the
  // next commit re-sweeps the restored graph.
  CachedBoundaryGen = kNoBoundaryGen;
  Rollbacks.fetch_add(1, std::memory_order_relaxed);
  return true;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

bool AnalysisService::admitBatch() {
  unsigned Max = Opts.Overload.MaxActiveBatches;
  if (Max == 0)
    return true;
  unsigned Low = Opts.Overload.ResumeActiveBatches != 0
                     ? Opts.Overload.ResumeActiveBatches
                     : Max / 2;
  unsigned Active = ActiveBatches.load(std::memory_order_relaxed);
  if (SheddingState.load(std::memory_order_relaxed)) {
    // Shedding: stay closed until the in-flight count drains to the
    // low watermark (hysteresis — no flapping at the edge).
    if (Active > Low)
      return false;
    SheddingState.store(false, std::memory_order_relaxed);
    return true;
  }
  if (Active >= Max) {
    SheddingState.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

ServiceBatchResult AnalysisService::shedBatch(size_t NumQueries) {
  ServiceBatchResult Out;
  Out.Generation = current()->Number;
  Out.Outcomes.resize(NumQueries);
  for (engine::QueryOutcome &O : Out.Outcomes) {
    O.Status = analysis::QueryStatus::Overloaded;
    O.BudgetExceeded = true; // "unknown", same contract as over-budget
  }
  ShedBatches.fetch_add(1, std::memory_order_relaxed);
  ShedQueries.fetch_add(NumQueries, std::memory_order_relaxed);
  return Out;
}

ServiceBatchResult
AnalysisService::runBatch(const std::shared_ptr<const Generation> &Gen,
                          const std::vector<ir::VarId> &Vars,
                          const support::Deadline *DL) {
  if (!admitBatch())
    return shedBatch(Vars.size());
  ActiveBatches.fetch_add(1, std::memory_order_relaxed);

  // Variables are append-only with dense ids, so id < NumVars decides
  // whether the pinned generation knows the variable.  Unknown ones
  // (created after this generation's commit) keep a default (empty)
  // outcome.
  engine::QueryBatch Batch;
  std::vector<size_t> Slot; // batch index -> Vars index
  Slot.reserve(Vars.size());
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (Vars[I] < Gen->NumVars) {
      Batch.add(Gen->Built->Graph->nodeOfVar(Vars[I]));
      Slot.push_back(I);
    }
  }

  // Feed the warmer's hot set (capped; no eviction — a saturated set
  // is already far more than one warm pass will chew through).  Only
  // the hot-including scopes ever read it.
  if (Opts.Presummarize &&
      (Opts.WarmScope == PresummarizeScope::Hot ||
       Opts.WarmScope == PresummarizeScope::HotAndInvalidated)) {
    std::lock_guard<std::mutex> Lock(HotMutex);
    for (ir::VarId V : Vars) {
      if (HotSet.size() >= kHotSetCap)
        break;
      HotSet.insert(V);
    }
  }

  engine::BatchResult R =
      DL ? Gen->Engine->run(Batch, *DL) : Gen->Engine->run(Batch);
  ActiveBatches.fetch_sub(1, std::memory_order_relaxed);

  ServiceBatchResult Out;
  Out.Generation = Gen->Number;
  Out.Stats = R.Stats;
  Out.Outcomes.resize(Vars.size());
  for (size_t B = 0; B < Slot.size(); ++B)
    Out.Outcomes[Slot[B]] = std::move(R.Outcomes[B]);

  Batches.fetch_add(1, std::memory_order_relaxed);
  Queries.fetch_add(Vars.size(), std::memory_order_relaxed);
  if (R.Stats.TimedOut)
    TimedOutQueries.fetch_add(R.Stats.TimedOut, std::memory_order_relaxed);
  if (R.Stats.Cancelled)
    CancelledQueries.fetch_add(R.Stats.Cancelled,
                               std::memory_order_relaxed);
  return Out;
}

ServiceBatchResult AnalysisService::queryVars(
    const std::vector<ir::VarId> &Vars) {
  return runBatch(current(), Vars, nullptr);
}

ServiceBatchResult
AnalysisService::queryVars(const std::vector<ir::VarId> &Vars,
                           const support::Deadline &DL) {
  return runBatch(current(), Vars, &DL);
}

engine::QueryOutcome AnalysisService::queryVar(ir::VarId V) {
  ServiceBatchResult R = queryVars({V});
  return std::move(R.Outcomes.front());
}

engine::QueryOutcome AnalysisService::queryVar(ir::VarId V,
                                               const support::Deadline &DL) {
  ServiceBatchResult R = queryVars({V}, DL);
  return std::move(R.Outcomes.front());
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//
//
// Both directions stage through a DynSumAnalysis over the current
// generation's graph, exactly like QueryScheduler's warm-start path:
// SummaryIO's DynSum cache is the authoritative on-disk schema.
// Pending edits are committed first so the file's program fingerprint
// always describes the summaries actually saved/loaded.

bool AnalysisService::saveSummaries(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  commitLocked(CommitMode::Delta);
  std::shared_ptr<const Generation> Gen = current();
  analysis::DynSumAnalysis Staging(*Gen->Built->Graph, Opts.Engine.Analysis);
  Store.drainInto(Staging);
  return analysis::saveSummariesFile(Staging, Path);
}

bool AnalysisService::loadSummaries(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  commitLocked(CommitMode::Delta);
  std::shared_ptr<const Generation> Gen = current();
  analysis::DynSumAnalysis Staging(*Gen->Built->Graph, Opts.Engine.Analysis);
  if (!analysis::loadSummariesFile(Staging, Path))
    return false;
  Store.seedFrom(Staging); // publishes at the current generation
  return true;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

uint64_t AnalysisService::generation() const { return current()->Number; }

ServiceStats AnalysisService::stats() const {
  ServiceStats S;
  S.Generation = generation();
  S.Commits = Commits.load(std::memory_order_relaxed);
  S.Rollbacks = Rollbacks.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.Queries = Queries.load(std::memory_order_relaxed);
  S.SharedSummariesDropped = SharedDropped.load(std::memory_order_relaxed);
  S.StoreSize = Store.size();
  S.LastCommitSeconds =
      double(LastCommitMicros.load(std::memory_order_relaxed)) / 1e6;
  S.TotalCommitSeconds =
      double(TotalCommitMicros.load(std::memory_order_relaxed)) / 1e6;
  S.LastCommitRelowered =
      LastCommitRelowered.load(std::memory_order_relaxed);
  S.AsyncCommitsRequested = AsyncRequested.load(std::memory_order_relaxed);
  S.AsyncCommitsCoalesced = AsyncCoalesced.load(std::memory_order_relaxed);
  S.CommitFailures = CommitFailures.load(std::memory_order_relaxed);
  S.CommitValidationRejects =
      CommitValidationRejects.load(std::memory_order_relaxed);
  S.CommitRetries = CommitRetries.load(std::memory_order_relaxed);
  S.CommitsQuarantined = CommitsQuarantined.load(std::memory_order_relaxed);
  S.CommitsShed = CommitsShed.load(std::memory_order_relaxed);
  S.ShedBatches = ShedBatches.load(std::memory_order_relaxed);
  S.ShedQueries = ShedQueries.load(std::memory_order_relaxed);
  S.TimedOutQueries = TimedOutQueries.load(std::memory_order_relaxed);
  S.CancelledQueries = CancelledQueries.load(std::memory_order_relaxed);
  S.WarmRuns = WarmRunsCount.load(std::memory_order_relaxed);
  S.WarmQueries = WarmQueriesRun.load(std::memory_order_relaxed);
  S.WarmSummariesComputed = WarmComputed.load(std::memory_order_relaxed);
  S.Shedding = SheddingState.load(std::memory_order_relaxed);
  S.Store = Store.counters();
  S.DiskTierAttached = Store.hasDiskTier();
  S.StoreStripes.reserve(Store.numStripes());
  for (unsigned I = 0; I < Store.numStripes(); ++I)
    S.StoreStripes.push_back(Store.stripeCounters(I));
  {
    std::lock_guard<std::mutex> Lock(GenMutex);
    S.RetainedGenerations = History.size();
  }
  {
    std::lock_guard<std::mutex> Lock(AsyncMutex);
    S.CommitInFlight = PendingTicket != nullptr || AsyncInFlight;
  }
  {
    std::lock_guard<std::mutex> Lock(EditMutex);
    S.Quarantined = QuarantineActive && Prog->modClock() == QuarantineClock;
  }
  return S;
}
