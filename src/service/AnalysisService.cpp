//===----------------------------------------------------------------------===//
///
/// \file
/// AnalysisService implementation.
///
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "analysis/SummaryIO.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>

using namespace dynsum;
using namespace dynsum::service;
using incremental::CommitStats;
using incremental::InvalidationPlan;
using incremental::InvalidationPolicy;

AnalysisService::AnalysisService(std::unique_ptr<ir::Program> P,
                                 ServiceOptions Opts)
    : Opts(Opts), Prog(std::move(P)) {
  publish(buildFirstGeneration()); // generation 0, store is empty
  CommittedClock = Prog->modClock();
}

AnalysisService::~AnalysisService() {
  {
    std::lock_guard<std::mutex> Lock(AsyncMutex);
    AsyncStop = true;
    WorkCv.notify_all();
  }
  if (Committer.joinable())
    Committer.join();
}

std::shared_ptr<const AnalysisService::Generation>
AnalysisService::buildFirstGeneration() {
  auto G = std::make_shared<Generation>();
  G->Number = Store.generation();
  G->NumVars = Prog->variables().size();
  G->Built = pag::buildPAG(*Prog, nullptr, Opts.CommitThreads);
  G->Engine = std::make_unique<engine::QueryScheduler>(
      *G->Built.Graph, Opts.Engine, Store, G->Number);
  return G;
}

void AnalysisService::publish(std::shared_ptr<const Generation> G) {
  std::lock_guard<std::mutex> Lock(GenMutex);
  Current = std::move(G);
}

std::shared_ptr<const AnalysisService::Generation>
AnalysisService::current() const {
  std::lock_guard<std::mutex> Lock(GenMutex);
  return Current;
}

//===----------------------------------------------------------------------===//
// Edits
//===----------------------------------------------------------------------===//

void AnalysisService::addStatement(ir::MethodId M, ir::Statement S) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  Prog->addStatement(M, std::move(S)); // stamps M on the edit clock
}

size_t AnalysisService::removeStatements(
    ir::MethodId M, const std::function<bool(const ir::Statement &)> &Pred) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  return Prog->removeStatements(M, Pred); // stamps M on the edit clock
}

void AnalysisService::markDirty(ir::MethodId M) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  Prog->touchMethod(M);
}

void AnalysisService::editProgram(
    const std::function<std::vector<ir::MethodId>(ir::Program &)> &Edit) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  for (ir::MethodId M : Edit(*Prog))
    Prog->touchMethod(M);
}

bool AnalysisService::dirty() const {
  std::lock_guard<std::mutex> Lock(EditMutex);
  return Prog->modClock() != CommittedClock;
}

CommitStats AnalysisService::commitLocked(CommitMode Mode) {
  if (Prog->modClock() == CommittedClock)
    return {};

  Timer Clock;
  CommitStats Stats;
  Stats.SummariesBefore = Store.size();
  unsigned Threads = clampThreads(Opts.CommitThreads);

  std::shared_ptr<const Generation> Old = current();
  incremental::BoundarySnapshot OldBoundary =
      incremental::snapshotBoundary(*Old->Built.Graph, Threads);

  // Build the next epoch's graph as a delta of the previous one: clone
  // the old graph (flat array copies, sharded across the commit
  // workers) and patch the clone.  The old generation keeps serving
  // in-flight batches untouched the whole time; node ids are shared
  // between the two graphs by construction.
  Timer CloneClock;
  auto NewGraph = std::make_unique<pag::PAG>(*Old->Built.Graph, Threads);
  pag::CallGraph NewCalls = Old->Built.Calls;
  Stats.CloneSeconds = CloneClock.seconds();
  pag::DeltaStats Delta = pag::buildPAGDelta(
      *NewGraph, NewCalls, nullptr,
      /*ForceFull=*/Mode == CommitMode::Scratch, Threads);
  Stats.MethodsRelowered = Delta.Relowered.size();
  Stats.ShapeSeconds = Delta.ShapeSeconds;
  Stats.LowerSeconds = Delta.LowerSeconds;
  Stats.ApplySeconds = Delta.ApplySeconds;
  Stats.RepackSeconds = Delta.RepackSeconds;

  if (Opts.Policy == InvalidationPolicy::ClearAll) {
    Stats.SummariesDropped = Store.size();
    Store.clear(); // bumps the store generation
  } else {
    std::unordered_set<ir::MethodId> Dirty(Delta.Touched.begin(),
                                           Delta.Touched.end());
    InvalidationPlan Plan = incremental::planInvalidation(
        OldBoundary, *NewGraph, Dirty, Threads);
    Stats.MethodsInvalidated = Plan.Methods.size();
    Stats.SummariesDropped = Store.beginGeneration(*NewGraph, Plan);
  }
  Stats.SharedSummariesDropped = Stats.SummariesDropped;

  // Publish: from here on new batches pin the new generation; batches
  // that already grabbed Old keep it alive and drain against it (their
  // store epoch went stale with the bump above, so they compute
  // privately and never cross-contaminate).
  auto NewGen = std::make_shared<Generation>();
  NewGen->Number = Store.generation();
  NewGen->NumVars = Prog->variables().size();
  NewGen->Built.Graph = std::move(NewGraph);
  NewGen->Built.Calls = std::move(NewCalls);
  NewGen->Engine = std::make_unique<engine::QueryScheduler>(
      *NewGen->Built.Graph, Opts.Engine, Store, NewGen->Number);
  publish(std::move(NewGen));

  CommittedClock = Prog->modClock();
  Stats.Seconds = Clock.seconds();
  Commits.fetch_add(1, std::memory_order_relaxed);
  SharedDropped.fetch_add(Stats.SummariesDropped, std::memory_order_relaxed);
  uint64_t Micros = uint64_t(Stats.Seconds * 1e6);
  LastCommitMicros.store(Micros, std::memory_order_relaxed);
  TotalCommitMicros.fetch_add(Micros, std::memory_order_relaxed);
  LastCommitRelowered.store(Stats.MethodsRelowered,
                            std::memory_order_relaxed);
  return Stats;
}

CommitStats AnalysisService::commit(CommitMode Mode) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  return commitLocked(Mode);
}

//===----------------------------------------------------------------------===//
// Async commits
//===----------------------------------------------------------------------===//
//
// One background committer drains a single coalesced request slot: a
// commit covers every edit buffered before it grabs the edit lock, so
// any number of requests queued while one is in flight collapse into
// one follow-up commit without losing anything.  The committer publishes
// through the same epoch handoff as blocking commits — readers never see
// a half-built generation, they just keep draining the previous
// snapshot until the atomic pointer swap.

void AnalysisService::committerLoop() {
  std::unique_lock<std::mutex> Lock(AsyncMutex);
  for (;;) {
    WorkCv.wait(Lock, [this] { return AsyncPending || AsyncStop; });
    if (!AsyncPending) // stop requested and queue drained
      return;
    CommitMode Mode = AsyncMode;
    AsyncPending = false;
    AsyncMode = CommitMode::Delta;
    AsyncInFlight = true;
    Lock.unlock();
    {
      std::lock_guard<std::mutex> Edit(EditMutex);
      commitLocked(Mode);
    }
    Lock.lock();
    AsyncInFlight = false;
    IdleCv.notify_all();
  }
}

void AnalysisService::commitAsync(CommitMode Mode) {
  std::lock_guard<std::mutex> Lock(AsyncMutex);
  AsyncRequested.fetch_add(1, std::memory_order_relaxed);
  if (AsyncPending || AsyncInFlight)
    AsyncCoalesced.fetch_add(1, std::memory_order_relaxed);
  AsyncPending = true;
  if (Mode == CommitMode::Scratch)
    AsyncMode = CommitMode::Scratch; // scratch wins when modes mix
  if (!Committer.joinable())
    Committer = std::thread([this] { committerLoop(); });
  WorkCv.notify_one();
}

void AnalysisService::waitForCommits() {
  std::unique_lock<std::mutex> Lock(AsyncMutex);
  IdleCv.wait(Lock, [this] { return !AsyncPending && !AsyncInFlight; });
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

ServiceBatchResult AnalysisService::queryVars(
    const std::vector<ir::VarId> &Vars) {
  std::shared_ptr<const Generation> Gen = current();

  // Variables are append-only with dense ids, so id < NumVars decides
  // whether the pinned generation knows the variable.  Unknown ones
  // (created after this generation's commit) keep a default (empty)
  // outcome.
  engine::QueryBatch Batch;
  std::vector<size_t> Slot; // batch index -> Vars index
  Slot.reserve(Vars.size());
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (Vars[I] < Gen->NumVars) {
      Batch.add(Gen->Built.Graph->nodeOfVar(Vars[I]));
      Slot.push_back(I);
    }
  }

  engine::BatchResult R = Gen->Engine->run(Batch);

  ServiceBatchResult Out;
  Out.Generation = Gen->Number;
  Out.Stats = R.Stats;
  Out.Outcomes.resize(Vars.size());
  for (size_t B = 0; B < Slot.size(); ++B)
    Out.Outcomes[Slot[B]] = std::move(R.Outcomes[B]);

  Batches.fetch_add(1, std::memory_order_relaxed);
  Queries.fetch_add(Vars.size(), std::memory_order_relaxed);
  return Out;
}

engine::QueryOutcome AnalysisService::queryVar(ir::VarId V) {
  ServiceBatchResult R = queryVars({V});
  return std::move(R.Outcomes.front());
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//
//
// Both directions stage through a DynSumAnalysis over the current
// generation's graph, exactly like QueryScheduler's warm-start path:
// SummaryIO's DynSum cache is the authoritative on-disk schema.
// Pending edits are committed first so the file's program fingerprint
// always describes the summaries actually saved/loaded.

bool AnalysisService::saveSummaries(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  commitLocked(CommitMode::Delta);
  std::shared_ptr<const Generation> Gen = current();
  analysis::DynSumAnalysis Staging(*Gen->Built.Graph, Opts.Engine.Analysis);
  Store.drainInto(Staging);
  return analysis::saveSummariesFile(Staging, Path);
}

bool AnalysisService::loadSummaries(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(EditMutex);
  commitLocked(CommitMode::Delta);
  std::shared_ptr<const Generation> Gen = current();
  analysis::DynSumAnalysis Staging(*Gen->Built.Graph, Opts.Engine.Analysis);
  if (!analysis::loadSummariesFile(Staging, Path))
    return false;
  Store.seedFrom(Staging); // publishes at the current generation
  return true;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

uint64_t AnalysisService::generation() const { return current()->Number; }

ServiceStats AnalysisService::stats() const {
  ServiceStats S;
  S.Generation = generation();
  S.Commits = Commits.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.Queries = Queries.load(std::memory_order_relaxed);
  S.SharedSummariesDropped = SharedDropped.load(std::memory_order_relaxed);
  S.StoreSize = Store.size();
  S.LastCommitSeconds =
      double(LastCommitMicros.load(std::memory_order_relaxed)) / 1e6;
  S.TotalCommitSeconds =
      double(TotalCommitMicros.load(std::memory_order_relaxed)) / 1e6;
  S.LastCommitRelowered =
      LastCommitRelowered.load(std::memory_order_relaxed);
  S.AsyncCommitsRequested = AsyncRequested.load(std::memory_order_relaxed);
  S.AsyncCommitsCoalesced = AsyncCoalesced.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(AsyncMutex);
    S.CommitInFlight = AsyncPending || AsyncInFlight;
  }
  return S;
}
