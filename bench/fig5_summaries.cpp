//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 5: cumulative number of DYNSUM summaries after
/// each query batch, normalized to STASUM's static summary count, for
/// soot-c, bloat and jython.
///
/// The paper reports that DYNSUM ends at 41.3% / 47.7% / 37.3% of
/// STASUM's summaries on average for SafeCast / NullDeref / FactoryM.
/// The shape to check: the cumulative curve grows with the batch index
/// and stays well below 100%.
///
/// STASUM's offline closure is computed once per program (it is
/// client-independent) with a practical field-depth k-limit — the paper
/// notes STASUM must bound its summary count with user-supplied
/// heuristics; this is ours (--stasum-depth, default 12).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/StaSum.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"

#include <cmath>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  CommandLine CL(argc, argv);
  constexpr unsigned kBatches = 10;
  outs() << "=== Figure 5: cumulative DYNSUM summaries / STASUM summaries "
            "(%), scale="
         << Opts.Scale << " ===\n";

  StaSumOptions SO;
  SO.MaxFieldDepth = uint32_t(CL.getInt("stasum-depth", 6));
  SO.StepBudget = uint64_t(CL.getInt("stasum-steps", 50 * 1000 * 1000));
  SO.MaxSummaries = uint64_t(CL.getInt("stasum-max", 2 * 1000 * 1000));

  // One generated program + one static closure per benchmark, shared by
  // the three clients.
  struct ProgramData {
    BenchProgram BP;
    StaSumResult Static;
  };
  std::vector<ProgramData> Programs;
  for (const workload::BenchmarkSpec *Spec : figureSpecs()) {
    ProgramData PD{makeBenchProgram(*Spec, Opts), {}};
    PD.Static = computeStaSum(*PD.BP.Built.Graph, SO);
    outs() << "  " << Spec->Name << ": STASUM computed "
           << PD.Static.NumNodeStateSummaries
           << " boundary-point summaries ("
           << PD.Static.NumSummaries << " field-stack configurations, "
           << PD.Static.Steps << " steps"
           << (PD.Static.Capped ? ", capped" : "") << ")\n";
    Programs.push_back(std::move(PD));
  }

  auto Clients = makePaperClients();
  for (unsigned CI = 0; CI < Clients.size(); ++CI) {
    const Client &C = *Clients[CI];
    outs() << "\n--- Client: " << C.name() << " ---\n";
    PrettyTable T;
    {
      auto &Header = T.row().cell("Benchmark").cell("STASUM#");
      for (unsigned B = 1; B <= kBatches; ++B)
        Header.cell("b" + std::to_string(B));
    }
    double FinalSum = 0;
    unsigned N = 0;
    for (const ProgramData &PD : Programs) {
      std::vector<ClientQuery> Qs = clientQueries(C, CI, PD.BP, Opts);
      size_t PerBatch = std::max<size_t>(1, Qs.size() / kBatches);

      DynSumAnalysis DynSum(*PD.BP.Built.Graph, Opts.analysisOptions());
      auto &Row =
          T.row().cell(PD.BP.Spec->Name).cell(PD.Static.NumNodeStateSummaries);
      double Last = 0;
      for (unsigned B = 0; B < kBatches; ++B) {
        size_t Begin = B * PerBatch;
        size_t End = B + 1 == kBatches ? Qs.size() : Begin + PerBatch;
        if (Begin < Qs.size())
          (void)runClient(C, DynSum, Qs, Begin, End);
        Last = PD.Static.NumNodeStateSummaries > 0
                   ? 100.0 * double(DynSum.cacheNodeStateCount()) /
                         double(PD.Static.NumNodeStateSummaries)
                   : 0.0;
        Row.cell(Last, 1);
      }
      FinalSum += Last;
      ++N;
    }
    T.print(outs());
    if (N > 0) {
      outs() << "average final ratio: ";
      outs().writeFixed(FinalSum / N, 1);
      outs() << "%  (paper: "
             << (CI == 0   ? "41.3%"
                 : CI == 1 ? "47.7%"
                           : "37.3%")
             << ")\n";
    }
  }
  outs() << "\nShape to check: curves grow with the batch index and stay "
            "well below 100%.\n";
  outs().flush();
  return 0;
}
