//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation study of DYNSUM's design choices (DESIGN.md section 5):
///
///   1. summary cache on/off — isolates the paper's central claim that
///      *local reachability reuse* is where the speedup comes from;
///   2. traversal budget sweep — how answer quality (unknown rate)
///      trades against cost;
///   3. field-depth k-limit sweep — the termination knob's effect;
///   4. query order (client order vs reversed) — reuse robustness.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/OStream.h"
#include "support/PrettyTable.h"

#include <algorithm>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  outs() << "=== Ablations (soot-c, SafeCast; scale=" << Opts.Scale
         << ") ===\n\n";

  BenchProgram BP = makeBenchProgram(workload::specByName("soot-c"), Opts);
  SafeCastClient C;
  std::vector<ClientQuery> Qs = clientQueries(C, 0, BP, Opts);

  // 1. Cache on/off.
  {
    PrettyTable T;
    T.row().cell("cache").cell("steps").cell("seconds").cell("unknown");
    for (bool Cache : {true, false}) {
      AnalysisOptions AO = Opts.analysisOptions();
      AO.EnableCache = Cache;
      DynSumAnalysis A(*BP.Built.Graph, AO);
      ClientReport Rep = runClient(C, A, Qs);
      T.row()
          .cell(Cache ? "on" : "off")
          .cell(Rep.TotalSteps)
          .cell(Rep.Seconds, 3)
          .cell(Rep.Unknown);
    }
    outs() << "-- 1. summary cache --\n";
    T.print(outs());
  }

  // 2. Budget sweep.
  {
    PrettyTable T;
    T.row().cell("budget").cell("steps").cell("proven").cell("unknown");
    for (uint64_t Budget : {1000ull, 5000ull, 25000ull, 75000ull,
                            300000ull}) {
      AnalysisOptions AO = Opts.analysisOptions();
      AO.BudgetPerQuery = Budget;
      DynSumAnalysis A(*BP.Built.Graph, AO);
      ClientReport Rep = runClient(C, A, Qs);
      T.row()
          .cell(Budget)
          .cell(Rep.TotalSteps)
          .cell(Rep.Proven)
          .cell(Rep.Unknown);
    }
    outs() << "\n-- 2. per-query budget --\n";
    T.print(outs());
  }

  // 3. Field-depth k-limit sweep.
  {
    PrettyTable T;
    T.row().cell("maxFieldDepth").cell("steps").cell("proven").cell(
        "unknown");
    for (uint32_t Depth : {2u, 4u, 8u, 16u, 64u}) {
      AnalysisOptions AO = Opts.analysisOptions();
      AO.MaxFieldDepth = Depth;
      DynSumAnalysis A(*BP.Built.Graph, AO);
      ClientReport Rep = runClient(C, A, Qs);
      T.row()
          .cell(uint64_t(Depth))
          .cell(Rep.TotalSteps)
          .cell(Rep.Proven)
          .cell(Rep.Unknown);
    }
    outs() << "\n-- 3. field-depth k-limit --\n";
    T.print(outs());
  }

  // 4. Query order.
  {
    PrettyTable T;
    T.row().cell("order").cell("steps").cell("summaries");
    for (bool Reversed : {false, true}) {
      std::vector<ClientQuery> Ordered = Qs;
      if (Reversed)
        std::reverse(Ordered.begin(), Ordered.end());
      DynSumAnalysis A(*BP.Built.Graph, Opts.analysisOptions());
      ClientReport Rep = runClient(C, A, Ordered);
      T.row()
          .cell(Reversed ? "reversed" : "client")
          .cell(Rep.TotalSteps)
          .cell(uint64_t(A.cacheSize()));
    }
    outs() << "\n-- 4. query order --\n";
    T.print(outs());
  }
  outs().flush();
  return 0;
}
