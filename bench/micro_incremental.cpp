//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental-analysis ablation: the IDE/JIT edit loop the paper
/// motivates ("software may undergo a lot of changes", Section 5.3).
///
/// A warm EditSession absorbs a stream of method edits; after each
/// commit the full query batch re-runs.  Rows compare invalidation
/// policies:
///
///   from-scratch  a fresh DYNSUM instance per cycle (no reuse at all)
///   clear-all     one instance, cache dropped on every commit
///   per-method    summaries survive except for edited/boundary-changed
///                 methods (EditSession's default)
///
/// The per-method row should approach the no-edit steady state: each
/// edit invalidates a handful of methods, so most of each re-query runs
/// on cached summaries.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "incremental/EditSession.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "support/Timer.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::incremental;

namespace {

/// Query set: a deterministic stride over local variables.
std::vector<ir::VarId> pickQueries(const ir::Program &P, size_t Stride) {
  std::vector<ir::VarId> Out;
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Id % Stride == 0)
      Out.push_back(V.Id);
  return Out;
}

/// Applies edit cycle \p I to \p S: appends an allocation (plus a copy
/// into an existing variable when possible) to a pseudo-random method.
void applyEdit(EditSession &S, size_t I) {
  ir::Program &P = S.program();
  ir::MethodId M = P.methods()[(I * 37 + 11) % P.methods().size()].Id;
  ir::TypeId T = P.classes().back().Id;
  ir::VarId Fresh = P.createLocal(
      P.name("edit$" + std::to_string(I)), M, T);
  ir::Statement New;
  New.Kind = ir::StmtKind::Alloc;
  New.Dst = Fresh;
  New.Type = T;
  New.Alloc = P.createAllocSite(T, M, Symbol{});
  S.addStatement(M, std::move(New));
  for (const ir::Statement &St : P.method(M).Stmts)
    if (St.Kind == ir::StmtKind::Assign) {
      ir::Statement Copy;
      Copy.Kind = ir::StmtKind::Assign;
      Copy.Src = Fresh;
      Copy.Dst = St.Dst;
      S.addStatement(M, std::move(Copy));
      break;
    }
}

struct CycleTotals {
  uint64_t Steps = 0;
  double Seconds = 0.0;
  uint64_t Dropped = 0;
};

} // namespace

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  const unsigned Cycles = 12;
  outs() << "=== Incremental edit loop (soot-c; " << Cycles
         << " edit/re-query cycles; scale=" << Opts.Scale << ") ===\n\n";

  workload::GenOptions Gen;
  Gen.Scale = Opts.Scale;
  Gen.Seed = Opts.Seed;
  const workload::BenchmarkSpec &Spec = workload::specByName("soot-c");

  PrettyTable T;
  T.row()
      .cell("policy")
      .cell("steps/cycle")
      .cell("sec/cycle")
      .cell("dropped/commit")
      .cell("final cache");

  // --- from-scratch baseline -------------------------------------------
  {
    auto P = generateProgram(Spec, Gen);
    std::vector<ir::VarId> Queries = pickQueries(*P, 61);
    EditSession S(std::move(P), Opts.analysisOptions(),
                  InvalidationPolicy::ClearAll);
    CycleTotals Totals;
    Timer Clock;
    for (unsigned I = 0; I < Cycles; ++I) {
      applyEdit(S, I);
      S.commit();
      // A brand-new analysis per cycle: no reuse whatsoever.
      DynSumAnalysis Fresh(S.graph(), Opts.analysisOptions());
      for (ir::VarId V : Queries)
        Totals.Steps += Fresh.query(S.graph().nodeOfVar(V)).Steps;
    }
    Totals.Seconds = Clock.seconds();
    T.row()
        .cell("from-scratch")
        .cell(Totals.Steps / Cycles)
        .cell(Totals.Seconds / Cycles, 4)
        .cell("-")
        .cell("-");
  }

  // --- the two EditSession policies ------------------------------------
  for (InvalidationPolicy Policy :
       {InvalidationPolicy::ClearAll, InvalidationPolicy::PerMethod}) {
    auto P = generateProgram(Spec, Gen);
    std::vector<ir::VarId> Queries = pickQueries(*P, 61);
    EditSession S(std::move(P), Opts.analysisOptions(), Policy);
    for (ir::VarId V : Queries)
      S.queryVar(V); // warm start

    CycleTotals Totals;
    Timer Clock;
    for (unsigned I = 0; I < Cycles; ++I) {
      applyEdit(S, I);
      CommitStats Stats = S.commit();
      Totals.Dropped += Stats.SummariesDropped;
      for (ir::VarId V : Queries)
        Totals.Steps += S.queryVar(V).Steps;
    }
    Totals.Seconds = Clock.seconds();
    T.row()
        .cell(Policy == InvalidationPolicy::ClearAll ? "clear-all"
                                                     : "per-method")
        .cell(Totals.Steps / Cycles)
        .cell(Totals.Seconds / Cycles, 4)
        .cell(Totals.Dropped / Cycles)
        .cell(uint64_t(S.analysis().cacheSize()));
  }

  T.print(outs());
  outs() << "\nper-method should re-traverse far less than clear-all; both\n"
            "beat from-scratch, which also pays per-cycle PAG rebuild and\n"
            "cold caches.\n";
  return 0;
}
