//===----------------------------------------------------------------------===//
///
/// \file
/// Extension bench: the Devirt client (JIT devirtualization) across the
/// Table 3 suite, NOREFINE vs REFINEPTS vs DYNSUM.
///
/// Not a paper table — the paper evaluates SafeCast/NullDeref/FactoryM —
/// but the same harness applied to the JIT use case its introduction
/// motivates.  The expected shape matches Table 4: DYNSUM answers the
/// same queries with fewer traversal steps, and the verdict counts are
/// identical across analyses (all three are exact up to budget).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/OStream.h"
#include "support/PrettyTable.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  outs() << "=== Devirt client (extension; scale=" << Opts.Scale
         << ", budget=" << Opts.Budget << ") ===\n\n";

  PrettyTable T;
  T.row()
      .cell("benchmark")
      .cell("queries")
      .cell("NOREFINE s")
      .cell("REFINEPTS s")
      .cell("DYNSUM s")
      .cell("speedup")
      .cell("mono%");

  DevirtClient Client;
  for (const workload::BenchmarkSpec *Spec : selectedSpecs(Opts)) {
    BenchProgram BP = makeBenchProgram(*Spec, Opts);
    std::vector<ClientQuery> Qs = Client.makeQueries(*BP.Built.Graph, 2000);

    RefinePtsAnalysis NoRefine(*BP.Built.Graph, Opts.analysisOptions(),
                               /*Refinement=*/false);
    RefinePtsAnalysis Refine(*BP.Built.Graph, Opts.analysisOptions());
    DynSumAnalysis DynSum(*BP.Built.Graph, Opts.analysisOptions());

    ClientReport RepNo = runClient(Client, NoRefine, Qs);
    ClientReport RepRef = runClient(Client, Refine, Qs);
    ClientReport RepDyn = runClient(Client, DynSum, Qs);

    double Speedup =
        RepDyn.Seconds > 0 ? RepRef.Seconds / RepDyn.Seconds : 0.0;
    uint64_t Mono =
        RepDyn.NumQueries ? RepDyn.Proven * 100 / RepDyn.NumQueries : 0;
    T.row()
        .cell(Spec->Name)
        .cell(RepDyn.NumQueries)
        .cell(RepNo.Seconds, 3)
        .cell(RepRef.Seconds, 3)
        .cell(RepDyn.Seconds, 3)
        .cell(Speedup, 2)
        .cell(Mono);
  }
  T.print(outs());
  outs() << "\nmono% = CHA-polymorphic call sites proven monomorphic by\n"
            "points-to (devirtualizable); the paper's Table 4 pattern —\n"
            "DYNSUM fastest via summary reuse — should repeat here.\n";
  return 0;
}
