//===----------------------------------------------------------------------===//
///
/// \file
/// Bench harness implementation.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace dynsum;
using namespace dynsum::bench;
using namespace dynsum::workload;

namespace {

/// Escapes a string for a double-quoted JSON literal.
std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  Out.push_back('"');
  return Out;
}

} // namespace

void BenchJson::set(const std::string &Key, const std::string &Value) {
  Entries.emplace_back(Key, jsonQuote(Value));
}

void BenchJson::set(const std::string &Key, const char *Value) {
  set(Key, std::string(Value));
}

void BenchJson::set(const std::string &Key, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Entries.emplace_back(Key, Buf);
}

void BenchJson::set(const std::string &Key, uint64_t Value) {
  Entries.emplace_back(Key, std::to_string(Value));
}

std::string BenchJson::render() const {
  std::string Out = "{\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    Out += "  " + jsonQuote(Entries[I].first) + ": " + Entries[I].second;
    if (I + 1 < Entries.size())
      Out += ",";
    Out += "\n";
  }
  Out += "}\n";
  return Out;
}

bool BenchJson::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  std::string Buf = render();
  bool Ok = std::fwrite(Buf.data(), 1, Buf.size(), F) == Buf.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

HarnessOptions HarnessOptions::parse(int Argc, const char *const *Argv) {
  CommandLine CL(Argc, Argv);
  HarnessOptions O;
  O.Scale = CL.getDouble("scale", O.Scale);
  O.Budget = uint64_t(CL.getInt("budget", int64_t(O.Budget)));
  O.Seed = uint64_t(CL.getInt("seed", 0));
  O.Threads = unsigned(CL.getInt("threads", int64_t(O.Threads)));
  O.Only = CL.getString("bench", "");
  O.JsonPath = CL.getString("json", "");
  return O;
}

BenchProgram dynsum::bench::makeBenchProgram(const BenchmarkSpec &Spec,
                                             const HarnessOptions &Opts) {
  BenchProgram BP;
  BP.Spec = &Spec;
  GenOptions GO;
  GO.Scale = Opts.Scale;
  GO.Seed = Opts.Seed;
  BP.Prog = generateProgram(Spec, GO);
  BP.Built = analysis::buildPAGWithAndersenCallGraph(*BP.Prog);
  return BP;
}

std::vector<const BenchmarkSpec *>
dynsum::bench::selectedSpecs(const HarnessOptions &Opts) {
  std::vector<const BenchmarkSpec *> Out;
  for (const BenchmarkSpec &S : paperSuite())
    if (Opts.Only.empty() || S.Name == Opts.Only)
      Out.push_back(&S);
  return Out;
}

std::vector<const BenchmarkSpec *> dynsum::bench::figureSpecs() {
  return {&specByName("soot-c"), &specByName("bloat"), &specByName("jython")};
}

std::vector<clients::ClientQuery>
dynsum::bench::clientQueries(const clients::Client &C, unsigned ClientIndex,
                             const BenchProgram &BP,
                             const HarnessOptions &Opts) {
  size_t Max = scaledQueryCount(*BP.Spec, ClientIndex, Opts.Scale);
  return C.makeQueries(*BP.Built.Graph, Max);
}
