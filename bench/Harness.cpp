//===----------------------------------------------------------------------===//
///
/// \file
/// Bench harness implementation.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace dynsum;
using namespace dynsum::bench;
using namespace dynsum::workload;

HarnessOptions HarnessOptions::parse(int Argc, const char *const *Argv) {
  CommandLine CL(Argc, Argv);
  HarnessOptions O;
  O.Scale = CL.getDouble("scale", O.Scale);
  O.Budget = uint64_t(CL.getInt("budget", int64_t(O.Budget)));
  O.Seed = uint64_t(CL.getInt("seed", 0));
  O.Threads = unsigned(CL.getInt("threads", int64_t(O.Threads)));
  O.Only = CL.getString("bench", "");
  return O;
}

BenchProgram dynsum::bench::makeBenchProgram(const BenchmarkSpec &Spec,
                                             const HarnessOptions &Opts) {
  BenchProgram BP;
  BP.Spec = &Spec;
  GenOptions GO;
  GO.Scale = Opts.Scale;
  GO.Seed = Opts.Seed;
  BP.Prog = generateProgram(Spec, GO);
  BP.Built = analysis::buildPAGWithAndersenCallGraph(*BP.Prog);
  return BP;
}

std::vector<const BenchmarkSpec *>
dynsum::bench::selectedSpecs(const HarnessOptions &Opts) {
  std::vector<const BenchmarkSpec *> Out;
  for (const BenchmarkSpec &S : paperSuite())
    if (Opts.Only.empty() || S.Name == Opts.Only)
      Out.push_back(&S);
  return Out;
}

std::vector<const BenchmarkSpec *> dynsum::bench::figureSpecs() {
  return {&specByName("soot-c"), &specByName("bloat"), &specByName("jython")};
}

std::vector<clients::ClientQuery>
dynsum::bench::clientQueries(const clients::Client &C, unsigned ClientIndex,
                             const BenchProgram &BP,
                             const HarnessOptions &Opts) {
  size_t Max = scaledQueryCount(*BP.Spec, ClientIndex, Opts.Scale);
  return C.makeQueries(*BP.Built.Graph, Max);
}
