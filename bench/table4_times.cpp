//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 4: analysis times of NOREFINE, REFINEPTS and DYNSUM
/// for the three clients over the nine programs.
///
/// The paper reports wall-clock seconds on its Opteron testbed; besides
/// seconds we print total PAG edge traversals ("steps"), the
/// machine-independent unit the budget is measured in, and the DYNSUM
/// vs REFINEPTS speedup.  The paper's average speedups per client are
/// 1.95x (SafeCast), 2.28x (NullDeref) and 1.37x (FactoryM); the shape
/// to check is DYNSUM winning on average with the largest gains on
/// NullDeref.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/OStream.h"
#include "support/PrettyTable.h"

#include <cmath>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  outs() << "=== Table 4: analysis times (seconds / traversal steps), "
            "scale="
         << Opts.Scale << ", budget=" << Opts.Budget << " ===\n";

  auto Clients = makePaperClients();
  for (unsigned CI = 0; CI < Clients.size(); ++CI) {
    const Client &C = *Clients[CI];
    outs() << "\n--- Client: " << C.name() << " ---\n";
    PrettyTable T;
    T.row()
        .cell("Benchmark")
        .cell("#queries")
        .cell("NOREFINE(s)")
        .cell("REFINEPTS(s)")
        .cell("DYNSUM(s)")
        .cell("NR steps")
        .cell("RP steps")
        .cell("DS steps")
        .cell("speedup(t)")
        .cell("speedup(steps)");
    double LogSpeedT = 0, LogSpeedS = 0;
    unsigned N = 0;
    for (const workload::BenchmarkSpec *Spec : selectedSpecs(Opts)) {
      BenchProgram BP = makeBenchProgram(*Spec, Opts);
      std::vector<ClientQuery> Qs = clientQueries(C, CI, BP, Opts);

      RefinePtsAnalysis NoRefine(*BP.Built.Graph, Opts.analysisOptions(),
                                 /*Refinement=*/false);
      RefinePtsAnalysis Refine(*BP.Built.Graph, Opts.analysisOptions(),
                               /*Refinement=*/true);
      DynSumAnalysis DynSum(*BP.Built.Graph, Opts.analysisOptions());

      ClientReport NR = runClient(C, NoRefine, Qs);
      ClientReport RP = runClient(C, Refine, Qs);
      ClientReport DS = runClient(C, DynSum, Qs);

      double SpeedT = DS.Seconds > 0 ? RP.Seconds / DS.Seconds : 1.0;
      double SpeedS =
          DS.TotalSteps > 0 ? double(RP.TotalSteps) / double(DS.TotalSteps)
                            : 1.0;
      LogSpeedT += std::log(std::max(SpeedT, 1e-9));
      LogSpeedS += std::log(std::max(SpeedS, 1e-9));
      ++N;
      T.row()
          .cell(Spec->Name)
          .cell(NR.NumQueries)
          .cell(NR.Seconds, 3)
          .cell(RP.Seconds, 3)
          .cell(DS.Seconds, 3)
          .cell(NR.TotalSteps)
          .cell(RP.TotalSteps)
          .cell(DS.TotalSteps)
          .cell(SpeedT, 2)
          .cell(SpeedS, 2);
    }
    T.print(outs());
    if (N > 0) {
      outs() << "geomean DYNSUM speedup vs REFINEPTS: time ";
      outs().writeFixed(std::exp(LogSpeedT / N), 2);
      outs() << "x, steps ";
      outs().writeFixed(std::exp(LogSpeedS / N), 2);
      outs() << "x  (paper: "
             << (CI == 0   ? "1.95x"
                 : CI == 1 ? "2.28x"
                           : "1.37x")
             << ")\n";
    }
  }
  outs().flush();
  return 0;
}
