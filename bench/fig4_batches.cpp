//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 4: per-batch DYNSUM time normalized to REFINEPTS
/// for soot-c, bloat and jython, 10 batches per client.
///
/// The paper's curves start near (or above) 1.0 and fall as more
/// summaries accumulate — later batches reuse earlier batches' work.
/// We print both the time ratio and the steps ratio per batch; the
/// steps ratio is deterministic and machine-independent.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/OStream.h"
#include "support/PrettyTable.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  constexpr unsigned kBatches = 10;
  outs() << "=== Figure 4: per-batch DYNSUM time normalized to REFINEPTS "
            "(10 batches), scale="
         << Opts.Scale << " ===\n";

  auto Clients = makePaperClients();
  for (unsigned CI = 0; CI < Clients.size(); ++CI) {
    const Client &C = *Clients[CI];
    outs() << "\n--- Client: " << C.name()
           << " (rows: benchmark; columns: batch 1..10; value: "
              "DYNSUM/REFINEPTS) ---\n";
    PrettyTable T;
    {
      auto &Header = T.row().cell("Benchmark").cell("metric");
      for (unsigned B = 1; B <= kBatches; ++B)
        Header.cell("b" + std::to_string(B));
    }
    for (const workload::BenchmarkSpec *Spec : figureSpecs()) {
      BenchProgram BP = makeBenchProgram(*Spec, Opts);
      std::vector<ClientQuery> Qs = clientQueries(C, CI, BP, Opts);
      size_t PerBatch = Qs.size() / kBatches;
      if (PerBatch == 0)
        PerBatch = 1;

      // Both analyses persist across batches, exactly like the paper's
      // experiment: DYNSUM's cache warms, REFINEPTS has nothing to warm.
      RefinePtsAnalysis Refine(*BP.Built.Graph, Opts.analysisOptions());
      DynSumAnalysis DynSum(*BP.Built.Graph, Opts.analysisOptions());

      std::vector<double> TimeRatio, StepRatio;
      for (unsigned B = 0; B < kBatches; ++B) {
        size_t Begin = B * PerBatch;
        size_t End = B + 1 == kBatches ? Qs.size() : Begin + PerBatch;
        if (Begin >= Qs.size())
          break;
        ClientReport RP = runClient(C, Refine, Qs, Begin, End);
        ClientReport DS = runClient(C, DynSum, Qs, Begin, End);
        TimeRatio.push_back(RP.Seconds > 0 ? DS.Seconds / RP.Seconds : 1.0);
        StepRatio.push_back(RP.TotalSteps > 0
                                ? double(DS.TotalSteps) /
                                      double(RP.TotalSteps)
                                : 1.0);
      }
      auto &TimeRow = T.row().cell(Spec->Name).cell("time");
      for (double V : TimeRatio)
        TimeRow.cell(V, 2);
      auto &StepRow = T.row().cell("").cell("steps");
      for (double V : StepRatio)
        StepRow.cell(V, 2);
    }
    T.print(outs());
  }
  outs() << "\nExpected shape: ratios below 1.0 that tend to decrease "
            "with the batch index as summaries accumulate.\n";
  outs().flush();
  return 0;
}
