//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 4: per-batch DYNSUM time normalized to REFINEPTS
/// for soot-c, bloat and jython, 10 batches per client — with DYNSUM
/// answering every batch through the parallel batch engine, whose
/// shared summary store persists across batches exactly like the
/// paper's warming cache.
///
/// The paper's curves start near (or above) 1.0 and fall as more
/// summaries accumulate — later batches reuse earlier batches' work.
/// We print both the time ratio and the steps ratio per batch; the
/// steps ratio is deterministic and machine-independent.
///
/// A second section measures the engine's parallel scaling: the full
/// query stream of all three clients answered by 1 worker vs
/// --threads workers (default 4), reporting the wall-clock speedup.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "support/Timer.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  BenchJson J; // scaling metrics, written when --json=<file> is given
  J.set("bench", "fig4_batches");
  J.set("scale", Opts.Scale);
  J.set("threads", Opts.Threads);
  constexpr unsigned kBatches = 10;
  outs() << "=== Figure 4: per-batch DYNSUM time normalized to REFINEPTS "
            "(10 batches), scale="
         << Opts.Scale << ", engine threads=" << Opts.Threads << " ===\n";

  auto Clients = makePaperClients();
  for (unsigned CI = 0; CI < Clients.size(); ++CI) {
    const Client &C = *Clients[CI];
    outs() << "\n--- Client: " << C.name()
           << " (rows: benchmark; columns: batch 1..10; value: "
              "DYNSUM/REFINEPTS) ---\n";
    PrettyTable T;
    {
      auto &Header = T.row().cell("Benchmark").cell("metric");
      for (unsigned B = 1; B <= kBatches; ++B)
        Header.cell("b" + std::to_string(B));
    }
    for (const workload::BenchmarkSpec *Spec : figureSpecs()) {
      BenchProgram BP = makeBenchProgram(*Spec, Opts);
      std::vector<ClientQuery> Qs = clientQueries(C, CI, BP, Opts);
      size_t PerBatch = Qs.size() / kBatches;
      if (PerBatch == 0)
        PerBatch = 1;

      // Both analyses persist across batches, exactly like the paper's
      // experiment: the engine's shared summary store warms batch over
      // batch, REFINEPTS has nothing to warm.  One worker here — the
      // figure isolates summary reuse; parallel scaling is measured
      // separately below.
      RefinePtsAnalysis Refine(*BP.Built.Graph, Opts.analysisOptions());
      engine::QueryScheduler DynSum(*BP.Built.Graph, Opts.engineOptions(1));

      std::vector<double> TimeRatio, StepRatio;
      for (unsigned B = 0; B < kBatches; ++B) {
        size_t Begin = B * PerBatch;
        size_t End = B + 1 == kBatches ? Qs.size() : Begin + PerBatch;
        if (Begin >= Qs.size())
          break;
        ClientReport RP = runClient(C, Refine, Qs, Begin, End);
        ClientReport DS = runClientBatched(C, DynSum, Qs, Begin, End);
        TimeRatio.push_back(RP.Seconds > 0 ? DS.Seconds / RP.Seconds : 1.0);
        StepRatio.push_back(RP.TotalSteps > 0
                                ? double(DS.TotalSteps) /
                                      double(RP.TotalSteps)
                                : 1.0);
      }
      auto &TimeRow = T.row().cell(Spec->Name).cell("time");
      for (double V : TimeRatio)
        TimeRow.cell(V, 2);
      auto &StepRow = T.row().cell("").cell("steps");
      for (double V : StepRatio)
        StepRow.cell(V, 2);
    }
    T.print(outs());
  }
  outs() << "\nExpected shape: ratios below 1.0 that tend to decrease "
            "with the batch index as summaries accumulate.\n";

  //===--------------------------------------------------------------------===//
  // Engine scaling: 1 worker vs --threads workers on the full stream.
  //===--------------------------------------------------------------------===//

  outs() << "\n=== Batch engine scaling: full client stream, 1 thread vs "
         << Opts.Threads << " threads ===\n";
  PrettyTable S;
  S.row()
      .cell("Benchmark")
      .cell("queries")
      .cell("t1 (s)")
      .cell("tN (s)")
      .cell("speedup")
      .cell("shared hits");
  for (const workload::BenchmarkSpec *Spec : figureSpecs()) {
    BenchProgram BP = makeBenchProgram(*Spec, Opts);
    engine::QueryBatch Batch;
    for (unsigned CI = 0; CI < Clients.size(); ++CI)
      for (const ClientQuery &Q : clientQueries(*Clients[CI], CI, BP, Opts))
        Batch.add(Q.Node);

    engine::QueryScheduler Seq(*BP.Built.Graph, Opts.engineOptions(1));
    engine::BatchResult R1 = Seq.run(Batch);
    engine::QueryScheduler Par(*BP.Built.Graph,
                               Opts.engineOptions(Opts.Threads));
    engine::BatchResult RN = Par.run(Batch);

    S.row()
        .cell(Spec->Name)
        .cell(uint64_t(Batch.size()))
        .cell(R1.Stats.Seconds, 3)
        .cell(RN.Stats.Seconds, 3)
        .cell(RN.Stats.Seconds > 0 ? R1.Stats.Seconds / RN.Stats.Seconds
                                   : 1.0,
              2)
        .cell(RN.Stats.SharedHits);

    J.set("scaling." + Spec->Name + ".queries", uint64_t(Batch.size()));
    J.set("scaling." + Spec->Name + ".t1_seconds", R1.Stats.Seconds);
    J.set("scaling." + Spec->Name + ".tN_seconds", RN.Stats.Seconds);
    J.set("scaling." + Spec->Name + ".shared_hits", RN.Stats.SharedHits);
  }
  S.print(outs());
  outs() << "\nSpeedup > 1.0 means the sharded engine beat one worker on "
            "wall clock (expect ~linear scaling up to the core count; "
            "1-core machines show ~1.0).\n";
  if (!Opts.JsonPath.empty()) {
    if (J.writeFile(Opts.JsonPath))
      outs() << "\nmetrics JSON written to " << Opts.JsonPath << '\n';
    else
      outs() << "\nerror: cannot write " << Opts.JsonPath << '\n';
  }
  outs().flush();
  return 0;
}
