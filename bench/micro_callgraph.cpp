//===----------------------------------------------------------------------===//
///
/// \file
/// Call-graph-precision ablation: CHA vs RTA vs Andersen-refined
/// dispatch under the same demand-driven analysis.
///
/// The paper constructs its call graph on-the-fly with Spark's
/// Andersen analysis (Section 5.1).  This bench quantifies what that
/// choice buys: each resolver builds a PAG for the same programs, and
/// DYNSUM answers the same SafeCast query stream on each.  More precise
/// dispatch means fewer entry/exit edges, fewer spurious paths, fewer
/// traversal steps.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "pag/Rta.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::clients;

namespace {

struct ResolverRow {
  const char *Name;
  pag::BuiltPAG Built;
};

} // namespace

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  outs() << "=== Call-graph ablation (CHA / RTA / Andersen; scale="
         << Opts.Scale << ") ===\n\n";

  for (const workload::BenchmarkSpec *Spec : selectedSpecs(Opts)) {
    // Three representative programs by default; --bench overrides.
    if (Opts.Only.empty() && Spec->Name != "soot-c" &&
        Spec->Name != "jython" && Spec->Name != "avrora")
      continue;

    workload::GenOptions Gen;
    Gen.Scale = Opts.Scale;
    Gen.Seed = Opts.Seed;
    auto Prog = workload::generateProgram(*Spec, Gen);

    std::vector<ResolverRow> Rows;
    Rows.push_back({"CHA", pag::buildPAG(*Prog)});

    pag::RtaTargetResolver Rta(*Prog);
    Rows.push_back({"RTA", pag::buildPAG(*Prog, &Rta)});

    // Andersen over the CHA PAG refines dispatch for the final build —
    // the same bootstrap the paper's Spark setup uses.
    AndersenAnalysis Andersen(*Rows[0].Built.Graph);
    Andersen.solve();
    AndersenTargetResolver AndersenRes(Andersen, *Rows[0].Built.Graph);
    Rows.push_back({"Andersen", pag::buildPAG(*Prog, &AndersenRes)});

    outs() << "--- " << Spec->Name << " ---\n";
    PrettyTable T;
    T.row()
        .cell("resolver")
        .cell("entry edges")
        .cell("exit edges")
        .cell("steps")
        .cell("seconds")
        .cell("refuted");

    SafeCastClient Client;
    for (ResolverRow &Row : Rows) {
      pag::PAGStats Stats = Row.Built.Graph->stats();
      DynSumAnalysis DynSum(*Row.Built.Graph, Opts.analysisOptions());
      std::vector<ClientQuery> Qs = Client.makeQueries(*Row.Built.Graph, 400);
      ClientReport Rep = runClient(Client, DynSum, Qs);
      T.row()
          .cell(Row.Name)
          .cell(Stats.EdgesByKind[unsigned(pag::EdgeKind::Entry)])
          .cell(Stats.EdgesByKind[unsigned(pag::EdgeKind::Exit)])
          .cell(Rep.TotalSteps)
          .cell(Rep.Seconds, 3)
          .cell(Rep.Refuted);
    }
    T.print(outs());
    outs() << '\n';
  }

  outs() << "entry/exit edges and steps should shrink monotonically down\n"
            "the CHA -> RTA -> Andersen ladder.\n";
  return 0;
}
