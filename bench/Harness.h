//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the table/figure reproduction benches.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_BENCH_HARNESS_H
#define DYNSUM_BENCH_HARNESS_H

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "clients/Client.h"
#include "engine/QueryScheduler.h"
#include "support/CommandLine.h"
#include "workload/BenchmarkSpec.h"
#include "workload/Generator.h"

#include <memory>
#include <string>
#include <vector>

namespace dynsum {
namespace bench {

/// One generated benchmark program with its PAG.
struct BenchProgram {
  const workload::BenchmarkSpec *Spec = nullptr;
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

/// Ordered flat JSON object of bench metrics.  Every bench can append
/// string/number key-value pairs and write them to the path given by
/// --json=<file>, so perf trajectories land in machine-readable
/// BENCH_*.json files instead of scraped stdout.
class BenchJson {
public:
  void set(const std::string &Key, const std::string &Value);
  void set(const std::string &Key, const char *Value);
  void set(const std::string &Key, double Value);
  void set(const std::string &Key, uint64_t Value);
  void set(const std::string &Key, unsigned Value) { set(Key, uint64_t(Value)); }

  /// Renders the object ("{\n  \"k\": v, ...\n}\n").
  std::string render() const;

  /// Writes render() to \p Path; returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  /// Keys in insertion order with pre-rendered JSON values.
  std::vector<std::pair<std::string, std::string>> Entries;
};

/// Harness-wide knobs parsed from the command line:
///   --scale=<double>   linear size factor vs the paper (default 1/32)
///   --budget=<int>     per-query traversal budget (default 75000)
///   --seed=<int>       extra generator seed
///   --bench=<name>     restrict to one Table 3 program
///   --threads=<int>    batch-engine worker threads (default 4)
///   --json=<file>      write machine-readable metrics to <file>
struct HarnessOptions {
  double Scale = 1.0 / 32;
  uint64_t Budget = 75000;
  uint64_t Seed = 0;
  unsigned Threads = 4;
  std::string Only;
  std::string JsonPath;

  static HarnessOptions parse(int Argc, const char *const *Argv);

  analysis::AnalysisOptions analysisOptions() const {
    analysis::AnalysisOptions O;
    O.BudgetPerQuery = Budget;
    return O;
  }

  engine::EngineOptions engineOptions(unsigned NumThreads) const {
    engine::EngineOptions O;
    O.NumThreads = NumThreads;
    O.Analysis = analysisOptions();
    return O;
  }
};

/// Generates \p Spec at the harness scale and builds its PAG with the
/// Andersen-refined call graph (the paper's Spark-style setup).
BenchProgram makeBenchProgram(const workload::BenchmarkSpec &Spec,
                              const HarnessOptions &Opts);

/// The Table 3 programs selected by --bench (all nine by default).
std::vector<const workload::BenchmarkSpec *>
selectedSpecs(const HarnessOptions &Opts);

/// The three selected "large code base" programs of Figures 4 and 5.
std::vector<const workload::BenchmarkSpec *> figureSpecs();

/// Query stream of client \p ClientIndex (0 = SafeCast, 1 = NullDeref,
/// 2 = FactoryM) for \p BP, truncated to the paper's scaled count.
std::vector<clients::ClientQuery>
clientQueries(const clients::Client &C, unsigned ClientIndex,
              const BenchProgram &BP, const HarnessOptions &Opts);

} // namespace bench
} // namespace dynsum

#endif // DYNSUM_BENCH_HARNESS_H
