//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the core machinery: PPTA
/// summarization, DYNSUM queries (cold vs warm cache), REFINEPTS and
/// NOREFINE queries, Andersen solving, and interned-stack operations —
/// plus a traversal-throughput section (queries/sec over the generated
/// workload) that lands in a BENCH_*.json file via --json=<file>.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "engine/QueryScheduler.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/InternedStack.h"
#include "support/Timer.h"
#include "workload/Generator.h"
#include "workload/PaperExample.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Lazily built shared fixtures (benchmark registration runs before
/// main, so build on first use, not statically).
struct Fig2 {
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  pag::NodeId S1 = 0, S2 = 0, RetGet = 0;

  static Fig2 &get() {
    static Fig2 F;
    if (!F.Prog) {
      ir::ParseResult R = ir::parseProgram(workload::figure2Source());
      F.Prog = std::move(R.Prog);
      F.Built = pag::buildPAG(*F.Prog);
      for (const ir::Variable &V : F.Prog->variables()) {
        if (V.IsGlobal)
          continue;
        std::string_view Name = F.Prog->names().text(V.Name);
        std::string Method = F.Prog->describeMethod(V.Owner);
        if (Name == "s1" && Method == "Main.main")
          F.S1 = F.Built.Graph->nodeOfVar(V.Id);
        if (Name == "s2" && Method == "Main.main")
          F.S2 = F.Built.Graph->nodeOfVar(V.Id);
        if (Name == "ret" && Method == "Vector.get")
          F.RetGet = F.Built.Graph->nodeOfVar(V.Id);
      }
    }
    return F;
  }
};

struct GenProg {
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::vector<pag::NodeId> QueryNodes;

  static GenProg &get() {
    static GenProg G;
    if (!G.Prog) {
      workload::GenOptions GO;
      GO.Scale = 1.0 / 64;
      G.Prog = workload::generateProgram(
          workload::specByName("soot-c"), GO);
      G.Built = analysis::buildPAGWithAndersenCallGraph(*G.Prog);
      // Query every 37th local variable: a spread of demand targets.
      for (size_t I = 0; I < G.Prog->variables().size(); I += 37)
        if (!G.Prog->variables()[I].IsGlobal)
          G.QueryNodes.push_back(G.Built.Graph->nodeOfVar(ir::VarId(I)));
    }
    return G;
  }
};

void BM_PptaSummary_Figure2(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  PptaEngine Engine(*F.Built.Graph, A.fieldStacks(), Opts.MaxFieldDepth);
  for (auto _ : State) {
    Budget B(Opts.BudgetPerQuery);
    PptaSummary S;
    Engine.compute(F.RetGet, StackPool::empty(), RsmState::S1, B, S);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_PptaSummary_Figure2);

void BM_DynSumQuery_Cold(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  for (auto _ : State) {
    DynSumAnalysis A(*F.Built.Graph, Opts); // fresh cache every round
    benchmark::DoNotOptimize(A.query(F.S1));
  }
}
BENCHMARK(BM_DynSumQuery_Cold);

void BM_DynSumQuery_Warm(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  (void)A.query(F.S1);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S2));
}
BENCHMARK(BM_DynSumQuery_Warm);

void BM_RefinePtsQuery(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S1));
}
BENCHMARK(BM_RefinePtsQuery);

void BM_NoRefineQuery(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts, /*Refinement=*/false);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S1));
}
BENCHMARK(BM_NoRefineQuery);

void BM_DynSum_GeneratedQueries(benchmark::State &State) {
  GenProg &G = GenProg::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*G.Built.Graph, Opts);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        A.query(G.QueryNodes[I++ % G.QueryNodes.size()]));
  }
}
BENCHMARK(BM_DynSum_GeneratedQueries);

void BM_AndersenSolve(benchmark::State &State) {
  // range(0) = solver threads; 1 is the serial hybrid-set worklist, >1
  // the sharded bulk-synchronous solver (bit-identical results).
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    AndersenAnalysis A(*G.Built.Graph, unsigned(State.range(0)));
    A.solve();
    benchmark::DoNotOptimize(A.propagationCount());
  }
}
BENCHMARK(BM_AndersenSolve)->Arg(1)->Arg(2)->Arg(8);

void BM_AndersenSolve_DenseBaseline(benchmark::State &State) {
  // The pre-hybrid representation (one dense BitVector per node):
  // the single-thread baseline the hybrid set is measured against.
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    AndersenAnalysis A(*G.Built.Graph, 1, PtsRep::Dense);
    A.solve();
    benchmark::DoNotOptimize(A.propagationCount());
  }
}
BENCHMARK(BM_AndersenSolve_DenseBaseline);

void BM_PAGBuild(benchmark::State &State) {
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    pag::BuiltPAG Built = pag::buildPAG(*G.Prog);
    benchmark::DoNotOptimize(Built.Graph->numEdges());
  }
}
BENCHMARK(BM_PAGBuild);

void BM_EngineBatch(benchmark::State &State) {
  // The generated query stream as one batch, sharded over range(0)
  // workers with a cold shared store each round.
  GenProg &G = GenProg::get();
  engine::EngineOptions EO;
  EO.NumThreads = unsigned(State.range(0));
  for (auto _ : State) {
    engine::QueryScheduler S(*G.Built.Graph, EO);
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
  }
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EngineBatch_WarmStore(benchmark::State &State) {
  // Same batch against a scheduler whose shared store was warmed by a
  // prior run — the cross-batch reuse path.
  GenProg &G = GenProg::get();
  engine::EngineOptions EO;
  EO.NumThreads = unsigned(State.range(0));
  engine::QueryScheduler S(*G.Built.Graph, EO);
  (void)S.run(G.QueryNodes);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
}
BENCHMARK(BM_EngineBatch_WarmStore)->Arg(1)->Arg(4);

void BM_StackPool_PushPop(benchmark::State &State) {
  StackPool Pool;
  uint64_t Sum = 0;
  for (auto _ : State) {
    StackId S = StackPool::empty();
    for (uint32_t I = 0; I < 16; ++I)
      S = Pool.push(S, I & 7);
    for (uint32_t I = 0; I < 16; ++I) {
      Sum += Pool.peek(S);
      S = Pool.pop(S);
    }
  }
  benchmark::DoNotOptimize(Sum);
}
BENCHMARK(BM_StackPool_PushPop);

//===----------------------------------------------------------------------===//
// Traversal throughput: queries/sec over the generated workload.
//
// google-benchmark reports ns/op; this section reports the headline
// number the perf trajectory tracks — demand queries answered per
// second, cold (fresh scheduler and summary store per batch), warm
// (store reused across batches), and sequential (one DynSumAnalysis).
//===----------------------------------------------------------------------===//

/// Repeats \p Body until ~\p MinSeconds elapsed; returns executions/sec.
template <typename Fn> double measureRate(double MinSeconds, Fn &&Body) {
  // One untimed warm-up execution.
  Body();
  uint64_t Reps = 0;
  Timer T;
  do {
    Body();
    ++Reps;
  } while (T.seconds() < MinSeconds);
  return double(Reps) / T.seconds();
}

//===----------------------------------------------------------------------===//
// Whole-program solve scaling: Andersen at a requested program size,
// across thread counts and set representations.  Opt-in via
// --andersen-methods=N (a 10k-method solve is too slow for the default
// microbench run); results ride the same trajectory JSON.
//===----------------------------------------------------------------------===//

struct AndersenSection {
  bool Ran = false;
  uint64_t Methods = 0, Nodes = 0, Edges = 0;
  double T1Ms = 0, T2Ms = 0, T8Ms = 0, DenseT1Ms = 0;
};

AndersenSection runAndersenSection(uint64_t Methods) {
  AndersenSection R;
  if (Methods == 0)
    return R;
  workload::GenOptions GO;
  GO.Scale = double(Methods) / 3400.0; // soot-c: 3.4k methods at scale 1
  std::unique_ptr<ir::Program> Prog =
      workload::generateProgram(workload::specByName("soot-c"), GO);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);

  // Best-of-3 below ~5k methods, where allocator noise dominates the
  // variance; a 10k-method solve runs minutes, so one rep has to do
  // (the t8-vs-t1 ratio it feeds is ~2x on real cores — well above
  // single-rep noise).  Progress goes to stderr as each config lands.
  const int Reps = Methods >= 5000 ? 1 : 3;
  auto SolveMs = [&](const char *Name, unsigned Threads, PtsRep Rep) {
    double Best = 1e300;
    for (int I = 0; I < Reps; ++I) {
      Timer T;
      AndersenAnalysis A(*Built.Graph, Threads, Rep);
      A.solve();
      benchmark::DoNotOptimize(A.propagationCount());
      Best = std::min(Best, T.seconds() * 1e3);
    }
    std::fprintf(stderr, "andersen %s: %.2f ms (best of %d)\n", Name, Best,
                 Reps);
#if defined(__GLIBC__)
    // A 10k-method solve allocates gigabytes of short-lived delta and
    // staging storage across per-thread arenas; return it to the OS
    // between configs so four back-to-back solves don't stack their
    // high-water marks into an OOM on CI-sized runners.
    malloc_trim(0);
#endif
    return Best;
  };

  R.Ran = true;
  R.Methods = Prog->methods().size();
  R.Nodes = Built.Graph->numNodes();
  R.Edges = Built.Graph->numEdges();
  R.T1Ms = SolveMs("hybrid t1", 1, PtsRep::Hybrid);
  R.T2Ms = SolveMs("hybrid t2", 2, PtsRep::Hybrid);
  R.T8Ms = SolveMs("hybrid t8", 8, PtsRep::Hybrid);
  // The dense baseline keeps a universe-sized bitmap per node — ~30 GB
  // at 10k methods, which the hybrid representation exists to avoid —
  // so the A/B only runs at scales where dense fits CI-sized memory
  // (the CI hybrid-vs-dense gate uses a second, smaller invocation).
  if (Methods <= 5000)
    R.DenseT1Ms = SolveMs("dense t1", 1, PtsRep::Dense);
  else
    std::fprintf(stderr, "andersen dense t1: skipped (universe bitmaps "
                         "need ~30 GB at this scale)\n");

  std::printf("\n-- Andersen whole-program solve (soot-c, %llu methods, "
              "%llu nodes / %llu edges) --\n",
              (unsigned long long)R.Methods, (unsigned long long)R.Nodes,
              (unsigned long long)R.Edges);
  std::printf("hybrid t1: %9.2f ms\n", R.T1Ms);
  std::printf("hybrid t2: %9.2f ms  (%.2fx)\n", R.T2Ms, R.T1Ms / R.T2Ms);
  std::printf("hybrid t8: %9.2f ms  (%.2fx)\n", R.T8Ms, R.T1Ms / R.T8Ms);
  if (R.DenseT1Ms > 0)
    std::printf("dense  t1: %9.2f ms  (hybrid %.2fx vs dense)\n", R.DenseT1Ms,
                R.DenseT1Ms / R.T1Ms);
  return R;
}

void runThroughputSection(const std::string &JsonPath,
                          const AndersenSection &Andersen) {
  GenProg &G = GenProg::get();
  size_t N = G.QueryNodes.size();
  engine::EngineOptions EO;
  EO.NumThreads = 1;

  double ColdBatches = measureRate(1.0, [&] {
    engine::QueryScheduler S(*G.Built.Graph, EO);
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
  });

  engine::QueryScheduler Warm(*G.Built.Graph, EO);
  (void)Warm.run(G.QueryNodes);
  double WarmBatches = measureRate(1.0, [&] {
    benchmark::DoNotOptimize(Warm.run(G.QueryNodes).Stats.TotalSteps);
  });

  analysis::AnalysisOptions AO;
  DynSumAnalysis Seq(*G.Built.Graph, AO);
  size_t I = 0;
  double SeqQueries = measureRate(1.0, [&] {
    benchmark::DoNotOptimize(
        Seq.query(G.QueryNodes[I++ % G.QueryNodes.size()]).Steps);
  });

  double ColdQps = ColdBatches * double(N);
  double WarmQps = WarmBatches * double(N);
  std::printf("\n-- Traversal throughput (soot-c @ 1/64, %zu queries, "
              "1 thread) --\n",
              N);
  std::printf("batch cold: %12.0f queries/sec\n", ColdQps);
  std::printf("batch warm: %12.0f queries/sec\n", WarmQps);
  std::printf("sequential: %12.0f queries/sec\n", SeqQueries);

  if (JsonPath.empty())
    return;
  bench::BenchJson J;
  J.set("bench", "micro_ppta");
  J.set("workload", "soot-c");
  J.set("scale", 1.0 / 64);
  J.set("num_queries", uint64_t(N));
  J.set("threads", uint64_t(1));
  J.set("pag_nodes", uint64_t(G.Built.Graph->numNodes()));
  J.set("pag_edges", uint64_t(G.Built.Graph->numEdges()));
  J.set("traversal.batch_cold_qps", ColdQps);
  J.set("traversal.batch_warm_qps", WarmQps);
  J.set("traversal.sequential_qps", SeqQueries);
  if (Andersen.Ran) {
    J.set("andersen.methods", Andersen.Methods);
    J.set("andersen.pag_nodes", Andersen.Nodes);
    J.set("andersen.pag_edges", Andersen.Edges);
    J.set("andersen.t1_ms", Andersen.T1Ms);
    J.set("andersen.t2_ms", Andersen.T2Ms);
    J.set("andersen.t8_ms", Andersen.T8Ms);
    J.set("andersen.speedup_8v1", Andersen.T1Ms / Andersen.T8Ms);
    if (Andersen.DenseT1Ms > 0) {
      J.set("andersen.dense_t1_ms", Andersen.DenseT1Ms);
      J.set("andersen.hybrid_speedup_vs_dense",
            Andersen.DenseT1Ms / Andersen.T1Ms);
    }
  }
  if (J.writeFile(JsonPath))
    std::printf("throughput JSON written to %s\n", JsonPath.c_str());
  else
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
}

} // namespace

/// Custom main: --json=<file> and --andersen-methods=<N> are peeled
/// off before google-benchmark sees argv (it rejects flags it does not
/// know), then the registered microbenchmarks run, then the Andersen
/// scaling and throughput sections.
int main(int argc, char **argv) {
  std::string JsonPath;
  uint64_t AndersenMethods = 0;
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else if (std::strncmp(argv[I], "--andersen-methods=", 19) == 0)
      AndersenMethods = std::strtoull(argv[I] + 19, nullptr, 10);
    else
      Args.push_back(argv[I]);
  }
  int Argc = int(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  AndersenSection Andersen = runAndersenSection(AndersenMethods);
  runThroughputSection(JsonPath, Andersen);
  return 0;
}
