//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the core machinery: PPTA
/// summarization, DYNSUM queries (cold vs warm cache), REFINEPTS and
/// NOREFINE queries, Andersen solving, and interned-stack operations.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "engine/QueryScheduler.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/InternedStack.h"
#include "workload/Generator.h"
#include "workload/PaperExample.h"

#include <benchmark/benchmark.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Lazily built shared fixtures (benchmark registration runs before
/// main, so build on first use, not statically).
struct Fig2 {
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  pag::NodeId S1 = 0, S2 = 0, RetGet = 0;

  static Fig2 &get() {
    static Fig2 F;
    if (!F.Prog) {
      ir::ParseResult R = ir::parseProgram(workload::figure2Source());
      F.Prog = std::move(R.Prog);
      F.Built = pag::buildPAG(*F.Prog);
      for (const ir::Variable &V : F.Prog->variables()) {
        if (V.IsGlobal)
          continue;
        std::string_view Name = F.Prog->names().text(V.Name);
        std::string Method = F.Prog->describeMethod(V.Owner);
        if (Name == "s1" && Method == "Main.main")
          F.S1 = F.Built.Graph->nodeOfVar(V.Id);
        if (Name == "s2" && Method == "Main.main")
          F.S2 = F.Built.Graph->nodeOfVar(V.Id);
        if (Name == "ret" && Method == "Vector.get")
          F.RetGet = F.Built.Graph->nodeOfVar(V.Id);
      }
    }
    return F;
  }
};

struct GenProg {
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::vector<pag::NodeId> QueryNodes;

  static GenProg &get() {
    static GenProg G;
    if (!G.Prog) {
      workload::GenOptions GO;
      GO.Scale = 1.0 / 64;
      G.Prog = workload::generateProgram(
          workload::specByName("soot-c"), GO);
      G.Built = analysis::buildPAGWithAndersenCallGraph(*G.Prog);
      // Query every 37th local variable: a spread of demand targets.
      for (size_t I = 0; I < G.Prog->variables().size(); I += 37)
        if (!G.Prog->variables()[I].IsGlobal)
          G.QueryNodes.push_back(G.Built.Graph->nodeOfVar(ir::VarId(I)));
    }
    return G;
  }
};

void BM_PptaSummary_Figure2(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  PptaEngine Engine(*F.Built.Graph, A.fieldStacks(), Opts.MaxFieldDepth);
  for (auto _ : State) {
    Budget B(Opts.BudgetPerQuery);
    PptaSummary S;
    Engine.compute(F.RetGet, StackPool::empty(), RsmState::S1, B, S);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_PptaSummary_Figure2);

void BM_DynSumQuery_Cold(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  for (auto _ : State) {
    DynSumAnalysis A(*F.Built.Graph, Opts); // fresh cache every round
    benchmark::DoNotOptimize(A.query(F.S1));
  }
}
BENCHMARK(BM_DynSumQuery_Cold);

void BM_DynSumQuery_Warm(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  (void)A.query(F.S1);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S2));
}
BENCHMARK(BM_DynSumQuery_Warm);

void BM_RefinePtsQuery(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S1));
}
BENCHMARK(BM_RefinePtsQuery);

void BM_NoRefineQuery(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts, /*Refinement=*/false);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S1));
}
BENCHMARK(BM_NoRefineQuery);

void BM_DynSum_GeneratedQueries(benchmark::State &State) {
  GenProg &G = GenProg::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*G.Built.Graph, Opts);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        A.query(G.QueryNodes[I++ % G.QueryNodes.size()]));
  }
}
BENCHMARK(BM_DynSum_GeneratedQueries);

void BM_AndersenSolve(benchmark::State &State) {
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    AndersenAnalysis A(*G.Built.Graph);
    A.solve();
    benchmark::DoNotOptimize(A.propagationCount());
  }
}
BENCHMARK(BM_AndersenSolve);

void BM_PAGBuild(benchmark::State &State) {
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    pag::BuiltPAG Built = pag::buildPAG(*G.Prog);
    benchmark::DoNotOptimize(Built.Graph->numEdges());
  }
}
BENCHMARK(BM_PAGBuild);

void BM_EngineBatch(benchmark::State &State) {
  // The generated query stream as one batch, sharded over range(0)
  // workers with a cold shared store each round.
  GenProg &G = GenProg::get();
  engine::EngineOptions EO;
  EO.NumThreads = unsigned(State.range(0));
  for (auto _ : State) {
    engine::QueryScheduler S(*G.Built.Graph, EO);
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
  }
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EngineBatch_WarmStore(benchmark::State &State) {
  // Same batch against a scheduler whose shared store was warmed by a
  // prior run — the cross-batch reuse path.
  GenProg &G = GenProg::get();
  engine::EngineOptions EO;
  EO.NumThreads = unsigned(State.range(0));
  engine::QueryScheduler S(*G.Built.Graph, EO);
  (void)S.run(G.QueryNodes);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
}
BENCHMARK(BM_EngineBatch_WarmStore)->Arg(1)->Arg(4);

void BM_StackPool_PushPop(benchmark::State &State) {
  StackPool Pool;
  uint64_t Sum = 0;
  for (auto _ : State) {
    StackId S = StackPool::empty();
    for (uint32_t I = 0; I < 16; ++I)
      S = Pool.push(S, I & 7);
    for (uint32_t I = 0; I < 16; ++I) {
      Sum += Pool.peek(S);
      S = Pool.pop(S);
    }
  }
  benchmark::DoNotOptimize(Sum);
}
BENCHMARK(BM_StackPool_PushPop);

} // namespace

BENCHMARK_MAIN();
