//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the core machinery: PPTA
/// summarization, DYNSUM queries (cold vs warm cache), REFINEPTS and
/// NOREFINE queries, Andersen solving, and interned-stack operations —
/// plus a traversal-throughput section (queries/sec over the generated
/// workload) that lands in a BENCH_*.json file via --json=<file>.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "engine/QueryScheduler.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/InternedStack.h"
#include "support/Timer.h"
#include "workload/Generator.h"
#include "workload/PaperExample.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Lazily built shared fixtures (benchmark registration runs before
/// main, so build on first use, not statically).
struct Fig2 {
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  pag::NodeId S1 = 0, S2 = 0, RetGet = 0;

  static Fig2 &get() {
    static Fig2 F;
    if (!F.Prog) {
      ir::ParseResult R = ir::parseProgram(workload::figure2Source());
      F.Prog = std::move(R.Prog);
      F.Built = pag::buildPAG(*F.Prog);
      for (const ir::Variable &V : F.Prog->variables()) {
        if (V.IsGlobal)
          continue;
        std::string_view Name = F.Prog->names().text(V.Name);
        std::string Method = F.Prog->describeMethod(V.Owner);
        if (Name == "s1" && Method == "Main.main")
          F.S1 = F.Built.Graph->nodeOfVar(V.Id);
        if (Name == "s2" && Method == "Main.main")
          F.S2 = F.Built.Graph->nodeOfVar(V.Id);
        if (Name == "ret" && Method == "Vector.get")
          F.RetGet = F.Built.Graph->nodeOfVar(V.Id);
      }
    }
    return F;
  }
};

struct GenProg {
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::vector<pag::NodeId> QueryNodes;

  static GenProg &get() {
    static GenProg G;
    if (!G.Prog) {
      workload::GenOptions GO;
      GO.Scale = 1.0 / 64;
      G.Prog = workload::generateProgram(
          workload::specByName("soot-c"), GO);
      G.Built = analysis::buildPAGWithAndersenCallGraph(*G.Prog);
      // Query every 37th local variable: a spread of demand targets.
      for (size_t I = 0; I < G.Prog->variables().size(); I += 37)
        if (!G.Prog->variables()[I].IsGlobal)
          G.QueryNodes.push_back(G.Built.Graph->nodeOfVar(ir::VarId(I)));
    }
    return G;
  }
};

void BM_PptaSummary_Figure2(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  PptaEngine Engine(*F.Built.Graph, A.fieldStacks(), Opts.MaxFieldDepth);
  for (auto _ : State) {
    Budget B(Opts.BudgetPerQuery);
    PptaSummary S;
    Engine.compute(F.RetGet, StackPool::empty(), RsmState::S1, B, S);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_PptaSummary_Figure2);

void BM_DynSumQuery_Cold(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  for (auto _ : State) {
    DynSumAnalysis A(*F.Built.Graph, Opts); // fresh cache every round
    benchmark::DoNotOptimize(A.query(F.S1));
  }
}
BENCHMARK(BM_DynSumQuery_Cold);

void BM_DynSumQuery_Warm(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  (void)A.query(F.S1);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S2));
}
BENCHMARK(BM_DynSumQuery_Warm);

void BM_RefinePtsQuery(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S1));
}
BENCHMARK(BM_RefinePtsQuery);

void BM_NoRefineQuery(benchmark::State &State) {
  Fig2 &F = Fig2::get();
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts, /*Refinement=*/false);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.query(F.S1));
}
BENCHMARK(BM_NoRefineQuery);

void BM_DynSum_GeneratedQueries(benchmark::State &State) {
  GenProg &G = GenProg::get();
  AnalysisOptions Opts;
  DynSumAnalysis A(*G.Built.Graph, Opts);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        A.query(G.QueryNodes[I++ % G.QueryNodes.size()]));
  }
}
BENCHMARK(BM_DynSum_GeneratedQueries);

void BM_AndersenSolve(benchmark::State &State) {
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    AndersenAnalysis A(*G.Built.Graph);
    A.solve();
    benchmark::DoNotOptimize(A.propagationCount());
  }
}
BENCHMARK(BM_AndersenSolve);

void BM_PAGBuild(benchmark::State &State) {
  GenProg &G = GenProg::get();
  for (auto _ : State) {
    pag::BuiltPAG Built = pag::buildPAG(*G.Prog);
    benchmark::DoNotOptimize(Built.Graph->numEdges());
  }
}
BENCHMARK(BM_PAGBuild);

void BM_EngineBatch(benchmark::State &State) {
  // The generated query stream as one batch, sharded over range(0)
  // workers with a cold shared store each round.
  GenProg &G = GenProg::get();
  engine::EngineOptions EO;
  EO.NumThreads = unsigned(State.range(0));
  for (auto _ : State) {
    engine::QueryScheduler S(*G.Built.Graph, EO);
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
  }
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EngineBatch_WarmStore(benchmark::State &State) {
  // Same batch against a scheduler whose shared store was warmed by a
  // prior run — the cross-batch reuse path.
  GenProg &G = GenProg::get();
  engine::EngineOptions EO;
  EO.NumThreads = unsigned(State.range(0));
  engine::QueryScheduler S(*G.Built.Graph, EO);
  (void)S.run(G.QueryNodes);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
}
BENCHMARK(BM_EngineBatch_WarmStore)->Arg(1)->Arg(4);

void BM_StackPool_PushPop(benchmark::State &State) {
  StackPool Pool;
  uint64_t Sum = 0;
  for (auto _ : State) {
    StackId S = StackPool::empty();
    for (uint32_t I = 0; I < 16; ++I)
      S = Pool.push(S, I & 7);
    for (uint32_t I = 0; I < 16; ++I) {
      Sum += Pool.peek(S);
      S = Pool.pop(S);
    }
  }
  benchmark::DoNotOptimize(Sum);
}
BENCHMARK(BM_StackPool_PushPop);

//===----------------------------------------------------------------------===//
// Traversal throughput: queries/sec over the generated workload.
//
// google-benchmark reports ns/op; this section reports the headline
// number the perf trajectory tracks — demand queries answered per
// second, cold (fresh scheduler and summary store per batch), warm
// (store reused across batches), and sequential (one DynSumAnalysis).
//===----------------------------------------------------------------------===//

/// Repeats \p Body until ~\p MinSeconds elapsed; returns executions/sec.
template <typename Fn> double measureRate(double MinSeconds, Fn &&Body) {
  // One untimed warm-up execution.
  Body();
  uint64_t Reps = 0;
  Timer T;
  do {
    Body();
    ++Reps;
  } while (T.seconds() < MinSeconds);
  return double(Reps) / T.seconds();
}

void runThroughputSection(const std::string &JsonPath) {
  GenProg &G = GenProg::get();
  size_t N = G.QueryNodes.size();
  engine::EngineOptions EO;
  EO.NumThreads = 1;

  double ColdBatches = measureRate(1.0, [&] {
    engine::QueryScheduler S(*G.Built.Graph, EO);
    benchmark::DoNotOptimize(S.run(G.QueryNodes).Stats.TotalSteps);
  });

  engine::QueryScheduler Warm(*G.Built.Graph, EO);
  (void)Warm.run(G.QueryNodes);
  double WarmBatches = measureRate(1.0, [&] {
    benchmark::DoNotOptimize(Warm.run(G.QueryNodes).Stats.TotalSteps);
  });

  analysis::AnalysisOptions AO;
  DynSumAnalysis Seq(*G.Built.Graph, AO);
  size_t I = 0;
  double SeqQueries = measureRate(1.0, [&] {
    benchmark::DoNotOptimize(
        Seq.query(G.QueryNodes[I++ % G.QueryNodes.size()]).Steps);
  });

  double ColdQps = ColdBatches * double(N);
  double WarmQps = WarmBatches * double(N);
  std::printf("\n-- Traversal throughput (soot-c @ 1/64, %zu queries, "
              "1 thread) --\n",
              N);
  std::printf("batch cold: %12.0f queries/sec\n", ColdQps);
  std::printf("batch warm: %12.0f queries/sec\n", WarmQps);
  std::printf("sequential: %12.0f queries/sec\n", SeqQueries);

  if (JsonPath.empty())
    return;
  bench::BenchJson J;
  J.set("bench", "micro_ppta");
  J.set("workload", "soot-c");
  J.set("scale", 1.0 / 64);
  J.set("num_queries", uint64_t(N));
  J.set("threads", uint64_t(1));
  J.set("pag_nodes", uint64_t(G.Built.Graph->numNodes()));
  J.set("pag_edges", uint64_t(G.Built.Graph->numEdges()));
  J.set("traversal.batch_cold_qps", ColdQps);
  J.set("traversal.batch_warm_qps", WarmQps);
  J.set("traversal.sequential_qps", SeqQueries);
  if (J.writeFile(JsonPath))
    std::printf("throughput JSON written to %s\n", JsonPath.c_str());
  else
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
}

} // namespace

/// Custom main: --json=<file> is peeled off before google-benchmark
/// sees argv (it rejects flags it does not know), then the registered
/// microbenchmarks run, then the throughput section.
int main(int argc, char **argv) {
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else
      Args.push_back(argv[I]);
  }
  int Argc = int(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runThroughputSection(JsonPath);
  return 0;
}
