//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1: DYNSUM's traversal of the Figure 2 motivating
/// example — s1 answered from scratch, s2 answered with summary reuse.
///
/// The paper counts 23 RSM steps for s1 and 15 for s2.  Our step unit
/// is PAG edge traversals (the budget unit), so absolute numbers
/// differ; the property reproduced is (a) both queries resolve to
/// exactly {o26} / {o29} and (b) s2 costs measurably less after s1
/// warmed the cache than on a cold analysis.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/Debug.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "workload/PaperExample.h"

using namespace dynsum;
using namespace dynsum::analysis;

static pag::NodeId findVar(const ir::Program &P, const pag::PAG &G,
                           const char *Method, const char *Var) {
  for (const ir::Variable &V : P.variables()) {
    if (V.IsGlobal)
      continue;
    if (P.names().text(V.Name) != std::string_view(Var))
      continue;
    if (P.describeMethod(V.Owner).find(Method) == std::string::npos)
      continue;
    return G.nodeOfVar(V.Id);
  }
  fatalError("figure-2 variable not found");
}

int main() {
  outs() << "=== Table 1: DYNSUM on the Figure 2 motivating example ===\n\n";
  ir::ParseResult R = ir::parseProgram(workload::figure2Source());
  if (!R.ok()) {
    errs() << "parse error: " << R.Error << '\n';
    return 1;
  }
  pag::BuiltPAG Built = pag::buildPAG(*R.Prog);
  AnalysisOptions Opts;

  pag::NodeId S1 = findVar(*R.Prog, *Built.Graph, "Main.main", "s1");
  pag::NodeId S2 = findVar(*R.Prog, *Built.Graph, "Main.main", "s2");

  auto Describe = [&](const QueryResult &Res) {
    std::string Out;
    for (ir::AllocId A : Res.allocSites())
      Out += R.Prog->describeAlloc(A) + " ";
    return Out;
  };

  PrettyTable T;
  T.row()
      .cell("query")
      .cell("analysis")
      .cell("cache")
      .cell("steps")
      .cell("summaries")
      .cell("points-to");

  DynSumAnalysis Warm(*Built.Graph, Opts);
  QueryResult W1 = Warm.query(S1);
  T.row()
      .cell("s1")
      .cell("DYNSUM")
      .cell("cold")
      .cell(W1.Steps)
      .cell(uint64_t(Warm.cacheSize()))
      .cell(Describe(W1));
  QueryResult W2 = Warm.query(S2);
  T.row()
      .cell("s2")
      .cell("DYNSUM")
      .cell("warm")
      .cell(W2.Steps)
      .cell(uint64_t(Warm.cacheSize()))
      .cell(Describe(W2));

  DynSumAnalysis Cold(*Built.Graph, Opts);
  QueryResult C2 = Cold.query(S2);
  T.row()
      .cell("s2")
      .cell("DYNSUM")
      .cell("cold")
      .cell(C2.Steps)
      .cell(uint64_t(Cold.cacheSize()))
      .cell(Describe(C2));

  RefinePtsAnalysis Refine(*Built.Graph, Opts);
  QueryResult R1 = Refine.query(S1);
  T.row()
      .cell("s1")
      .cell("REFINEPTS")
      .cell("-")
      .cell(R1.Steps)
      .cell(uint64_t(0))
      .cell(Describe(R1));
  QueryResult R2 = Refine.query(S2);
  T.row()
      .cell("s2")
      .cell("REFINEPTS")
      .cell("-")
      .cell(R2.Steps)
      .cell(uint64_t(0))
      .cell(Describe(R2));
  T.print(outs());

  outs() << "\npaper: s1 takes 23 RSM steps cold; s2 takes 15 with reuse "
            "(different step unit, same ordering: warm s2 < cold s2).\n";
  outs() << "warm-vs-cold s2 saving: " << C2.Steps - W2.Steps
         << " steps\n";
  outs().flush();
  return (W2.Steps < C2.Steps && Describe(W1) == "o26:Integer " &&
          Describe(W2) == "o29:String ")
             ? 0
             : 1;
}
