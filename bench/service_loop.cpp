//===----------------------------------------------------------------------===//
///
/// \file
/// The edit-while-querying service loop: the IDE/JIT serving scenario
/// the AnalysisService exists for.
///
/// Part 1 replays an identical deterministic edit/re-query script under
/// four configurations and compares *warm re-query throughput* (query
/// time only; commit cost reported separately):
///
///   from-scratch            new PAG + cold engine per cycle
///   clear-all               AnalysisService, store dropped per commit
///   per-method              single-threaded EditSession (private cache)
///   per-method+shared-store AnalysisService, per-method store
///                           invalidation + parallel batches
///
/// Part 2 runs the real concurrent loop — reader threads stream query
/// batches while the editor thread commits — and reports sustained
/// throughput and how many batches drained against a superseded
/// generation.
///
/// Part 3 measures commit latency itself: p50/p95 of delta commits
/// (single-method edits, per-method re-lower over the cloned previous
/// generation) against from-scratch commits (forced full re-lower) at
/// 1k/10k/100k-method generated programs.  `--commit-max-methods=N`
/// skips the sizes above N (the CI smoke gate runs up to 10k).  The
/// `BENCH_pr4.json` keys commit.<size>.* feed the CI assertion that the
/// 10k delta p50 beats the from-scratch row.
///
/// Part 4 measures the PARALLEL commit pipeline: the same delta
/// commits at 1/2/8 commit threads on the 10k and 100k programs
/// (copy-on-write snapshot, shape sweep, staged lowering, partitioned repack,
/// boundary diff), plus the async path — how long a background submitCommit holds
/// the calling thread versus a blocking commit.  The pcommit.* keys in
/// `BENCH_pr5.json` feed the CI gate that 8-thread delta commits beat
/// single-thread on the 10k program.
///
/// Part 6 measures graceful overload degradation: an open-loop arrival
/// process offers batches ABOVE the measured service capacity (arrivals
/// do not wait for completions, so nothing brakes the queue except
/// admission control) and reports the shed rate plus the latency of the
/// batches that were served — the overload.* keys in `BENCH_pr7.json`.
/// The point is that under sustained overload the service sheds
/// explicitly (Status == Overloaded) while SERVED batches keep a
/// bounded p95, instead of every batch degrading together.
///
/// Part 9 drives the multi-tenant socket server end to end: an
/// in-process AnalysisServer hosting 4 tenants takes a closed-loop
/// 4-clients-per-tenant mix of query batches, buffered edits and async
/// commits over real loopback connections, and the per-request wall
/// times become the server.* latency percentiles in `BENCH_pr10.json`
/// (plus shed counts: overloaded queries and capped connections are
/// explicit replies, so the bench can count them instead of guessing).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "incremental/EditSession.h"
#include "server/CommandInterpreter.h"
#include "server/Serverd.h"
#include "service/AnalysisService.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::bench;
using namespace dynsum::engine;
using namespace dynsum::incremental;
using namespace dynsum::service;

namespace {

constexpr unsigned kCycles = 10;

/// The edit script and probe picker are shared with the service tests
/// (workload::applyScriptEdit / workload::probeVariables) so
/// tests/service_test.cpp pins exactly the scenario measured here.
using workload::probeVariables;

std::vector<ir::MethodId> applyEdit(ir::Program &P, unsigned I) {
  return workload::applyScriptEdit(P, I);
}

std::unique_ptr<ir::Program> makeProgram(const HarnessOptions &Opts) {
  workload::GenOptions Gen;
  Gen.Scale = Opts.Scale;
  Gen.Seed = Opts.Seed;
  return workload::generateProgram(workload::specByName("soot-c"), Gen);
}

/// Nearest-rank percentile over a sample copy (shared by the commit
/// latency sections).
double percentile(std::vector<double> Samples, double P) {
  std::sort(Samples.begin(), Samples.end());
  size_t I = size_t(P * double(Samples.size() - 1) + 0.5);
  return Samples[I];
}

/// Builds the protocol query spec ("Class.method.var" / "method.var")
/// for a local variable, i.e. the inverse of server::resolveVarSpec.
std::string querySpecOf(const ir::Program &P, ir::VarId V) {
  const ir::Variable &Var = P.variable(V);
  const ir::Method &M = P.method(Var.Owner);
  std::string Spec;
  if (M.Owner != ir::kNone) {
    Spec += P.names().text(P.classOf(M.Owner).Name);
    Spec += '.';
  }
  Spec += P.names().text(M.Name);
  Spec += '.';
  Spec += P.names().text(Var.Name);
  return Spec;
}

/// A minimal blocking client for the serverd line protocol: one
/// request line out, one "."-terminated reply block back.
class BenchClient {
public:
  explicit BenchClient(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    Connected = Fd >= 0 && ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                                     sizeof(Addr)) == 0;
  }
  ~BenchClient() {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool connected() const { return Connected; }

  std::string request(const std::string &Line) {
    std::string Wire = Line + "\n";
    size_t Off = 0;
    while (Off < Wire.size()) {
      ssize_t W = ::send(Fd, Wire.data() + Off, Wire.size() - Off,
                         MSG_NOSIGNAL);
      if (W < 0)
        return {};
      Off += size_t(W);
    }
    return readBlock();
  }

  std::string readBlock() {
    std::string Block;
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string L = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        if (L == ".")
          return Block;
        Block += L;
        Block += '\n';
        continue;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return Block; // hangup
      Buf.append(Chunk, size_t(N));
    }
  }

private:
  int Fd = -1;
  bool Connected = false;
  std::string Buf;
};

/// Accumulated results of one configuration's script replay.
struct LoopResult {
  double QuerySeconds = 0.0; ///< warm re-query time only
  double CommitSeconds = 0.0;
  uint64_t Steps = 0;
  uint64_t Computed = 0; ///< PPTA computations during re-queries
  uint64_t Dropped = 0;

  double qps(size_t QueriesPerCycle) const {
    return QuerySeconds > 0.0 ? double(kCycles) * double(QueriesPerCycle) /
                                    QuerySeconds
                              : 0.0;
  }
};

} // namespace

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  BenchJson Json;
  outs() << "=== Service loop: edit-while-querying (soot-c; " << kCycles
         << " edit/re-query cycles; scale=" << Opts.Scale
         << ", threads=" << Opts.Threads << ") ===\n\n";

  size_t NumProbe = 0;

  PrettyTable T;
  T.row()
      .cell("configuration")
      .cell("warm qps")
      .cell("steps/cycle")
      .cell("computed/cycle")
      .cell("dropped/commit")
      .cell("sec/commit");

  auto AddRow = [&](const char *Name, const LoopResult &R) {
    T.row()
        .cell(Name)
        .cell(R.qps(NumProbe), 0)
        .cell(R.Steps / kCycles)
        .cell(R.Computed / kCycles)
        .cell(R.Dropped / kCycles)
        .cell(R.CommitSeconds / kCycles, 4);
  };

  // --- from-scratch: rebuild everything every cycle --------------------
  LoopResult FromScratch;
  {
    auto P = makeProgram(Opts);
    std::vector<ir::VarId> Probe = probeVariables(*P, 61);
    NumProbe = Probe.size();
    for (unsigned I = 0; I < kCycles; ++I) {
      Timer Commit;
      applyEdit(*P, I);
      pag::BuiltPAG Built = pag::buildPAG(*P);
      FromScratch.CommitSeconds += Commit.seconds();

      QueryScheduler Fresh(*Built.Graph, Opts.engineOptions(Opts.Threads));
      QueryBatch B;
      for (ir::VarId V : Probe)
        B.add(Built.Graph->nodeOfVar(V));
      Timer Q;
      BatchResult R = Fresh.run(B);
      FromScratch.QuerySeconds += Q.seconds();
      FromScratch.Steps += R.Stats.TotalSteps;
      FromScratch.Computed += R.Stats.SummariesComputed;
    }
    AddRow("from-scratch", FromScratch);
  }

  // --- the two service policies ----------------------------------------
  LoopResult ClearAllR, SharedR;
  engine::StoreCounters SharedCounters;
  std::vector<engine::StoreCounters> SharedStripes;
  for (InvalidationPolicy Policy :
       {InvalidationPolicy::ClearAll, InvalidationPolicy::PerMethod}) {
    ServiceOptions SO;
    SO.Engine = Opts.engineOptions(Opts.Threads);
    SO.Policy = Policy;
    AnalysisService S(makeProgram(Opts), SO);
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    (void)S.queryVars(Probe); // warm start

    LoopResult &R = Policy == InvalidationPolicy::ClearAll ? ClearAllR
                                                           : SharedR;
    for (unsigned I = 0; I < kCycles; ++I) {
      Timer Commit;
      S.editProgram([I](ir::Program &P) { return applyEdit(P, I); });
      CommitStats CS = S.submitCommit().wait();
      R.CommitSeconds += Commit.seconds();
      R.Dropped += CS.SummariesDropped;

      Timer Q;
      ServiceBatchResult BR = S.queryVars(Probe);
      R.QuerySeconds += Q.seconds();
      R.Steps += BR.Stats.TotalSteps;
      R.Computed += BR.Stats.SummariesComputed;
    }
    if (Policy == InvalidationPolicy::PerMethod) {
      ServiceStats SS = S.stats();
      SharedCounters = SS.Store;
      SharedStripes = SS.StoreStripes;
    }
    AddRow(Policy == InvalidationPolicy::ClearAll ? "clear-all (service)"
                                                  : "per-method+shared-store",
           R);
  }

  // --- per-method on the single-threaded EditSession -------------------
  LoopResult PerMethodR;
  {
    auto P = makeProgram(Opts);
    std::vector<ir::VarId> Probe = probeVariables(*P, 61);
    EditSession S(std::move(P), Opts.analysisOptions(),
                  InvalidationPolicy::PerMethod);
    for (ir::VarId V : Probe)
      S.queryVar(V); // warm start

    for (unsigned I = 0; I < kCycles; ++I) {
      Timer Commit;
      for (ir::MethodId M : applyEdit(S.program(), I))
        S.markDirty(M); // same script, via direct mutation + markDirty
      CommitStats CS = S.commit();
      PerMethodR.CommitSeconds += Commit.seconds();
      PerMethodR.Dropped += CS.SummariesDropped;

      Timer Q;
      for (ir::VarId V : Probe)
        PerMethodR.Steps += S.queryVar(V).Steps;
      PerMethodR.QuerySeconds += Q.seconds();
    }
    AddRow("per-method (session)", PerMethodR);
  }

  // --- per-method+shared-store pinned to ONE engine thread -------------
  // The same replay with no intra-batch parallelism: on a 1-core box the
  // multi-threaded rows above mostly measure oversubscription, so this
  // row is the one that tracks the serving-path cost per query there.
  LoopResult SingleR;
  {
    ServiceOptions SO;
    SO.Engine = Opts.engineOptions(1);
    SO.Policy = InvalidationPolicy::PerMethod;
    AnalysisService S(makeProgram(Opts), SO);
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    (void)S.queryVars(Probe); // warm start
    for (unsigned I = 0; I < kCycles; ++I) {
      Timer Commit;
      S.editProgram([I](ir::Program &P) { return applyEdit(P, I); });
      CommitStats CS = S.submitCommit().wait();
      SingleR.CommitSeconds += Commit.seconds();
      SingleR.Dropped += CS.SummariesDropped;

      Timer Q;
      ServiceBatchResult BR = S.queryVars(Probe);
      SingleR.QuerySeconds += Q.seconds();
      SingleR.Steps += BR.Stats.TotalSteps;
      SingleR.Computed += BR.Stats.SummariesComputed;
    }
    AddRow("per-method+shared (1 thread)", SingleR);
  }

  T.print(outs());
  outs() << "\nper-method+shared-store re-queries reuse every surviving\n"
            "store entry across worker threads; clear-all recomputes the\n"
            "world each commit, from-scratch additionally pays the PAG\n"
            "rebuild into cold caches.\n";

  //===--------------------------------------------------------------------===//
  // Part 2: genuinely concurrent — readers stream batches over commits.
  //===--------------------------------------------------------------------===//

  outs() << "\n=== Concurrent serving (2 readers x batches vs "
         << kCycles << " commits) ===\n";
  uint64_t Drained = 0, Batches = 0;
  double Seconds = 0.0;
  {
    ServiceOptions SO;
    SO.Engine = Opts.engineOptions(Opts.Threads);
    AnalysisService S(makeProgram(Opts), SO);
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    (void)S.queryVars(Probe);

    std::atomic<bool> Done{false};
    std::atomic<uint64_t> BatchCount{0}, StaleCount{0};
    Timer Clock;
    std::vector<std::thread> Readers;
    for (int W = 0; W < 2; ++W)
      Readers.emplace_back([&] {
        do {
          ServiceBatchResult R = S.queryVars(Probe);
          BatchCount.fetch_add(1, std::memory_order_relaxed);
          if (R.Generation != S.generation())
            StaleCount.fetch_add(1, std::memory_order_relaxed);
        } while (!Done.load(std::memory_order_relaxed));
      });
    for (unsigned I = 0; I < kCycles; ++I) {
      S.editProgram([I](ir::Program &P) { return applyEdit(P, I); });
      S.submitCommit().wait();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Done.store(true, std::memory_order_relaxed);
    for (std::thread &W : Readers)
      W.join();
    Seconds = Clock.seconds();
    Batches = BatchCount.load();
    Drained = StaleCount.load();

    outs() << "batches " << Batches << " (" << Drained
           << " drained against a superseded generation), commits "
           << uint64_t(kCycles) << ", sustained ";
    outs().writeFixed(Seconds > 0 ? double(Batches) * double(Probe.size()) /
                                        Seconds
                                  : 0.0,
                      0);
    outs() << " queries/sec, final generation "
           << S.generation() << ", store " << uint64_t(S.stats().StoreSize)
           << " summaries\n";
  }

  //===--------------------------------------------------------------------===//
  // Part 3: commit latency — delta vs from-scratch at 1k/10k/100k
  // methods (soot-c is 3.4k methods at scale 1).
  //===--------------------------------------------------------------------===//

  outs() << "\n=== Commit latency: delta vs from-scratch (single-method "
            "edits) ===\n\n";
  {
    CommandLine CL(argc, argv);
    uint64_t MaxMethods =
        uint64_t(CL.getInt("commit-max-methods", 100000));

    struct SizeRow {
      const char *Label;
      size_t Methods;
      double Scale;
      unsigned DeltaSamples;
      unsigned ScratchSamples;
    };
    const SizeRow Rows[] = {
        {"1k", 1000, 1000.0 / 3400.0, 9, 5},
        {"10k", 10000, 10000.0 / 3400.0, 9, 3},
        {"100k", 100000, 100000.0 / 3400.0, 7, 3},
    };

    PrettyTable CT;
    CT.row()
        .cell("methods")
        .cell("delta p50 ms")
        .cell("delta p95 ms")
        .cell("scratch p50 ms")
        .cell("scratch p95 ms")
        .cell("speedup p50")
        .cell("relowered");

    for (const SizeRow &Row : Rows) {
      if (Row.Methods > MaxMethods)
        continue;
      workload::GenOptions Gen;
      Gen.Scale = Row.Scale;
      Gen.Seed = Opts.Seed;
      ServiceOptions SO;
      SO.Engine = Opts.engineOptions(Opts.Threads);
      AnalysisService S(
          workload::generateProgram(workload::specByName("soot-c"), Gen),
          SO);

      unsigned Step = 0;
      auto CommitOnce = [&](CommitMode Mode) {
        S.editProgram(
            [&](ir::Program &P) { return workload::applyScriptEdit(P, Step); });
        ++Step;
        return S.submitCommit({Mode, /*Background=*/false}).wait().Seconds * 1e3;
      };

      (void)CommitOnce(CommitMode::Delta); // warm-up: first-edit paths
      std::vector<double> DeltaMs, ScratchMs;
      uint64_t Relowered = 0;
      for (unsigned I = 0; I < Row.DeltaSamples; ++I) {
        DeltaMs.push_back(CommitOnce(CommitMode::Delta));
        Relowered += S.stats().LastCommitRelowered;
      }
      for (unsigned I = 0; I < Row.ScratchSamples; ++I)
        ScratchMs.push_back(CommitOnce(CommitMode::Scratch));

      double DP50 = percentile(DeltaMs, 0.5), DP95 = percentile(DeltaMs, 0.95);
      double SP50 = percentile(ScratchMs, 0.5),
             SP95 = percentile(ScratchMs, 0.95);
      CT.row()
          .cell(Row.Label)
          .cell(DP50, 2)
          .cell(DP95, 2)
          .cell(SP50, 2)
          .cell(SP95, 2)
          .cell(DP50 > 0.0 ? SP50 / DP50 : 0.0, 1)
          .cell(Relowered / Row.DeltaSamples);

      std::string Prefix = std::string("commit.") + Row.Label;
      Json.set(Prefix + ".methods", uint64_t(Row.Methods));
      Json.set(Prefix + ".delta_p50_ms", DP50);
      Json.set(Prefix + ".delta_p95_ms", DP95);
      Json.set(Prefix + ".scratch_p50_ms", SP50);
      Json.set(Prefix + ".scratch_p95_ms", SP95);
      Json.set(Prefix + ".speedup_p50", DP50 > 0.0 ? SP50 / DP50 : 0.0);
    }
    CT.print(outs());
    outs() << "\ndelta commits clone the previous generation's graph and\n"
              "re-lower only the edited method; from-scratch forces every\n"
              "method through lowering again (the pre-delta commit path).\n";
  }

  //===--------------------------------------------------------------------===//
  // Part 4: the parallel commit pipeline — delta commits at 1/2/8
  // commit threads, and the async enqueue cost.
  //===--------------------------------------------------------------------===//

  outs() << "\n=== Parallel commit pipeline: delta commits at 1/2/8 "
            "commit threads ===\n\n";
  {
    CommandLine CL(argc, argv);
    uint64_t MaxMethods = uint64_t(CL.getInt("commit-max-methods", 100000));

    struct PSizeRow {
      const char *Label;
      size_t Methods;
      double Scale;
      unsigned Samples;
    };
    const PSizeRow Rows[] = {
        {"10k", 10000, 10000.0 / 3400.0, 15},
        {"100k", 100000, 100000.0 / 3400.0, 5},
    };
    const unsigned ThreadCounts[] = {1, 2, 8};

    PrettyTable PT;
    PT.row()
        .cell("methods")
        .cell("threads")
        .cell("delta p50 ms")
        .cell("delta p95 ms")
        .cell("clone p50")
        .cell("shape p50")
        .cell("repack p50")
        .cell("speedup vs 1t");

    for (const PSizeRow &Row : Rows) {
      if (Row.Methods > MaxMethods)
        continue;
      double P50ByThreads[3] = {};
      for (unsigned TI = 0; TI < 3; ++TI) {
        unsigned CT = ThreadCounts[TI];
        workload::GenOptions Gen;
        Gen.Scale = Row.Scale;
        Gen.Seed = Opts.Seed;
        ServiceOptions SO;
        SO.Engine = Opts.engineOptions(Opts.Threads);
        SO.Commit = CT;
        AnalysisService S(
            workload::generateProgram(workload::specByName("soot-c"), Gen),
            SO);

        unsigned Step = 0;
        auto CommitOnce = [&] {
          S.editProgram([&](ir::Program &P) {
            return workload::applyScriptEdit(P, Step);
          });
          ++Step;
          return S.submitCommit().wait();
        };
        CommitOnce(); // warm-up: first-edit paths
        std::vector<double> Ms, CloneMs, ShapeMs, RepackMs;
        for (unsigned I = 0; I < Row.Samples; ++I) {
          CommitStats CS = CommitOnce();
          Ms.push_back(CS.Seconds * 1e3);
          CloneMs.push_back(CS.CloneSeconds * 1e3);
          ShapeMs.push_back(CS.ShapeSeconds * 1e3);
          RepackMs.push_back(CS.RepackSeconds * 1e3);
        }

        double P50 = percentile(Ms, 0.5), P95 = percentile(Ms, 0.95);
        double CloneP50 = percentile(CloneMs, 0.5);
        double ShapeP50 = percentile(ShapeMs, 0.5);
        double RepackP50 = percentile(RepackMs, 0.5);
        P50ByThreads[TI] = P50;
        PT.row()
            .cell(Row.Label)
            .cell(uint64_t(CT))
            .cell(P50, 2)
            .cell(P95, 2)
            .cell(CloneP50, 2)
            .cell(ShapeP50, 2)
            .cell(RepackP50, 2)
            .cell(P50 > 0.0 ? P50ByThreads[0] / P50 : 0.0, 2);

        std::string Prefix = std::string("pcommit.") + Row.Label + ".t" +
                             std::to_string(CT);
        Json.set(Prefix + ".p50_ms", P50);
        Json.set(Prefix + ".p95_ms", P95);
        Json.set(Prefix + ".clone_p50_ms", CloneP50);
        Json.set(Prefix + ".shape_p50_ms", ShapeP50);
        Json.set(Prefix + ".repack_p50_ms", RepackP50);
      }
      Json.set(std::string("pcommit.") + Row.Label + ".methods",
               uint64_t(Row.Methods));
      Json.set(std::string("pcommit.") + Row.Label + ".speedup_8v1",
               P50ByThreads[2] > 0.0 ? P50ByThreads[0] / P50ByThreads[2]
                                     : 0.0);
    }
    PT.print(outs());

    // Async enqueue cost: how long the serving thread is held.  A
    // blocking commit pays the whole pipeline; a background submitCommit returns as
    // soon as the request is queued, and the committer publishes in the
    // background (waitForCommits fences each sample so commits never
    // pile up).
    if (10000 <= MaxMethods) {
      workload::GenOptions Gen;
      Gen.Scale = 10000.0 / 3400.0;
      Gen.Seed = Opts.Seed;
      ServiceOptions SO;
      SO.Engine = Opts.engineOptions(Opts.Threads);
      SO.Commit = 8;
      AnalysisService S(
          workload::generateProgram(workload::specByName("soot-c"), Gen),
          SO);

      unsigned Step = 0;
      auto Edit = [&] {
        S.editProgram([&](ir::Program &P) {
          return workload::applyScriptEdit(P, Step);
        });
        ++Step;
      };
      Edit();
      S.submitCommit().wait(); // warm-up
      std::vector<double> EnqueueMs, BlockingMs;
      for (unsigned I = 0; I < 7; ++I) {
        Edit();
        Timer TA;
        S.submitCommit({service::CommitMode::Delta, /*Background=*/true});
        EnqueueMs.push_back(TA.seconds() * 1e3);
        S.waitForCommits();
        Edit();
        Timer TB;
        S.submitCommit().wait();
        BlockingMs.push_back(TB.seconds() * 1e3);
      }
      double EnqueueP50 = percentile(EnqueueMs, 0.5);
      double BlockingP50 = percentile(BlockingMs, 0.5);
      outs() << "\nasync commit enqueue p50 ";
      outs().writeFixed(EnqueueP50, 4);
      outs() << " ms vs blocking commit p50 ";
      outs().writeFixed(BlockingP50, 2);
      outs() << " ms (10k methods, 8 commit threads): the serving "
                "thread no longer pays the pipeline\n";
      Json.set("pcommit.async.enqueue_p50_ms", EnqueueP50);
      Json.set("pcommit.async.blocking_p50_ms", BlockingP50);
    }
  }

  //===--------------------------------------------------------------------===//
  // Part 5: generation retention — the copy-on-write snapshot replaced
  // the commit-time deep clone, so a commit's snapshot step is a chunk-
  // table copy and a retained generation holds only the chunks later
  // deltas split away from it.  gen.<size>.* records the snapshot cost
  // and the retained fraction; the CI gate pins both so the clone
  // cannot creep back in.
  //===--------------------------------------------------------------------===//

  outs() << "\n=== Generation retention: CoW snapshot cost and retained "
            "bytes ===\n\n";
  {
    CommandLine CL(argc, argv);
    uint64_t MaxMethods = uint64_t(CL.getInt("commit-max-methods", 100000));

    struct GSizeRow {
      const char *Label;
      size_t Methods;
      double Scale;
      unsigned Samples;
    };
    const GSizeRow Rows[] = {
        {"10k", 10000, 10000.0 / 3400.0, 9},
        {"100k", 100000, 100000.0 / 3400.0, 5},
    };

    PrettyTable GT;
    GT.row()
        .cell("methods")
        .cell("commit p50 ms")
        .cell("snapshot p50 ms")
        .cell("retained KB")
        .cell("graph KB")
        .cell("retained frac");

    for (const GSizeRow &Row : Rows) {
      if (Row.Methods > MaxMethods)
        continue;
      workload::GenOptions Gen;
      Gen.Scale = Row.Scale;
      Gen.Seed = Opts.Seed;
      ServiceOptions SO;
      SO.Engine = Opts.engineOptions(Opts.Threads);
      SO.Commit = 1; // retention is about sharing, not sharding
      SO.KeepGenerations = 4;
      AnalysisService S(
          workload::generateProgram(workload::specByName("soot-c"), Gen),
          SO);

      unsigned Step = 0;
      auto CommitOnce = [&] {
        S.editProgram([&](ir::Program &P) {
          return workload::applyScriptEdit(P, Step);
        });
        ++Step;
        return S.submitCommit().wait();
      };
      CommitOnce(); // warm-up: first-edit paths
      std::vector<double> Ms, SnapMs;
      for (unsigned I = 0; I < Row.Samples; ++I) {
        CommitStats CS = CommitOnce();
        Ms.push_back(CS.Seconds * 1e3);
        SnapMs.push_back(CS.CloneSeconds * 1e3);
      }

      // The youngest retained generation sits one single-method delta
      // behind the head: its exclusive bytes are the cost of keeping
      // it, and must stay a sliver of the full graph footprint.
      std::vector<GenerationInfo> Gens = S.generations();
      const GenerationInfo &Retained = Gens[Gens.size() - 2];
      double Frac = Retained.TotalBytes > 0
                        ? double(Retained.RetainedBytes) /
                              double(Retained.TotalBytes)
                        : 0.0;

      double P50 = percentile(Ms, 0.5);
      double SnapP50 = percentile(SnapMs, 0.5);
      GT.row()
          .cell(Row.Label)
          .cell(P50, 2)
          .cell(SnapP50, 3)
          .cell(double(Retained.RetainedBytes) / 1024.0, 1)
          .cell(double(Retained.TotalBytes) / 1024.0, 1)
          .cell(Frac, 4);

      std::string Prefix = std::string("gen.") + Row.Label;
      Json.set(Prefix + ".methods", uint64_t(Row.Methods));
      Json.set(Prefix + ".commit_p50_ms", P50);
      Json.set(Prefix + ".snapshot_p50_ms", SnapP50);
      Json.set(Prefix + ".retained_bytes", uint64_t(Retained.RetainedBytes));
      Json.set(Prefix + ".total_bytes", uint64_t(Retained.TotalBytes));
      Json.set(Prefix + ".retained_fraction", Frac);
    }
    GT.print(outs());
  }

  //===--------------------------------------------------------------------===//
  // Part 6: overload — open-loop arrivals above capacity.  Batches are
  // offered on a fixed clock regardless of completions; the admission
  // watermark sheds the excess (explicit Overloaded outcomes) so the
  // batches that ARE served keep a bounded latency.
  //===--------------------------------------------------------------------===//

  outs() << "\n=== Overload: open-loop arrivals above capacity ===\n\n";
  {
    ServiceOptions SO;
    SO.Engine = Opts.engineOptions(Opts.Threads);
    SO.Overload.MaxActiveBatches = 4;
    AnalysisService S(makeProgram(Opts), SO);
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    (void)S.queryVars(Probe); // warm start

    // Capacity probe: warm per-batch service time with no contention.
    std::vector<double> WarmMs;
    for (unsigned I = 0; I < 5; ++I) {
      Timer TW;
      (void)S.queryVars(Probe);
      WarmMs.push_back(TW.seconds() * 1e3);
    }
    double BatchMs = percentile(WarmMs, 0.5);

    // Offer at ~3x the sequential service rate.  Each arrival gets its
    // own thread (open loop: the arrival clock never waits); shed
    // arrivals return immediately, so threads pile up only as far as
    // the watermark lets them.
    constexpr unsigned kArrivals = 120;
    double IntervalMs = std::max(BatchMs / 3.0, 0.05);
    std::mutex SampleMutex;
    std::vector<double> ServedMs;
    uint64_t ShedBatchCount = 0;
    std::vector<std::thread> InFlight;
    InFlight.reserve(kArrivals);
    for (unsigned I = 0; I < kArrivals; ++I) {
      InFlight.emplace_back([&] {
        Timer TB;
        ServiceBatchResult R = S.queryVars(Probe);
        double Ms = TB.seconds() * 1e3;
        bool WasShed = !R.Outcomes.empty() &&
                       R.Outcomes.front().Status == QueryStatus::Overloaded;
        std::lock_guard<std::mutex> L(SampleMutex);
        if (WasShed)
          ++ShedBatchCount;
        else
          ServedMs.push_back(Ms);
      });
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(IntervalMs));
    }
    for (std::thread &W : InFlight)
      W.join();

    double ShedRate = double(ShedBatchCount) / double(kArrivals);
    double ServedP50 = ServedMs.empty() ? 0.0 : percentile(ServedMs, 0.5);
    double ServedP95 = ServedMs.empty() ? 0.0 : percentile(ServedMs, 0.95);
    double OfferedPerSec = 1e3 / IntervalMs;
    double CapacityPerSec = BatchMs > 0.0 ? 1e3 / BatchMs : 0.0;

    outs() << "offered ";
    outs().writeFixed(OfferedPerSec, 0);
    outs() << " batches/s against ~";
    outs().writeFixed(CapacityPerSec, 0);
    outs() << " batches/s capacity: served "
           << uint64_t(ServedMs.size()) << ", shed "
           << ShedBatchCount << " (";
    outs().writeFixed(100.0 * ShedRate, 1);
    outs() << "%), served p50 ";
    outs().writeFixed(ServedP50, 2);
    outs() << " ms / p95 ";
    outs().writeFixed(ServedP95, 2);
    outs() << " ms\nshed batches answer instantly with Status=Overloaded; "
              "serving capacity goes to the admitted ones\n";

    Json.set("overload.offered_batches_per_s", OfferedPerSec);
    Json.set("overload.capacity_batches_per_s", CapacityPerSec);
    Json.set("overload.arrivals", uint64_t(kArrivals));
    Json.set("overload.served_batches", uint64_t(ServedMs.size()));
    Json.set("overload.shed_batches", ShedBatchCount);
    Json.set("overload.shed_rate", ShedRate);
    Json.set("overload.served_p50_ms", ServedP50);
    Json.set("overload.served_p95_ms", ServedP95);
  }

  //===--------------------------------------------------------------------===//
  // Part 7: warm restart — the mmap'd disk tier vs recompute at 10k
  // methods.  A cold server computes a batch; a restarted server
  // pointed at the cold run's snapshot must answer the same batch from
  // disk-tier hits, recomputing nothing.  Both runs are
  // single-threaded, which doubles as the lock-contention regression:
  // with one engine thread the striped hot tier must report ZERO
  // contended lock acquisitions (service.store.lock_contended).
  //
  // The timed batch is the probe FILTERED to budget-complete queries.
  // A summary served from the store consumes no traversal budget, so a
  // budget-truncated query explores FURTHER on a warm server and
  // demands summaries no cold run ever published — it buys a more
  // precise answer, not the same answer cheaper, and "recomputing
  // nothing" is unsatisfiable for it by construction.  Only queries
  // that finish within budget have deterministic demand sets, making
  // cold-vs-warm an apples-to-apples timing; the truncated ones are
  // counted and reported separately.
  //===--------------------------------------------------------------------===//

  {
    CommandLine CL(argc, argv);
    uint64_t MaxMethods = uint64_t(CL.getInt("commit-max-methods", 100000));
    if (10000 <= MaxMethods) {
      outs() << "\n=== Warm restart: disk tier vs recompute (10k methods, "
                "1 engine thread) ===\n\n";
      workload::GenOptions Gen;
      Gen.Scale = 10000.0 / 3400.0;
      Gen.Seed = Opts.Seed;
      const std::string SnapPath = "/tmp/dynsum_bench_warm_restart.dsum";

      // Pass 1 (untimed): find the budget-bound probes.
      std::vector<ir::VarId> Probe;
      uint64_t BudgetBound = 0;
      size_t ProbeTotal = 0;
      {
        ServiceOptions SO;
        SO.Engine = Opts.engineOptions(1);
        AnalysisService S(
            workload::generateProgram(workload::specByName("soot-c"), Gen),
            SO);
        std::vector<ir::VarId> Full = probeVariables(S.program(), 61);
        ProbeTotal = Full.size();
        ServiceBatchResult R = S.queryVars(Full);
        for (size_t I = 0; I < Full.size(); ++I) {
          if (I < R.Outcomes.size() && R.Outcomes[I].BudgetExceeded)
            ++BudgetBound;
          else
            Probe.push_back(Full[I]);
        }
      }

      // Passes 2..7 (timed, interleaved min-of-3): alternate fresh
      // cold and fresh warm servers — C, W, C, W, C, W — and compare
      // the per-side MINIMA.  A one-shot cold-then-warm timing is at
      // the mercy of machine-wide drift on a shared host: whichever
      // side happens to run during a noisy window loses.  Interleaving
      // makes drift hit both sides alike, and min-of-N strips the
      // noise floor from each.  The first cold server's shutdown
      // snapshot seeds every restart.
      const int Reps = 3;
      double ColdMs = 0.0, WarmMs = 0.0;
      uint64_t ColdComputed = 0, WarmComputed = 0;
      bool Attached = false;
      engine::StoreCounters DiskC;
      std::vector<engine::StoreCounters> WarmStripes;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        {
          ServiceOptions SO;
          SO.Engine = Opts.engineOptions(1);
          AnalysisService S(
              workload::generateProgram(workload::specByName("soot-c"), Gen),
              SO);
          Timer TC;
          ServiceBatchResult Cold = S.queryVars(Probe);
          double Ms = TC.seconds() * 1e3;
          if (Rep == 0 || Ms < ColdMs) {
            ColdMs = Ms;
            ColdComputed = Cold.Stats.SummariesComputed;
          }
          if (Rep == 0 && !S.saveSummaries(SnapPath))
            errs() << "warning: cannot write " << SnapPath << '\n';
        }
        {
          ServiceOptions SO;
          SO.Engine = Opts.engineOptions(1);
          SO.WarmFromDiskPath = SnapPath;
          AnalysisService S(
              workload::generateProgram(workload::specByName("soot-c"), Gen),
              SO);
          Timer TW;
          ServiceBatchResult Warm = S.queryVars(Probe);
          double Ms = TW.seconds() * 1e3;
          if (Rep == 0 || Ms < WarmMs) {
            WarmMs = Ms;
            WarmComputed = Warm.Stats.SummariesComputed;
            ServiceStats SS = S.stats();
            Attached = SS.DiskTierAttached;
            DiskC = SS.Store;
            WarmStripes = SS.StoreStripes;
          }
        }
      }
      std::remove(SnapPath.c_str());

      outs() << "probe: " << uint64_t(ProbeTotal) << " queries, "
             << BudgetBound
             << " budget-bound (excluded: served summaries consume no "
                "traversal budget, so a warm server answers those more "
                "precisely, not identically), "
             << uint64_t(Probe.size()) << " timed\n";
      outs() << "cold first batch (min of " << uint64_t(Reps) << ") ";
      outs().writeFixed(ColdMs, 2);
      outs() << " ms (" << ColdComputed << " summaries computed); "
             << "warm-from-disk first batch (min of " << uint64_t(Reps)
             << ") ";
      outs().writeFixed(WarmMs, 2);
      outs() << " ms (" << WarmComputed << " computed, "
             << DiskC.DiskHits << "/" << DiskC.DiskProbes
             << " disk probes hit, " << DiskC.Promoted << " promoted, "
             << DiskC.LockContended << " contended locks)\n";

      // Per-stripe contention columns for the single-threaded warm run.
      PrettyTable ST;
      ST.row()
          .cell("stripe")
          .cell("fetches")
          .cell("hits")
          .cell("disk hits")
          .cell("contended");
      for (size_t I = 0; I < WarmStripes.size(); ++I) {
        const engine::StoreCounters &C = WarmStripes[I];
        ST.row()
            .cell(uint64_t(I))
            .cell(C.Fetches)
            .cell(C.Hits)
            .cell(C.DiskHits)
            .cell(C.LockContended);
      }
      ST.print(outs());

      Json.set("service.warm_restart.methods", uint64_t(10000));
      Json.set("service.warm_restart.reps", uint64_t(Reps));
      Json.set("service.warm_restart.probe_total", uint64_t(ProbeTotal));
      Json.set("service.warm_restart.probe_budget_bound", BudgetBound);
      Json.set("service.warm_restart.probe_timed", uint64_t(Probe.size()));
      Json.set("service.warm_restart.attached", uint64_t(Attached ? 1 : 0));
      Json.set("service.warm_restart.cold_first_batch_ms", ColdMs);
      Json.set("service.warm_restart.warm_first_batch_ms", WarmMs);
      Json.set("service.warm_restart.speedup",
               WarmMs > 0.0 ? ColdMs / WarmMs : 0.0);
      Json.set("service.warm_restart.cold_computed", ColdComputed);
      Json.set("service.warm_restart.warm_computed", WarmComputed);
      Json.set("service.store.disk_probes", DiskC.DiskProbes);
      Json.set("service.store.disk_hits", DiskC.DiskHits);
      Json.set("service.store.disk_stale", DiskC.DiskStale);
      Json.set("service.store.disk_corrupt", DiskC.DiskCorrupt);
      Json.set("service.store.promoted", DiskC.Promoted);
      Json.set("service.store.disk_hit_rate",
               DiskC.DiskProbes > 0
                   ? double(DiskC.DiskHits) / double(DiskC.DiskProbes)
                   : 0.0);
      Json.set("service.store.lock_contended", DiskC.LockContended);
      Json.set("service.store.stripes", uint64_t(WarmStripes.size()));
      for (size_t I = 0; I < WarmStripes.size(); ++I) {
        std::string Prefix =
            std::string("service.store.stripe.") + std::to_string(I);
        Json.set(Prefix + ".fetches", WarmStripes[I].Fetches);
        Json.set(Prefix + ".hits", WarmStripes[I].Hits);
        Json.set(Prefix + ".disk_hits", WarmStripes[I].DiskHits);
        Json.set(Prefix + ".lock_contended", WarmStripes[I].LockContended);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Part 8: post-commit pre-summarization — the first batch after a
  // commit with the warmer on vs off at 10k methods.  The warmer
  // re-summarizes the recently-queried variables (the default Hot
  // scope) right after the commit publishes, so the timed re-query
  // should find everything it demands already in the store and
  // recompute ~nothing; the cold side pays that recomputation inside
  // the batch.  The headline result is the counter pair (cold
  // recomputes every invalidated summary in-batch, warm recomputes
  // zero): on this workload a summary computation costs about the same
  // as a store fetch (Part 7 measures recompute-all vs fetch-all at
  // ~1.05x), so wall time lands near parity and the CI gate bounds it
  // instead of racing it.  Probes are budget-filtered for the same
  // reason as Part 7, and both sides run one engine thread so the
  // comparison is about where the work happens, not how many cores
  // chew on it.
  //===--------------------------------------------------------------------===//

  {
    CommandLine CL(argc, argv);
    uint64_t MaxMethods = uint64_t(CL.getInt("commit-max-methods", 100000));
    if (10000 <= MaxMethods) {
      outs() << "\n=== Pre-summarization: first batch after commit, warmer "
                "on vs off (10k methods, 1 engine thread) ===\n\n";
      workload::GenOptions Gen;
      Gen.Scale = 10000.0 / 3400.0;
      Gen.Seed = Opts.Seed;

      // Pass 1 (untimed): find the budget-bound probes (see Part 7).
      std::vector<ir::VarId> Probe;
      uint64_t BudgetBound = 0;
      size_t ProbeTotal = 0;
      {
        ServiceOptions SO;
        SO.Engine = Opts.engineOptions(1);
        AnalysisService S(
            workload::generateProgram(workload::specByName("soot-c"), Gen),
            SO);
        std::vector<ir::VarId> Full = probeVariables(S.program(), 61);
        ProbeTotal = Full.size();
        ServiceBatchResult R = S.queryVars(Full);
        for (size_t I = 0; I < Full.size(); ++I) {
          if (I < R.Outcomes.size() && R.Outcomes[I].BudgetExceeded)
            ++BudgetBound;
          else
            Probe.push_back(Full[I]);
        }
      }

      // Interleaved min-of-3, cold then warmed each rep (see Part 7 on
      // why interleaving beats one-shot timing on a shared host).
      const int Reps = 3;
      double ColdMs = 0.0, WarmMs = 0.0;
      uint64_t ColdComputed = 0, WarmComputed = 0;
      uint64_t WarmRuns = 0, WarmVars = 0, WarmerComputed = 0;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        for (int Warmed = 0; Warmed < 2; ++Warmed) {
          ServiceOptions SO;
          SO.Engine = Opts.engineOptions(1);
          SO.Policy = InvalidationPolicy::PerMethod;
          SO.Presummarize = Warmed != 0;
          AnalysisService S(
              workload::generateProgram(workload::specByName("soot-c"), Gen),
              SO);
          (void)S.queryVars(Probe); // warm the store + the hot set
          // Ten distinct method edits under one commit: a single edit
          // drops only ~10^2 summaries, which vanishes in timing noise
          // on the 12k-query batch; ten make the cold side's in-batch
          // recompute count unambiguous in the gated counters.
          for (unsigned E = 0; E < 10; ++E)
            S.editProgram([E](ir::Program &P) { return applyEdit(P, E); });
          S.submitCommit().wait();
          if (Warmed)
            S.waitForWarm(); // warmer drains before the timed batch
          Timer TB;
          ServiceBatchResult First = S.queryVars(Probe);
          double Ms = TB.seconds() * 1e3;
          if (Warmed) {
            if (Rep == 0 || Ms < WarmMs) {
              WarmMs = Ms;
              WarmComputed = First.Stats.SummariesComputed;
              ServiceStats SS = S.stats();
              WarmRuns = SS.WarmRuns;
              WarmVars = SS.WarmQueries;
              WarmerComputed = SS.WarmSummariesComputed;
            }
          } else if (Rep == 0 || Ms < ColdMs) {
            ColdMs = Ms;
            ColdComputed = First.Stats.SummariesComputed;
          }
        }
      }

      outs() << "probe: " << uint64_t(ProbeTotal) << " queries, "
             << BudgetBound << " budget-bound (excluded), "
             << uint64_t(Probe.size()) << " timed\n";
      outs() << "first batch after commit: cold (min of " << uint64_t(Reps)
             << ") ";
      outs().writeFixed(ColdMs, 2);
      outs() << " ms (" << ColdComputed
             << " summaries recomputed in-batch); pre-summarized (min of "
             << uint64_t(Reps) << ") ";
      outs().writeFixed(WarmMs, 2);
      outs() << " ms (" << WarmComputed << " recomputed; warmer ran "
             << WarmRuns << "x over " << WarmVars
             << " vars, computing " << WarmerComputed
             << " summaries off the query path)\n";

      Json.set("presummarize.methods", uint64_t(10000));
      Json.set("presummarize.reps", uint64_t(Reps));
      Json.set("presummarize.probe_total", uint64_t(ProbeTotal));
      Json.set("presummarize.probe_budget_bound", BudgetBound);
      Json.set("presummarize.probe_timed", uint64_t(Probe.size()));
      Json.set("presummarize.cold_first_batch_ms", ColdMs);
      Json.set("presummarize.warm_first_batch_ms", WarmMs);
      Json.set("presummarize.speedup", WarmMs > 0.0 ? ColdMs / WarmMs : 0.0);
      Json.set("presummarize.cold_recomputed", ColdComputed);
      Json.set("presummarize.warm_recomputed", WarmComputed);
      Json.set("presummarize.warm_runs", WarmRuns);
      Json.set("presummarize.warm_vars", WarmVars);
      Json.set("presummarize.warmer_computed", WarmerComputed);
    }
  }

  // The shared store's operation counters from the Part 1 shared-store
  // run: the hit/invalidation mix behind service.shared_over_clear_all.
  // That run serves batches on Opts.Threads engine threads, so its
  // contended-acquisition count is reported under a _mt key (the == 0
  // regression key comes from the single-threaded Part 7 run above).
  {
    engine::StoreCounters C = SharedCounters;
    Json.set("service.store.fetches", C.Fetches);
    Json.set("service.store.hits", C.Hits);
    Json.set("service.store.stale_fetches", C.StaleFetches);
    Json.set("service.store.publishes", C.Publishes);
    Json.set("service.store.stale_publishes", C.StalePublishes);
    Json.set("service.store.invalidated", C.Invalidated);
    Json.set("service.store.lock_contended_mt", C.LockContended);
    Json.set("service.store.hit_rate",
             C.Fetches > 0 ? double(C.Hits) / double(C.Fetches) : 0.0);
    for (size_t I = 0; I < SharedStripes.size(); ++I)
      Json.set(std::string("service.store.stripe.") + std::to_string(I) +
                   ".lock_contended_mt",
               SharedStripes[I].LockContended);
  }

  Json.set("service.num_probe_queries", uint64_t(NumProbe));
  Json.set("service.cycles", uint64_t(kCycles));
  Json.set("service.from_scratch_qps", FromScratch.qps(NumProbe));
  Json.set("service.clear_all_qps", ClearAllR.qps(NumProbe));
  Json.set("service.per_method_qps", PerMethodR.qps(NumProbe));
  Json.set("service.shared_store_qps", SharedR.qps(NumProbe));
  Json.set("service.st.per_method_qps", SingleR.qps(NumProbe));
  Json.set("service.st.computed_per_cycle", SingleR.Computed / kCycles);
  Json.set("service.st.sec_per_commit", SingleR.CommitSeconds / kCycles);
  Json.set("service.shared_over_clear_all",
           ClearAllR.QuerySeconds > 0.0 && SharedR.QuerySeconds > 0.0
               ? ClearAllR.QuerySeconds / SharedR.QuerySeconds
               : 0.0);
  Json.set("service.concurrent_batches", Batches);
  Json.set("service.concurrent_stale_batches", Drained);
  Json.set("service.concurrent_qps",
           Seconds > 0.0 ? double(Batches) * double(NumProbe) / Seconds : 0.0);
  // --- Part 9: the multi-tenant socket server, closed loop -------------
  {
    constexpr unsigned kTenants = 4;
    constexpr unsigned kClientsPerTenant = 4;
    constexpr unsigned kRequestsPerClient = 36;
    outs() << "\n=== Part 9: dynsum_serverd closed loop (" << kTenants
           << " tenants x " << kClientsPerTenant
           << " clients, mixed edit/query) ===\n\n";

    server::ServerOptions SrvO;
    SrvO.QueryThreads = 1; // per tenant; tenants already run concurrently
    SrvO.CommitThreads = 2;
    SrvO.MaxConnections = kTenants * kClientsPerTenant + 4;
    SrvO.Overload.MaxActiveBatches = 8; // per-tenant watermark
    SrvO.Analysis = Opts.analysisOptions();
    server::AnalysisServer Server(SrvO);
    for (unsigned T = 0; T < kTenants; ++T)
      Server.addTenant("t" + std::to_string(T), makeProgram(Opts));

    // The tenants share one generated program (same spec, same seed),
    // so specs built from a local twin resolve inside every tenant.
    auto Twin = makeProgram(Opts);
    std::vector<std::string> Specs;
    std::string EditMethod;
    for (ir::VarId V : probeVariables(*Twin, 61)) {
      std::string Spec = querySpecOf(*Twin, V);
      if (server::resolveVarSpec(*Twin, Spec) != V)
        continue; // shadowed name; the protocol could reach a twin
      if (EditMethod.empty())
        EditMethod = Spec.substr(0, Spec.rfind('.'));
      Specs.push_back(Spec);
    }
    // Any real class works as the alloc target type.
    std::string EditClass =
        Twin->classes().empty()
            ? std::string()
            : std::string(Twin->names().text(Twin->classes().front().Name));

    std::string StartError;
    if (Specs.size() < 8 || EditClass.empty() ||
        !Server.start(StartError)) {
      errs() << "warning: part 9 skipped ("
             << (StartError.empty() ? "too few resolvable specs"
                                    : StartError)
             << ")\n";
    } else {
      std::mutex SampleM;
      std::vector<double> QueryMs, EditMs, CommitMs;
      std::atomic<uint64_t> Requests{0}, Errors{0}, ShedQueries{0};
      Timer Wall;
      std::vector<std::thread> Clients;
      for (unsigned T = 0; T < kTenants; ++T) {
        for (unsigned C = 0; C < kClientsPerTenant; ++C) {
          Clients.emplace_back([&, T, C] {
            BenchClient Client(Server.port());
            if (!Client.connected()) {
              ++Errors;
              return;
            }
            Client.readBlock(); // greeting
            if (Client.request("tenant t" + std::to_string(T))
                    .find("bound") == std::string::npos) {
              ++Errors;
              return;
            }
            std::vector<double> Q, E, K;
            uint64_t MyErrors = 0, MyShed = 0;
            for (unsigned I = 0; I < kRequestsPerClient; ++I) {
              unsigned Mix = (I + C) % 12;
              std::string Cmd;
              std::vector<double> *Bucket;
              if (Mix == 4 || Mix == 9) {
                Cmd = "alloc " + EditMethod + " bv" + std::to_string(T) +
                      "_" + std::to_string(C) + " " + EditClass;
                Bucket = &E;
              } else if (Mix == 11) {
                Cmd = "commit --async";
                Bucket = &K;
              } else {
                size_t Base = (size_t(I) * 7 + C) % Specs.size();
                Cmd = "query";
                for (size_t S = 0; S < 4; ++S) {
                  Cmd += ' ';
                  Cmd += Specs[(Base + S * 3) % Specs.size()];
                }
                Bucket = &Q;
              }
              Timer Rt;
              std::string Reply = Client.request(Cmd);
              double Ms = Rt.millis();
              ++Requests;
              if (Reply.find("(overloaded)") != std::string::npos)
                ++MyShed; // well-formed shed, not an error
              else if (Reply.empty() ||
                       Reply.find("error:") != std::string::npos)
                ++MyErrors;
              else
                Bucket->push_back(Ms);
            }
            Client.request("quit");
            std::lock_guard<std::mutex> L(SampleM);
            QueryMs.insert(QueryMs.end(), Q.begin(), Q.end());
            EditMs.insert(EditMs.end(), E.begin(), E.end());
            CommitMs.insert(CommitMs.end(), K.begin(), K.end());
            Errors += MyErrors;
            ShedQueries += MyShed;
          });
        }
      }
      for (std::thread &T : Clients)
        T.join();
      double WallS = Wall.seconds();
      Server.stop(); // drain; no snapshot dir, so teardown only

      PrettyTable ST;
      ST.row()
          .cell("requests")
          .cell("errors")
          .cell("shed")
          .cell("query p50 ms")
          .cell("query p95 ms")
          .cell("query p99 ms")
          .cell("rps");
      double QP50 = QueryMs.empty() ? 0.0 : percentile(QueryMs, 0.5);
      double QP95 = QueryMs.empty() ? 0.0 : percentile(QueryMs, 0.95);
      double QP99 = QueryMs.empty() ? 0.0 : percentile(QueryMs, 0.99);
      ST.row()
          .cell(Requests.load())
          .cell(Errors.load())
          .cell(ShedQueries.load())
          .cell(QP50, 3)
          .cell(QP95, 3)
          .cell(QP99, 3)
          .cell(WallS > 0.0 ? double(Requests.load()) / WallS : 0.0, 0);
      ST.print(outs());

      Json.set("server.tenants", uint64_t(kTenants));
      Json.set("server.clients", uint64_t(kTenants * kClientsPerTenant));
      Json.set("server.requests", Requests.load());
      Json.set("server.errors", Errors.load());
      Json.set("server.shed_queries", ShedQueries.load());
      Json.set("server.shed_connections", Server.shedConnections());
      Json.set("server.accepted_connections", Server.acceptedConnections());
      Json.set("server.query_p50_ms", QP50);
      Json.set("server.query_p95_ms", QP95);
      Json.set("server.query_p99_ms", QP99);
      Json.set("server.edit_p50_ms",
               EditMs.empty() ? 0.0 : percentile(EditMs, 0.5));
      Json.set("server.commit_submit_p50_ms",
               CommitMs.empty() ? 0.0 : percentile(CommitMs, 0.5));
      Json.set("server.wall_s", WallS);
      Json.set("server.rps",
               WallS > 0.0 ? double(Requests.load()) / WallS : 0.0);
    }
  }

  if (!Opts.JsonPath.empty() && !Json.writeFile(Opts.JsonPath))
    errs() << "warning: cannot write " << Opts.JsonPath << '\n';
  return 0;
}
