//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 3: benchmark statistics of the nine programs'
/// context-sensitive PAGs — node counts per kind, edge counts per kind,
/// locality, and per-client query counts.
///
/// Our programs are synthesized from the paper's published statistics
/// (see workload/BenchmarkSpec.cpp), so this bench both *regenerates*
/// the table at the chosen --scale and prints the paper's own numbers
/// for side-by-side comparison.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/OStream.h"
#include "support/PrettyTable.h"

using namespace dynsum;
using namespace dynsum::bench;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::parse(argc, argv);
  outs() << "=== Table 3: benchmark statistics (scale=" << Opts.Scale
         << " of the paper's sizes) ===\n\n";

  PrettyTable T;
  T.row()
      .cell("Benchmark")
      .cell("#Methods")
      .cell("O")
      .cell("V")
      .cell("G")
      .cell("new")
      .cell("assign")
      .cell("load")
      .cell("store")
      .cell("entry")
      .cell("exit")
      .cell("aglobal")
      .cell("Locality")
      .cell("paper")
      .cell("Q:Cast")
      .cell("Q:Null")
      .cell("Q:Fact");

  auto Clients = makePaperClients();
  for (const workload::BenchmarkSpec *Spec : selectedSpecs(Opts)) {
    BenchProgram BP = makeBenchProgram(*Spec, Opts);
    pag::PAGStats S = BP.Built.Graph->stats();
    auto Edge = [&](pag::EdgeKind K) {
      return S.EdgesByKind[unsigned(K)];
    };
    T.row()
        .cell(Spec->Name)
        .cell(S.NumMethods)
        .cell(S.NumObjects)
        .cell(S.NumLocals)
        .cell(S.NumGlobals)
        .cell(Edge(pag::EdgeKind::New))
        .cell(Edge(pag::EdgeKind::Assign))
        .cell(Edge(pag::EdgeKind::Load))
        .cell(Edge(pag::EdgeKind::Store))
        .cell(Edge(pag::EdgeKind::Entry))
        .cell(Edge(pag::EdgeKind::Exit))
        .cell(Edge(pag::EdgeKind::AssignGlobal))
        .cell(100.0 * S.locality(), 1)
        .cell(Spec->LocalityPct, 1)
        .cell(uint64_t(clientQueries(*Clients[0], 0, BP, Opts).size()))
        .cell(uint64_t(clientQueries(*Clients[1], 1, BP, Opts).size()))
        .cell(uint64_t(clientQueries(*Clients[2], 2, BP, Opts).size()));
  }
  T.print(outs());
  outs() << "\nPaper reference (Table 3, thousands):\n";
  PrettyTable R;
  R.row()
      .cell("Benchmark")
      .cell("MethK")
      .cell("O=newK")
      .cell("VK")
      .cell("assignK")
      .cell("loadK")
      .cell("storeK")
      .cell("entryK")
      .cell("exitK")
      .cell("aglobK")
      .cell("Locality")
      .cell("Q:Cast")
      .cell("Q:Null")
      .cell("Q:Fact");
  for (const workload::BenchmarkSpec *Spec : selectedSpecs(Opts))
    R.row()
        .cell(Spec->Name)
        .cell(Spec->MethodsK, 1)
        .cell(Spec->ObjectsK, 1)
        .cell(Spec->VarsK, 1)
        .cell(Spec->AssignK, 1)
        .cell(Spec->LoadK, 1)
        .cell(Spec->StoreK, 1)
        .cell(Spec->EntryK, 1)
        .cell(Spec->ExitK, 1)
        .cell(Spec->AssignGlobalK, 1)
        .cell(Spec->LocalityPct, 1)
        .cell(uint64_t(Spec->QuerySafeCast))
        .cell(uint64_t(Spec->QueryNullDeref))
        .cell(uint64_t(Spec->QueryFactoryM));
  R.print(outs());
  outs().flush();
  return 0;
}
