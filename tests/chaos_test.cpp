//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos oracle: IrEditFuzzer/MiniJavaFuzzer workloads driven through
/// seeded fault injection must produce BIT-CORRECT answers against a
/// fault-free twin of the same workload.
///
/// For every fault scenario (commit worker exceptions, sharded-lowering
/// exceptions, simulated allocation failure, injected query latency)
/// the test evolves two services with same-seed edit streams.  The
/// faulty service absorbs injected failures — retrying commits until
/// they stick — while the twin commits cleanly.  After every round the
/// invariants are:
///
///   * a failed commit never publishes: the generation number only
///     moves on CommitOutcome::Committed;
///   * the service never crashes, deadlocks, or std::terminates — every
///     fault surfaces as a CommitStats outcome;
///   * once the faulty service converges, sampled query answers are
///     bit-identical to the twin AND to a cold scratch build of the
///     same edited program.
///
/// Faults are armed only while the faulty service commits (the registry
/// is process-global), so the twin genuinely never sees one.  The CI
/// chaos job runs this binary under ASan and TSan.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "frontend/Frontend.h"
#include "pag/PAGBuilder.h"
#include "service/AnalysisService.h"
#include "support/FaultInjection.h"

#include "IrEditFuzzer.h"
#include "MiniJavaFuzzer.h"

#include <gtest/gtest.h>

using namespace dynsum;
using analysis::AnalysisOptions;
using analysis::QueryResult;
using dynsum::testing::IrEditFuzzer;
using dynsum::testing::sampleVars;
using incremental::CommitOutcome;
using incremental::CommitStats;
using service::AnalysisService;
using service::CommitMode;
using service::ServiceBatchResult;
using service::ServiceOptions;
using support::FaultKind;
using support::FaultSpec;

namespace {

constexpr unsigned kRounds = 5;
constexpr unsigned kEditsPerRound = 10;

std::unique_ptr<ir::Program> fuzzProgram(uint64_t Seed) {
  dynsum::testing::MiniJavaFuzzer Fuzz(Seed);
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return std::move(R.Prog);
}

/// One cell of the fault matrix: which site fails, how, and how often.
/// Sites are re-armed (counters reset) every round, so MaxFires bounds
/// the failures PER ROUND: throw scenarios fail the first attempt(s)
/// of every round and then converge.
struct FaultScenario {
  const char *Name;
  const char *Site;
  FaultKind Kind;
  uint64_t FireEvery;
  uint64_t MaxFires;
  uint64_t Param;
};

constexpr FaultScenario kScenarios[] = {
    {"snapshot-throw", "commit.snapshot", FaultKind::Throw, 1, 1, 0},
    {"lower-throw", "commit.lower", FaultKind::Throw, 1, 2, 0},
    {"snapshot-badalloc", "commit.snapshot", FaultKind::BadAlloc, 1, 1, 0},
    {"query-latency", "query.summary", FaultKind::Latency, 7, UINT64_MAX,
     /*us=*/200},
};

/// Commits the faulty service in the foreground, retrying while the
/// injected fault makes the build throw.  Asserts a failed attempt
/// never publishes and that the scenario converges within a few tries
/// (FireEvery > 1 guarantees a fault-free attempt).
void commitUntilCommitted(AnalysisService &S, const FaultScenario &Sc) {
  for (unsigned Attempt = 0; Attempt < 8; ++Attempt) {
    uint64_t GenBefore = S.generation();
    CommitStats St = S.submitCommit({CommitMode::Delta, false}).wait();
    if (St.Outcome == CommitOutcome::Committed)
      return;
    ASSERT_EQ(St.Outcome, CommitOutcome::BuildFailed)
        << Sc.Name << ": unexpected outcome " << incremental::toString(St.Outcome);
    ASSERT_EQ(S.generation(), GenBefore)
        << Sc.Name << ": a failed commit must never publish";
    ASSERT_TRUE(S.dirty()) << Sc.Name << ": failed commits must keep edits";
  }
  FAIL() << Sc.Name << ": commit never converged";
}

/// Runs one scenario: same-seed fuzzer twins, faults armed only around
/// the faulty service's queries/commits, bit-identical answers after
/// every round.
void runScenario(const FaultScenario &Sc, uint64_t Seed) {
  SCOPED_TRACE(Sc.Name);
  auto Prog = fuzzProgram(Seed);
  auto TwinProg = fuzzProgram(Seed);
  auto ColdProg = fuzzProgram(Seed);
  ASSERT_TRUE(Prog && TwinProg && ColdProg);

  ServiceOptions SO;
  SO.Engine.NumThreads = 1; // deterministic store evolution: bit-exact twin
  SO.Commit = 2;            // sharded pipeline absorbs the worker faults
  AnalysisService Faulty(std::move(Prog), SO);
  ServiceOptions TwinSO;
  TwinSO.Engine.NumThreads = 1;
  AnalysisService Twin(std::move(TwinProg), TwinSO);

  IrEditFuzzer FaultyEdits(Seed * 31 + 7);
  IrEditFuzzer TwinEdits(Seed * 31 + 7);
  IrEditFuzzer ColdEdits(Seed * 31 + 7);

  FaultSpec Spec;
  Spec.Kind = Sc.Kind;
  Spec.FireEvery = Sc.FireEvery;
  Spec.MaxFires = Sc.MaxFires;
  Spec.Param = Sc.Param;

  for (unsigned Round = 0; Round < kRounds; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round));
    Faulty.editProgram([&](ir::Program &Q) {
      FaultyEdits.apply(Q, kEditsPerRound);
      return std::vector<ir::MethodId>{};
    });
    Twin.editProgram([&](ir::Program &Q) {
      TwinEdits.apply(Q, kEditsPerRound);
      return std::vector<ir::MethodId>{};
    });
    ColdEdits.apply(*ColdProg, kEditsPerRound);

    // Faults live only while the FAULTY service works.
    support::armFault(Sc.Site, Spec);
    commitUntilCommitted(Faulty, Sc);
    std::vector<ir::VarId> Probe = sampleVars(Faulty.program(), 7);
    ServiceBatchResult Got = Faulty.queryVars(Probe);
    support::clearFaults();

    ASSERT_EQ(Twin.submitCommit({CommitMode::Delta, false}).wait().Outcome,
              CommitOutcome::Committed);
    ServiceBatchResult Want = Twin.queryVars(Probe);

    // Bit-correct vs the fault-free twin: identical outcome vectors,
    // including the budget flag (same engine config, same warm-store
    // history — injected faults must be answer-invisible).
    ASSERT_EQ(Got.Outcomes.size(), Want.Outcomes.size());
    for (size_t I = 0; I < Probe.size(); ++I) {
      EXPECT_EQ(Got.Outcomes[I].BudgetExceeded, Want.Outcomes[I].BudgetExceeded)
          << "probe " << I;
      EXPECT_EQ(Got.Outcomes[I].AllocSites, Want.Outcomes[I].AllocSites)
          << "probe " << I;
      EXPECT_EQ(Got.Outcomes[I].Status, Want.Outcomes[I].Status)
          << "probe " << I;
    }

    // And sound vs a cold scratch build (in-budget answers only — the
    // cold analysis has no warm store to finish inside the budget).
    pag::BuiltPAG Cold = pag::buildPAG(*ColdProg);
    analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
    for (size_t I = 0; I < Probe.size(); ++I) {
      QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(Probe[I]));
      if (Got.Outcomes[I].BudgetExceeded || CR.BudgetExceeded)
        continue;
      EXPECT_EQ(Got.Outcomes[I].AllocSites, CR.allocSites()) << "probe " << I;
    }
  }

  // The workload survived the whole matrix cell: failures were
  // absorbed, nothing was published from a failed attempt.
  EXPECT_FALSE(Faulty.dirty());
  EXPECT_EQ(Faulty.generation(), Twin.generation())
      << "same number of successful commits must reach the same epoch";
}

class ChaosTest : public ::testing::Test {
protected:
  void SetUp() override { support::clearFaults(); }
  void TearDown() override { support::clearFaults(); }
};

} // namespace

TEST_F(ChaosTest, FaultMatrixConvergesBitIdenticalToFaultFreeTwin) {
  for (const FaultScenario &Sc : kScenarios)
    runScenario(Sc, 5);
}

TEST_F(ChaosTest, SecondSeedSweep) {
  for (const FaultScenario &Sc : kScenarios)
    runScenario(Sc, 12);
}

/// Background-committer flavor: the committer's own retry loop (not the
/// test) must absorb transient faults, and a coalesced ticket stream
/// must drain to a clean converged service.
TEST_F(ChaosTest, BackgroundCommitterAbsorbsTransientFaults) {
  auto Prog = fuzzProgram(21);
  auto TwinProg = fuzzProgram(21);
  ASSERT_TRUE(Prog && TwinProg);
  ServiceOptions SO;
  SO.Engine.NumThreads = 1;
  SO.BackgroundCommitRetries = 4;
  AnalysisService Faulty(std::move(Prog), SO);
  ServiceOptions TwinSO;
  TwinSO.Engine.NumThreads = 1;
  AnalysisService Twin(std::move(TwinProg), TwinSO);

  IrEditFuzzer FaultyEdits(99), TwinEdits(99);
  for (unsigned Round = 0; Round < kRounds; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round));
    Faulty.editProgram([&](ir::Program &Q) {
      FaultyEdits.apply(Q, kEditsPerRound);
      return std::vector<ir::MethodId>{};
    });
    Twin.editProgram([&](ir::Program &Q) {
      TwinEdits.apply(Q, kEditsPerRound);
      return std::vector<ir::MethodId>{};
    });

    // Two fires, four retries: the committer eats the fault alone.
    support::armFault("commit.snapshot",
                      FaultSpec{FaultKind::Throw, /*FireEvery=*/1,
                                /*MaxFires=*/2, /*Param=*/0});
    CommitStats St = Faulty.submitCommit({CommitMode::Delta, true}).wait();
    Faulty.waitForCommits();
    support::clearFaults();
    EXPECT_EQ(St.Outcome, CommitOutcome::Committed)
        << "retries must outlast a two-fire transient fault";

    ASSERT_EQ(Twin.submitCommit({CommitMode::Delta, false}).wait().Outcome,
              CommitOutcome::Committed);
    std::vector<ir::VarId> Probe = sampleVars(Faulty.program(), 9);
    ServiceBatchResult Got = Faulty.queryVars(Probe);
    ServiceBatchResult Want = Twin.queryVars(Probe);
    for (size_t I = 0; I < Probe.size(); ++I) {
      EXPECT_EQ(Got.Outcomes[I].BudgetExceeded, Want.Outcomes[I].BudgetExceeded)
          << "probe " << I;
      EXPECT_EQ(Got.Outcomes[I].AllocSites, Want.Outcomes[I].AllocSites)
          << "probe " << I;
    }
  }
  EXPECT_FALSE(Faulty.dirty());
  EXPECT_GE(Faulty.stats().CommitRetries, 1u);
}
