//===----------------------------------------------------------------------===//
///
/// \file
/// Focused tests for REFINEPTS's refinement machinery and the STASUM
/// static summary closure, plus parameterized budget sweeps.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "analysis/StaSum.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "workload/PaperExample.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

struct Built {
  explicit Built(const char *Src) {
    ir::ParseResult R = ir::parseProgram(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Graph = pag::buildPAG(*Prog);
  }

  pag::NodeId node(const char *Var, const char *Method = nullptr) const {
    for (const ir::Variable &V : Prog->variables()) {
      if (V.IsGlobal ||
          Prog->names().text(V.Name) != std::string_view(Var))
        continue;
      if (Method && Prog->describeMethod(V.Owner) != Method)
        continue;
      return Graph.Graph->nodeOfVar(V.Id);
    }
    ADD_FAILURE() << "no variable " << Var;
    return 0;
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Graph;
};

/// Two containers over the same field: field-based analysis conflates
/// them, full refinement separates them.
const char *kTwoBoxes = R"(
class A {}
class B {}
class Box { fields f }
method put(b : Box, v) { b.f = v }
method get(b : Box) {
  r = b.f
  return r
}
method m() {
  x = new A @ox
  y = new B @oy
  b1 = new Box @ob1
  b2 = new Box @ob2
  call @1 put(b1, x)
  call @2 put(b2, y)
  g1 = call @3 get(b1)
  g2 = call @4 get(b2)
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// REFINEPTS refinement machinery
//===----------------------------------------------------------------------===//

TEST(RefinePtsTest, FieldBasedPassConflatesRefinementSeparates) {
  Built B(kTwoBoxes);
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*B.Graph.Graph, Opts, /*Refinement=*/true);

  // Field-based only (client satisfied immediately): both objects.
  QueryResult FieldBased =
      A.query(B.node("g1"), [](const QueryResult &) { return true; });
  EXPECT_EQ(A.lastIterations(), 1u);
  EXPECT_EQ(FieldBased.allocSites().size(), 2u);

  // Full refinement: precise.
  QueryResult Refined = A.query(B.node("g1"));
  EXPECT_GT(A.lastIterations(), 1u);
  EXPECT_EQ(Refined.allocSites().size(), 1u);
}

TEST(RefinePtsTest, NoRefineIsPreciseInOnePass) {
  Built B(kTwoBoxes);
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*B.Graph.Graph, Opts, /*Refinement=*/false);
  QueryResult R = A.query(B.node("g1"));
  EXPECT_EQ(A.lastIterations(), 1u);
  EXPECT_EQ(R.allocSites().size(), 1u);
}

TEST(RefinePtsTest, IterationCapIsRespected) {
  Built B(kTwoBoxes);
  AnalysisOptions Opts;
  Opts.MaxRefineIterations = 1;
  RefinePtsAnalysis A(*B.Graph.Graph, Opts, /*Refinement=*/true);
  QueryResult R = A.query(B.node("g1")); // would need 2+ passes
  EXPECT_EQ(A.lastIterations(), 1u);
  // One field-based pass: conservative (conflated) but non-empty.
  EXPECT_GE(R.allocSites().size(), 1u);
}

TEST(RefinePtsTest, CacheHitsAreCounted) {
  Built B(kTwoBoxes);
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*B.Graph.Graph, Opts, /*Refinement=*/true);
  (void)A.query(B.node("g1"));
  EXPECT_GT(A.stats().get("refine.passes"), 1u);
}

TEST(RefinePtsTest, QueriesAreIndependent) {
  // fldsToRefine must reset between queries: the second query's first
  // pass is field-based again.
  Built B(kTwoBoxes);
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*B.Graph.Graph, Opts, /*Refinement=*/true);
  (void)A.query(B.node("g1"));
  QueryResult FieldBased =
      A.query(B.node("g2"), [](const QueryResult &) { return true; });
  EXPECT_EQ(A.lastIterations(), 1u);
  EXPECT_EQ(FieldBased.allocSites().size(), 2u);
}

//===----------------------------------------------------------------------===//
// STASUM closure
//===----------------------------------------------------------------------===//

TEST(StaSumTest, CountsSummariesOnlyForLocalEdgeNodes) {
  Built B(kTwoBoxes);
  StaSumResult R = computeStaSum(*B.Graph.Graph);
  EXPECT_FALSE(R.Capped);
  EXPECT_GT(R.NumSummaries, 0u);
  EXPECT_GT(R.Steps, 0u);
}

TEST(StaSumTest, DeterministicAcrossRuns) {
  Built B(kTwoBoxes);
  StaSumResult A = computeStaSum(*B.Graph.Graph);
  StaSumResult C = computeStaSum(*B.Graph.Graph);
  EXPECT_EQ(A.NumSummaries, C.NumSummaries);
  EXPECT_EQ(A.Steps, C.Steps);
}

TEST(StaSumTest, SummaryCapTriggers) {
  Built B(dynsum::workload::figure2Source());
  StaSumOptions Opts;
  Opts.MaxSummaries = 1;
  StaSumResult R = computeStaSum(*B.Graph.Graph, Opts);
  EXPECT_TRUE(R.Capped);
  EXPECT_LE(R.NumSummaries, 2u);
}

TEST(StaSumTest, StepBudgetTriggers) {
  Built B(dynsum::workload::figure2Source());
  StaSumOptions Opts;
  Opts.StepBudget = 1;
  StaSumResult R = computeStaSum(*B.Graph.Graph, Opts);
  EXPECT_TRUE(R.Capped);
}

TEST(StaSumTest, DominatesDynSumOnFigure2) {
  Built B(dynsum::workload::figure2Source());
  StaSumResult Static = computeStaSum(*B.Graph.Graph);
  AnalysisOptions Opts;
  DynSumAnalysis Dyn(*B.Graph.Graph, Opts);
  (void)Dyn.query(B.node("s1", "Main.main"));
  (void)Dyn.query(B.node("s2", "Main.main"));
  EXPECT_LE(Dyn.cacheSize(), Static.NumSummaries);
}

//===----------------------------------------------------------------------===//
// Parameterized budget sweep (Figure 2)
//===----------------------------------------------------------------------===//

class BudgetSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BudgetSweepTest, AnswersAreExactOrFlaggedAtEveryBudget) {
  Built B(dynsum::workload::figure2Source());
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = GetParam();
  DynSumAnalysis Dyn(*B.Graph.Graph, Opts);
  RefinePtsAnalysis Ref(*B.Graph.Graph, Opts, /*Refinement=*/true);
  RefinePtsAnalysis NoRef(*B.Graph.Graph, Opts, /*Refinement=*/false);
  for (DemandAnalysis *A : std::initializer_list<DemandAnalysis *>{
           &Dyn, &Ref, &NoRef}) {
    QueryResult R = A->query(B.node("s1", "Main.main"));
    if (R.BudgetExceeded)
      continue; // conservative abort is a legal outcome
    ASSERT_EQ(R.allocSites().size(), 1u) << A->name() << "@" << GetParam();
    EXPECT_EQ(B.Prog->names().text(
                  B.Prog->alloc(R.allocSites()[0]).Label),
              "o26")
        << A->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128,
                                           256, 1024, 75000),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "b" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Parameterized field-depth sweep
//===----------------------------------------------------------------------===//

class DepthSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DepthSweepTest, DeepChainsNeedDeepStacks) {
  // z = a.f.f.f.f (4 pending fields): resolvable iff the k-limit
  // admits stacks of depth >= 4.
  Built B(R"(
class A {}
class N { fields f }
method m() {
  v = new A @ov
  n1 = new N @o1
  n2 = new N @o2
  n3 = new N @o3
  n4 = new N @o4
  n4.f = v
  n3.f = n4
  n2.f = n3
  n1.f = n2
  t1 = n1.f
  t2 = t1.f
  t3 = t2.f
  z = t3.f
}
)");
  AnalysisOptions Opts;
  Opts.MaxFieldDepth = GetParam();
  DynSumAnalysis Dyn(*B.Graph.Graph, Opts);
  QueryResult R = Dyn.query(B.node("z"));
  if (GetParam() >= 4)
    EXPECT_EQ(R.allocSites().size(), 1u);
  else
    EXPECT_TRUE(R.allocSites().empty()); // pruned, no wrong answers
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 64),
                         [](const ::testing::TestParamInfo<uint32_t> &I) {
                           return "d" + std::to_string(I.param);
                         });
