//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the concurrent incremental layer: SharedSummaryStore
/// generations (stale-epoch fetches must miss, stale publishes must
/// drop), EditSession's shared-store wiring, and the AnalysisService —
/// including a commit-while-querying run at 4 reader threads whose
/// every batch must match a cold serial rerun of the generation it
/// reports.
///
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "analysis/SummaryIO.h"
#include "ir/Parser.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_set>

using namespace dynsum;
using namespace dynsum::engine;
using namespace dynsum::service;
using analysis::AnalysisOptions;
using analysis::PortableSummary;
using analysis::RsmState;
using incremental::CommitStats;
using incremental::InvalidationPlan;
using incremental::InvalidationPolicy;

namespace {

std::unique_ptr<ir::Program> parse(const char *Source) {
  ir::ParseResult R = ir::parseProgram(Source);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.Prog);
}

ir::VarId varOf(const ir::Program &P, std::string_view Method,
                std::string_view Name) {
  ir::MethodId M = P.findFreeMethod(P.names().lookup(Method));
  EXPECT_NE(M, ir::kNone) << "no free method " << Method;
  Symbol N = P.names().lookup(Name);
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M && V.Name == N)
      return V.Id;
  ADD_FAILURE() << "no variable " << Name << " in " << Method;
  return ir::kNone;
}

ir::AllocId allocOf(const ir::Program &P, std::string_view Label) {
  Symbol L = P.names().lookup(Label);
  for (const ir::AllocSite &A : P.allocs())
    if (A.Label == L)
      return A.Id;
  ADD_FAILURE() << "no alloc " << Label;
  return ir::kNone;
}

const char *kTwoMethodSource = R"(
class A {}
class Box { fields f }
method helper(b) {
  t = b.f
  return t
}
method main() {
  box = new Box @obox
  a = new A @oa
  box.f = a
  r = call helper(box)
  other = new A @oother
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// SharedSummaryStore generations
//===----------------------------------------------------------------------===//

namespace {

/// A parsed two-method program with its PAG, for direct store tests.
struct StoreFixture {
  StoreFixture() : Prog(parse(kTwoMethodSource)), Built(pag::buildPAG(*Prog)) {}

  pag::NodeId nodeOf(std::string_view Method, std::string_view Var) const {
    return Built.Graph->nodeOfVar(varOf(*Prog, Method, Var));
  }

  /// A plan invalidating exactly \p Methods (node ids are stable, so
  /// plans carry nothing else).
  InvalidationPlan planFor(
      std::unordered_set<ir::MethodId> Methods = {}) const {
    InvalidationPlan Plan;
    Plan.Methods = std::move(Methods);
    return Plan;
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

PortableSummary summaryWithObject(ir::AllocId A) {
  PortableSummary S;
  S.Objects.push_back(A);
  return S;
}

} // namespace

TEST(SummaryStoreGenerationTest, StaleFetchMissesAndStalePublishDrops) {
  StoreFixture F;
  SharedSummaryStore Store;
  EXPECT_EQ(Store.generation(), 0u);

  pag::NodeId N = F.nodeOf("main", "a");
  Store.publishAt(0, N, {}, RsmState::S1, summaryWithObject(1));
  ASSERT_EQ(Store.size(), 1u);

  PortableSummary Out;
  EXPECT_TRUE(Store.fetchAt(0, N, {}, RsmState::S1, Out));

  // Bump to generation 1 without dropping anything.
  EXPECT_EQ(Store.beginGeneration(*F.Built.Graph, F.planFor()), 0u);
  EXPECT_EQ(Store.generation(), 1u);
  EXPECT_EQ(Store.size(), 1u);

  // The pinned-epoch probe from a draining batch must miss...
  EXPECT_FALSE(Store.fetchAt(0, N, {}, RsmState::S1, Out));
  // ...while the new epoch still sees the surviving entry.
  EXPECT_TRUE(Store.fetchAt(1, N, {}, RsmState::S1, Out));

  // A stale publish is dropped, not installed.
  pag::NodeId M = F.nodeOf("main", "other");
  Store.publishAt(0, M, {}, RsmState::S1, summaryWithObject(2));
  EXPECT_EQ(Store.size(), 1u);
  EXPECT_FALSE(Store.fetchAt(1, M, {}, RsmState::S1, Out));

  // clear() also bumps: epoch 1 is stale afterwards.
  Store.clear();
  EXPECT_EQ(Store.generation(), 2u);
  EXPECT_EQ(Store.size(), 0u);
  Store.publishAt(1, N, {}, RsmState::S1, summaryWithObject(1));
  EXPECT_EQ(Store.size(), 0u);
}

TEST(SummaryStoreGenerationTest, BeginGenerationDropsInvalidatedMethods) {
  StoreFixture F;
  ir::MethodId Helper =
      F.Prog->findFreeMethod(F.Prog->names().lookup("helper"));
  ir::MethodId Main = F.Prog->findFreeMethod(F.Prog->names().lookup("main"));
  ASSERT_NE(Helper, Main);

  SharedSummaryStore Store;
  pag::NodeId InHelper = F.nodeOf("helper", "t");
  pag::NodeId InMain = F.nodeOf("main", "box");
  Store.publish(InHelper, {}, RsmState::S1, summaryWithObject(1));
  Store.publish(InMain, {}, RsmState::S2, summaryWithObject(2));
  ASSERT_EQ(Store.size(), 2u);

  EXPECT_EQ(Store.beginGeneration(*F.Built.Graph, F.planFor({Helper})),
            1u);
  EXPECT_EQ(Store.size(), 1u);

  PortableSummary Out;
  uint64_t Gen = Store.generation();
  EXPECT_FALSE(Store.fetchAt(Gen, InHelper, {}, RsmState::S1, Out));
  EXPECT_TRUE(Store.fetchAt(Gen, InMain, {}, RsmState::S2, Out));
}

TEST(SummaryStoreGenerationTest, StableIdsKeepObjectKeysAcrossVarAddition) {
  StoreFixture F;
  SharedSummaryStore Store;

  // Key a summary at an object node with a tuple at the same object.
  // Under the pre-delta design, adding a variable shifted every object
  // node and beginGeneration had to rewrite keys; with stable ids the
  // entry must survive a variable-adding commit verbatim.
  pag::NodeId Obj = F.Built.Graph->nodeOfAlloc(allocOf(*F.Prog, "oa"));
  PortableSummary S = summaryWithObject(3);
  S.Tuples.push_back(PortableSummary::Tuple{Obj, RsmState::S2, 0});
  Store.publish(Obj, {}, RsmState::S1, std::move(S));

  // Add one variable to an untouched helper-free method and delta-patch
  // the same graph: node ids must not move.
  ir::MethodId Main = F.Prog->findFreeMethod(F.Prog->names().lookup("main"));
  F.Prog->createLocal(F.Prog->name("fresh"), Main, ir::kObjectType);
  pag::DeltaStats DS = pag::buildPAGDelta(*F.Built.Graph, F.Built.Calls);
  EXPECT_EQ(DS.NodesAdded, 1u);
  EXPECT_EQ(F.Built.Graph->nodeOfAlloc(allocOf(*F.Prog, "oa")), Obj);

  EXPECT_EQ(Store.beginGeneration(*F.Built.Graph, F.planFor()), 0u);

  PortableSummary Out;
  uint64_t Gen = Store.generation();
  ASSERT_TRUE(Store.fetchAt(Gen, Obj, {}, RsmState::S1, Out));
  ASSERT_EQ(Out.Tuples.size(), 1u);
  EXPECT_EQ(Out.Tuples[0].Node, Obj);
  EXPECT_EQ(Out.Objects, std::vector<ir::AllocId>{3});
}

//===----------------------------------------------------------------------===//
// EditSession <-> SharedSummaryStore wiring
//===----------------------------------------------------------------------===//

/// The boundary-flag regression, through the *store*: session A warms
/// the shared store while helper() is uncalled; adding the first call
/// must drop helper's store entries so a second reader never reuses the
/// stale (boundary-tuple-free) summary.
TEST(EditSessionStoreTest, CommitInvalidatesAttachedStore) {
  auto P = parse(R"(
    class A {}
    class Box { fields f }
    method helper(b) {
      t = b.f
      return t
    }
    method main() {
      box = new Box @obox
      a = new A @oa
      box.f = a
    }
  )");
  ir::Program &Prog = *P;
  ir::MethodId Main = Prog.findFreeMethod(Prog.names().lookup("main"));
  ir::MethodId Helper = Prog.findFreeMethod(Prog.names().lookup("helper"));
  ir::VarId T = varOf(Prog, "helper", "t");
  ir::VarId Box = varOf(Prog, "main", "box");

  SharedSummaryStore Store;
  incremental::EditSession S(std::move(P), AnalysisOptions());
  S.attachStore(&Store);

  // Warm both the private cache and the store while helper is uncalled.
  EXPECT_TRUE(S.queryVar(T).Targets.empty());
  ASSERT_GT(Store.size(), 0u);
  uint64_t GenBefore = Store.generation();

  // Add "r = call helper(box)" to main.
  ir::Program &Q = S.program();
  ir::VarId R = Q.createLocal(Q.name("r"), Main, ir::kObjectType);
  ir::Statement Call;
  Call.Kind = ir::StmtKind::Call;
  Call.Dst = R;
  Call.Callee = Helper;
  Call.Call = Q.createCallSite(Main, 99);
  Call.Args.push_back(Box);
  S.addStatement(Main, std::move(Call));
  CommitStats Stats = S.commit();
  EXPECT_GT(Stats.SharedSummariesDropped, 0u);
  EXPECT_GT(Store.generation(), GenBefore);

  // The session's own warm answer must see the new flow...
  analysis::QueryResult RT = S.queryVar(T);
  EXPECT_EQ(RT.Targets.size(), 1u);
  EXPECT_TRUE(RT.contains(allocOf(S.program(), "oa")));

  // ...and so must a second, cold reader that trusts only the store.
  analysis::DynSumAnalysis Reader(S.graph(), AnalysisOptions());
  Reader.setSummaryExchange(&Store);
  analysis::QueryResult RR = Reader.query(S.graph().nodeOfVar(T));
  EXPECT_EQ(RR.allocSites(), RT.allocSites());
}

TEST(EditSessionStoreTest, ClearAllPolicyClearsAttachedStore) {
  auto P = parse(kTwoMethodSource);
  ir::VarId R = varOf(*P, "main", "r");
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));

  SharedSummaryStore Store;
  incremental::EditSession S(std::move(P), AnalysisOptions(),
                             InvalidationPolicy::ClearAll);
  S.attachStore(&Store);
  S.queryVar(R);
  ASSERT_GT(Store.size(), 0u);

  S.markDirty(Main);
  CommitStats Stats = S.commit();
  EXPECT_EQ(Stats.SharedSummariesDropped, Stats.SummariesBefore);
  EXPECT_EQ(Store.size(), 0u);
  EXPECT_EQ(Store.generation(), 1u);
}

//===----------------------------------------------------------------------===//
// AnalysisService basics
//===----------------------------------------------------------------------===//

TEST(AnalysisServiceTest, EditsInvisibleUntilCommit) {
  auto P = parse(kTwoMethodSource);
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));
  ir::VarId Other = varOf(*P, "main", "other");

  AnalysisService S(std::move(P));
  EXPECT_EQ(S.generation(), 0u);
  EXPECT_EQ(S.queryVar(Other).AllocSites.size(), 1u);

  S.editProgram([Main](ir::Program &Q) {
    ir::Statement New;
    New.Kind = ir::StmtKind::Alloc;
    New.Dst = ir::kNone;
    Symbol Other = Q.names().lookup("other");
    for (const ir::Variable &V : Q.variables())
      if (!V.IsGlobal && V.Name == Other)
        New.Dst = V.Id;
    New.Type = Q.findClass(Q.names().lookup("A"));
    New.Alloc = Q.createAllocSite(New.Type, Main, Q.name("onew"));
    Q.addStatement(Main, std::move(New));
    return std::vector<ir::MethodId>{Main};
  });
  ASSERT_TRUE(S.dirty());

  // Buffered edits are invisible: still generation 0, still one target.
  EXPECT_EQ(S.queryVar(Other).AllocSites.size(), 1u);
  EXPECT_EQ(S.generation(), 0u);

  CommitStats Stats = S.submitCommit().wait();
  EXPECT_EQ(S.generation(), 1u);
  (void)Stats;
  EXPECT_EQ(S.queryVar(Other).AllocSites.size(), 2u);
}

TEST(AnalysisServiceTest, UnknownVariableGetsEmptyOutcome) {
  auto P = parse(kTwoMethodSource);
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));

  AnalysisService S(std::move(P));
  ir::VarId Fresh = ir::kNone;
  S.editProgram([&Fresh, Main](ir::Program &Q) {
    Fresh = Q.createLocal(Q.name("fresh"), Main, ir::kObjectType);
    ir::Statement New;
    New.Kind = ir::StmtKind::Alloc;
    New.Dst = Fresh;
    New.Type = Q.findClass(Q.names().lookup("A"));
    New.Alloc = Q.createAllocSite(New.Type, Main, Q.name("ofresh"));
    Q.addStatement(Main, std::move(New));
    return std::vector<ir::MethodId>{Main};
  });

  // Generation 0 does not know the variable yet: empty, not a crash.
  engine::QueryOutcome Unknown = S.queryVar(Fresh);
  EXPECT_TRUE(Unknown.AllocSites.empty());

  CommitStats Stats = S.submitCommit().wait();
  EXPECT_EQ(Stats.MethodsRelowered, 1u);
  engine::QueryOutcome Known = S.queryVar(Fresh);
  ASSERT_EQ(Known.AllocSites.size(), 1u);
  EXPECT_EQ(Known.AllocSites[0], allocOf(S.program(), "ofresh"));
}

//===----------------------------------------------------------------------===//
// Warm reuse and persistence over a generated workload
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<ir::Program> makeWorkload(uint64_t Seed = 7) {
  workload::GenOptions GO;
  GO.Scale = 1.0 / 256;
  GO.Seed = Seed;
  return workload::generateProgram(workload::specByName("soot-c"), GO);
}

// The probe picker and the deterministic edit script are
// workload::probeVariables / workload::applyScriptEdit — shared with
// bench/service_loop so these tests pin exactly the scenario the bench
// measures.
using workload::applyScriptEdit;
using workload::probeVariables;

/// Cold ground truth for \p Probe on \p P: fresh PAG, fresh DYNSUM.
std::vector<std::vector<ir::AllocId>>
coldAnswers(const ir::Program &P, const std::vector<ir::VarId> &Probe) {
  pag::BuiltPAG Built = pag::buildPAG(P);
  analysis::DynSumAnalysis A(*Built.Graph, AnalysisOptions());
  std::vector<std::vector<ir::AllocId>> Out;
  Out.reserve(Probe.size());
  for (ir::VarId V : Probe)
    Out.push_back(A.query(Built.Graph->nodeOfVar(V)).allocSites());
  return Out;
}

} // namespace

TEST(AnalysisServiceTest, PerMethodCommitKeepsStoreWarm) {
  auto P = makeWorkload();
  std::vector<ir::VarId> Probe = probeVariables(*P, 61);
  ASSERT_GT(Probe.size(), 8u);

  ServiceOptions SO;
  SO.Engine.NumThreads = 2;
  AnalysisService S(makeWorkload(), SO);

  ServiceBatchResult Cold = S.queryVars(Probe);
  ASSERT_GT(Cold.Stats.SummariesComputed, 0u);
  ASSERT_GT(S.stats().StoreSize, 0u);

  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
  CommitStats Stats = S.submitCommit().wait();
  EXPECT_LT(Stats.SummariesDropped, Stats.SummariesBefore)
      << "per-method invalidation must not clear the whole store";

  applyScriptEdit(*P, 0); // mirror the edit on the reference program
  std::vector<std::vector<ir::AllocId>> Expected = coldAnswers(*P, Probe);

  ServiceBatchResult Warm = S.queryVars(Probe);
  EXPECT_EQ(Warm.Generation, 1u);
  EXPECT_LT(Warm.Stats.SummariesComputed, Cold.Stats.SummariesComputed)
      << "surviving store entries must be reused after the commit";
  ASSERT_EQ(Warm.Outcomes.size(), Probe.size());
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(Warm.Outcomes[I].AllocSites, Expected[I]) << "probe " << I;
}

TEST(AnalysisServiceTest, SummariesPersistAcrossRestart) {
  std::vector<ir::VarId> Probe;
  std::string Path = ::testing::TempDir() + "/dynsum_service_warm.bin";

  {
    AnalysisService S(makeWorkload());
    Probe = probeVariables(S.program(), 61);
    ASSERT_GT(Probe.size(), 8u);
    ServiceBatchResult Cold = S.queryVars(Probe);
    ASSERT_GT(Cold.Stats.SummariesComputed, 0u);
    ASSERT_TRUE(S.saveSummaries(Path));
  }

  // A "restarted" service over an identical program starts warm.
  AnalysisService S(makeWorkload());
  ASSERT_TRUE(S.loadSummaries(Path));
  ASSERT_GT(S.stats().StoreSize, 0u);
  ServiceBatchResult Warm = S.queryVars(Probe);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u)
      << "every summary must come from the warm-start file";

  // A different program rejects the file.
  AnalysisService Other(makeWorkload(/*Seed=*/8));
  EXPECT_FALSE(Other.loadSummaries(Path));
  EXPECT_EQ(Other.stats().StoreSize, 0u);
  std::remove(Path.c_str());
}

/// The DSUM v2 canonical-node regression: a service that lived through
/// delta commits numbers late-created variables *after* object nodes,
/// while a fresh service over the byte-identical program numbers all
/// variables first.  Saving from the evolved lineage and loading into
/// the fresh one must still resolve every summary to the right node.
TEST(AnalysisServiceTest, SummariesPersistAcrossDivergentGraphLineages) {
  std::string Path = ::testing::TempDir() + "/dynsum_service_lineage.bin";

  // Evolve a service through commits (applyScriptEdit creates new
  // locals, so the lineage's node numbering interleaves), then save.
  std::vector<ir::VarId> Probe;
  {
    AnalysisService S(makeWorkload());
    for (unsigned I = 0; I < 3; ++I) {
      S.editProgram([I](ir::Program &Q) { return applyScriptEdit(Q, I); });
      S.submitCommit().wait();
    }
    Probe = probeVariables(S.program(), 61);
    ServiceBatchResult Warm = S.queryVars(Probe);
    ASSERT_GT(Warm.Stats.SummariesComputed, 0u);
    ASSERT_TRUE(S.saveSummaries(Path));
  }

  // A fresh service over the identical program (same edits replayed
  // before construction → same fingerprint, different node numbering)
  // must load the file and start fully warm.
  auto Replayed = makeWorkload();
  for (unsigned I = 0; I < 3; ++I)
    applyScriptEdit(*Replayed, I);
  AnalysisService Fresh(std::move(Replayed));
  ASSERT_TRUE(Fresh.loadSummaries(Path));
  ASSERT_GT(Fresh.stats().StoreSize, 0u);
  ServiceBatchResult Warm = Fresh.queryVars(Probe);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u)
      << "canonical node ids must resolve across lineages";
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Commit-while-querying: every batch matches a serial rerun of the
// generation it reports
//===----------------------------------------------------------------------===//

/// The async-commit stress: 4 reader threads stream batches while every
/// commit runs on the background committer.  Phase 1 waits for each
/// async commit, so published generations map 1:1 onto edit prefixes
/// and every racing batch can be validated exactly against its
/// generation's serial rerun (stale-epoch fetch/publish semantics must
/// hold while the committer is mid-pipeline).  Phase 2 fires a burst of
/// background submitCommit requests without waiting — they coalesce with the
/// in-flight commit — and the final steady state must equal the serial
/// reference of ALL edits: queue coalescing may skip generations but
/// must never lose edits.  Runs under the CI TSan job with the rest of
/// this suite.
TEST(AnalysisServiceTest, AsyncCommitsRaceConcurrentReaders) {
  constexpr unsigned kWaitedEdits = 4;
  constexpr unsigned kBurstEdits = 3;
  constexpr unsigned kReaders = 4;

  auto Reference = makeWorkload();
  std::vector<ir::VarId> Probe = probeVariables(*Reference, 149);
  ASSERT_GT(Probe.size(), 4u);

  // Serial pass: cold answers for every edit prefix 0..kWaitedEdits,
  // plus the final state after the burst.
  std::vector<std::vector<std::vector<ir::AllocId>>> Expected;
  Expected.push_back(coldAnswers(*Reference, Probe));
  for (unsigned I = 0; I < kWaitedEdits + kBurstEdits; ++I) {
    applyScriptEdit(*Reference, I);
    Expected.push_back(coldAnswers(*Reference, Probe));
  }

  ServiceOptions SO;
  SO.Engine.NumThreads = 2;
  SO.Commit = 2;
  AnalysisService S(makeWorkload(), SO);

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> BatchesChecked{0};
  std::vector<std::thread> Readers;
  Readers.reserve(kReaders);
  for (unsigned T = 0; T < kReaders; ++T)
    Readers.emplace_back([&] {
      do {
        ServiceBatchResult R = S.queryVars(Probe);
        // Waited-phase generations correspond to edit prefixes; burst
        // generations may coalesce several edits and are only checked
        // at the end, in steady state.
        if (R.Generation <= kWaitedEdits) {
          const std::vector<std::vector<ir::AllocId>> &Want =
              Expected[R.Generation];
          for (size_t I = 0; I < Probe.size(); ++I)
            EXPECT_EQ(R.Outcomes[I].AllocSites, Want[I])
                << "probe " << I << " at generation " << R.Generation;
        }
        BatchesChecked.fetch_add(1, std::memory_order_relaxed);
      } while (!Done.load(std::memory_order_relaxed));
    });

  // Phase 1: one waited async commit per edit.
  for (unsigned I = 0; I < kWaitedEdits; ++I) {
    S.editProgram([I](ir::Program &Q) { return applyScriptEdit(Q, I); });
    S.submitCommit({CommitMode::Delta, /*Background=*/true});
    S.waitForCommits();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(S.generation(), kWaitedEdits);

  // Phase 2: fire-and-forget burst; racing requests coalesce.
  for (unsigned I = 0; I < kBurstEdits; ++I) {
    S.editProgram([I](ir::Program &Q) {
      return applyScriptEdit(Q, kWaitedEdits + I);
    });
    S.submitCommit({CommitMode::Delta, /*Background=*/true});
  }
  S.waitForCommits();
  Done.store(true, std::memory_order_relaxed);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_FALSE(S.dirty()) << "coalescing lost edits";
  EXPECT_GE(BatchesChecked.load(), uint64_t(kReaders));
  ServiceStats SS = S.stats();
  EXPECT_EQ(SS.AsyncCommitsRequested, uint64_t(kWaitedEdits + kBurstEdits));
  EXPECT_LE(SS.Commits, uint64_t(kWaitedEdits + kBurstEdits));

  // Steady state: the final generation answers the full edit script.
  ServiceBatchResult Final = S.queryVars(Probe);
  const std::vector<std::vector<ir::AllocId>> &Want = Expected.back();
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(Final.Outcomes[I].AllocSites, Want[I]) << "probe " << I;
}

//===----------------------------------------------------------------------===//
// Edit-clock stamping: remove-only edits invalidate like additions
//===----------------------------------------------------------------------===//

/// The PR-4 regression this locks down: addStatement auto-stamps the
/// edit clock, but a remove-only edit must stamp too — dropping the
/// store that fed helper's summary has to invalidate it, with no
/// markDirty call anywhere.
TEST(EditClockTest, RemoveOnlyEditInvalidatesSummariesInService) {
  auto P = parse(kTwoMethodSource);
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));
  ir::VarId T = varOf(*P, "helper", "t");
  ir::AllocId Oa = allocOf(*P, "oa");

  AnalysisService S(std::move(P));
  engine::QueryOutcome Before = S.queryVar(T);
  ASSERT_EQ(Before.AllocSites, std::vector<ir::AllocId>{Oa});

  // Remove main's "box.f = a" store.  No markDirty, no addStatement:
  // the stamp must come from removeStatements itself.
  ASSERT_FALSE(S.dirty());
  size_t Removed = S.removeStatements(Main, [](const ir::Statement &St) {
    return St.Kind == ir::StmtKind::Store;
  });
  ASSERT_EQ(Removed, 1u);
  EXPECT_TRUE(S.dirty()) << "remove-only edit must stamp the edit clock";

  CommitStats Stats = S.submitCommit().wait();
  EXPECT_GE(Stats.MethodsRelowered, 1u);
  EXPECT_TRUE(S.queryVar(T).AllocSites.empty())
      << "stale summary survived a remove-only edit";

  // A no-match removal stays clean: nothing to invalidate.
  size_t None = S.removeStatements(Main, [](const ir::Statement &) {
    return false;
  });
  EXPECT_EQ(None, 0u);
  EXPECT_FALSE(S.dirty());
}

TEST(EditClockTest, RemoveOnlyEditInvalidatesSummariesInSession) {
  auto P = parse(kTwoMethodSource);
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));
  ir::VarId T = varOf(*P, "helper", "t");
  ir::AllocId Oa = allocOf(*P, "oa");

  incremental::EditSession S(std::move(P), AnalysisOptions());
  ASSERT_EQ(S.queryVar(T).allocSites(), std::vector<ir::AllocId>{Oa});

  size_t Removed = S.removeStatements(Main, [](const ir::Statement &St) {
    return St.Kind == ir::StmtKind::Store;
  });
  ASSERT_EQ(Removed, 1u);
  EXPECT_TRUE(S.dirty()) << "remove-only edit must stamp the edit clock";
  EXPECT_TRUE(S.queryVar(T).allocSites().empty()) // auto-commits
      << "stale summary survived a remove-only edit";
}

TEST(AnalysisServiceTest, ConcurrentCommitsMatchSerialRerun) {
  constexpr unsigned kEdits = 5;
  constexpr unsigned kReaders = 4;

  auto Reference = makeWorkload();
  std::vector<ir::VarId> Probe = probeVariables(*Reference, 149);
  ASSERT_GT(Probe.size(), 4u);

  // Serial pass: cold answers for every generation 0..kEdits.
  std::vector<std::vector<std::vector<ir::AllocId>>> Expected;
  Expected.push_back(coldAnswers(*Reference, Probe));
  for (unsigned I = 0; I < kEdits; ++I) {
    applyScriptEdit(*Reference, I);
    Expected.push_back(coldAnswers(*Reference, Probe));
  }

  // Concurrent pass: kReaders query threads interleave with commits.
  ServiceOptions SO;
  SO.Engine.NumThreads = 2;
  AnalysisService S(makeWorkload(), SO);

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> BatchesChecked{0};
  std::vector<std::thread> Readers;
  Readers.reserve(kReaders);
  for (unsigned T = 0; T < kReaders; ++T)
    Readers.emplace_back([&] {
      do {
        ServiceBatchResult R = S.queryVars(Probe);
        ASSERT_LT(R.Generation, Expected.size());
        const std::vector<std::vector<ir::AllocId>> &Want =
            Expected[R.Generation];
        for (size_t I = 0; I < Probe.size(); ++I)
          EXPECT_EQ(R.Outcomes[I].AllocSites, Want[I])
              << "probe " << I << " at generation " << R.Generation;
        BatchesChecked.fetch_add(1, std::memory_order_relaxed);
      } while (!Done.load(std::memory_order_relaxed));
    });

  for (unsigned I = 0; I < kEdits; ++I) {
    S.editProgram([I](ir::Program &Q) { return applyScriptEdit(Q, I); });
    S.submitCommit().wait();
    // Give the readers a chance to drain batches on this generation.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Done.store(true, std::memory_order_relaxed);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(S.generation(), kEdits);
  EXPECT_GE(BatchesChecked.load(), uint64_t(kReaders));

  // Steady state after the dust settles: warm answers == final serial.
  ServiceBatchResult Final = S.queryVars(Probe);
  EXPECT_EQ(Final.Generation, kEdits);
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(Final.Outcomes[I].AllocSites, Expected[kEdits][I]);
}

//===----------------------------------------------------------------------===//
// Warm-from-disk restarts: the tiered store's mmap tier at service level
//===----------------------------------------------------------------------===//

/// The full restart loop the disk tier exists for: run, snapshot on
/// shutdown, reconstruct with WarmFromDiskPath — the restarted server
/// answers the first batch from disk-tier hits, byte-identical,
/// recomputing nothing.
TEST(AnalysisServiceTest, WarmFromDiskRoundTrip) {
  std::string Path = ::testing::TempDir() + "/dynsum_disk_tier.dsum";
  std::vector<ir::VarId> Probe;
  std::vector<std::vector<ir::AllocId>> Expected;

  {
    ServiceOptions SO;
    SO.SnapshotOnShutdownPath = Path;
    AnalysisService S(makeWorkload(), SO);
    Probe = probeVariables(S.program(), 61);
    ASSERT_GT(Probe.size(), 8u);
    ServiceBatchResult Cold = S.queryVars(Probe);
    ASSERT_GT(Cold.Stats.SummariesComputed, 0u);
    for (const engine::QueryOutcome &O : Cold.Outcomes)
      Expected.push_back(O.AllocSites);
    // The destructor snapshots the store to Path.
  }

  ServiceOptions SO;
  SO.WarmFromDiskPath = Path;
  AnalysisService S(makeWorkload(), SO);
  ServiceStats Boot = S.stats();
  EXPECT_TRUE(Boot.DiskTierAttached);
  EXPECT_EQ(Boot.StoreSize, 0u)
      << "the disk tier is lazy; nothing loads until a query probes";

  ServiceBatchResult Warm = S.queryVars(Probe);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u)
      << "every summary must come off the mmap'd disk tier";
  ASSERT_EQ(Warm.Outcomes.size(), Probe.size());
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(Warm.Outcomes[I].AllocSites, Expected[I]) << "probe " << I;

  ServiceStats After = S.stats();
  EXPECT_GT(After.Store.DiskHits, 0u);
  EXPECT_GT(After.Store.Promoted, 0u);
  EXPECT_EQ(After.Store.DiskCorrupt, 0u);
  EXPECT_GT(After.StoreSize, 0u) << "probed records promote into the hot tier";

  // Hot-tier hit-rate parity: a second identical batch is served from
  // promoted entries without touching the disk again.
  uint64_t ProbesBefore = After.Store.DiskProbes;
  ServiceBatchResult Hot = S.queryVars(Probe);
  EXPECT_EQ(Hot.Stats.SummariesComputed, 0u);
  ServiceStats Final = S.stats();
  EXPECT_EQ(Final.Store.DiskProbes, ProbesBefore)
      << "promoted summaries must be answered by the hot tier";
  EXPECT_GT(Final.Store.Hits, After.Store.Hits);
  std::remove(Path.c_str());
}

/// A snapshot from a different program must refuse to attach — and the
/// refusal is soft: the service still comes up cold and correct.
TEST(AnalysisServiceTest, WarmFromDiskRejectsDifferentProgram) {
  std::string Path = ::testing::TempDir() + "/dynsum_disk_mismatch.dsum";
  {
    ServiceOptions SO;
    SO.SnapshotOnShutdownPath = Path;
    AnalysisService S(makeWorkload());
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    S.queryVars(Probe);
    ASSERT_TRUE(S.saveSummaries(Path));
  }

  auto Other = makeWorkload(/*Seed=*/8);
  std::vector<ir::VarId> Probe = probeVariables(*Other, 61);
  std::vector<std::vector<ir::AllocId>> Expected = coldAnswers(*Other, Probe);

  ServiceOptions SO;
  SO.WarmFromDiskPath = Path;
  AnalysisService S(std::move(Other), SO);
  EXPECT_FALSE(S.stats().DiskTierAttached)
      << "a mismatched fingerprint must not attach";

  ServiceBatchResult R = S.queryVars(Probe);
  EXPECT_GT(R.Stats.SummariesComputed, 0u) << "cold start, by design";
  EXPECT_EQ(S.stats().Store.DiskProbes, 0u);
  ASSERT_EQ(R.Outcomes.size(), Probe.size());
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(R.Outcomes[I].AllocSites, Expected[I]) << "probe " << I;
  std::remove(Path.c_str());
}

/// Committing an edit after a warm attach must invalidate the edited
/// methods' DISK records too: answers track the new program, never a
/// stale snapshot.
TEST(AnalysisServiceTest, EditAfterWarmAttachInvalidatesDiskRecords) {
  std::string Path = ::testing::TempDir() + "/dynsum_disk_edit.dsum";
  std::vector<ir::VarId> Probe;
  {
    ServiceOptions SO;
    SO.SnapshotOnShutdownPath = Path;
    AnalysisService S(makeWorkload(), SO);
    Probe = probeVariables(S.program(), 61);
    S.queryVars(Probe);
  }

  ServiceOptions SO;
  SO.WarmFromDiskPath = Path;
  AnalysisService S(makeWorkload(), SO);
  ASSERT_TRUE(S.stats().DiskTierAttached);

  // Edit + per-method commit BEFORE any query touches the disk tier:
  // the invalidation must blind the tier to the edited methods even
  // though their records were never promoted.
  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
  S.submitCommit().wait();

  auto Reference = makeWorkload();
  applyScriptEdit(*Reference, 0);
  std::vector<std::vector<ir::AllocId>> Expected =
      coldAnswers(*Reference, Probe);

  ServiceBatchResult R = S.queryVars(Probe);
  ASSERT_EQ(R.Outcomes.size(), Probe.size());
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(R.Outcomes[I].AllocSites, Expected[I]) << "probe " << I;

  // Untouched methods still ride the disk tier; the file predates the
  // edit, so at least something must have required recomputation or
  // refused a stale disk record.
  ServiceStats After = S.stats();
  EXPECT_GT(After.Store.DiskProbes, 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Post-commit pre-summarization
//===----------------------------------------------------------------------===//

/// The warmer's whole contract in one scenario: after an edit + commit,
/// the background pass recomputes the summaries for invalidated and
/// recently-queried (hot) variables, so re-running the probe batch
/// computes nothing — and, critically, the pre-summarized answers are
/// byte-equal to cold ground truth on the edited program.
TEST(AnalysisServiceTest, PresummarizedAnswersEqualColdAcrossCommit) {
  auto P = makeWorkload();
  std::vector<ir::VarId> Probe = probeVariables(*P, 61);
  ASSERT_GT(Probe.size(), 8u);

  ServiceOptions SO;
  SO.Presummarize = true;
  AnalysisService S(makeWorkload(), SO);

  // Cold pass: computes summaries and records the probe as hot.
  ServiceBatchResult Cold = S.queryVars(Probe);
  ASSERT_GT(Cold.Stats.SummariesComputed, 0u);

  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
  S.submitCommit().wait();
  S.waitForWarm();

  ServiceStats SS = S.stats();
  EXPECT_GE(SS.WarmRuns, 1u);
  EXPECT_GT(SS.WarmQueries, 0u);

  applyScriptEdit(*P, 0); // mirror the edit on the reference program
  std::vector<std::vector<ir::AllocId>> Expected = coldAnswers(*P, Probe);

  ServiceBatchResult Warm = S.queryVars(Probe);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u)
      << "the warm pass must have pre-computed every probe summary";
  ASSERT_EQ(Warm.Outcomes.size(), Probe.size());
  for (size_t I = 0; I < Probe.size(); ++I)
    EXPECT_EQ(Warm.Outcomes[I].AllocSites, Expected[I]) << "probe " << I;
}

/// Under ClearAll every summary is dropped, so scope degenerates to a
/// whole-program warm: even never-queried variables answer from the
/// store afterwards.
TEST(AnalysisServiceTest, PresummarizeClearAllWarmsWholeProgram) {
  ServiceOptions SO;
  SO.Presummarize = true;
  SO.Policy = incremental::InvalidationPolicy::ClearAll;
  AnalysisService S(makeWorkload(), SO);
  std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
  ASSERT_GT(Probe.size(), 8u);

  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
  S.submitCommit().wait();
  S.waitForWarm();
  ASSERT_GE(S.stats().WarmRuns, 1u);

  ServiceBatchResult Warm = S.queryVars(Probe);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u)
      << "a whole-program warm must cover variables never queried before";
}

/// The default Hot scope warms only what clients recently queried; the
/// speculative HotAndInvalidated scope additionally covers variables
/// the edited methods own that no batch ever asked for.  Distinguish
/// them by querying exactly those never-queried variables afterwards:
/// speculative warming answers them from the store, Hot leaves them to
/// compute on first demand.
TEST(AnalysisServiceTest, PresummarizeScopeHotSkipsUnqueriedVars) {
  for (bool Speculative : {false, true}) {
    ServiceOptions SO;
    SO.Presummarize = true;
    SO.WarmScope = Speculative ? PresummarizeScope::HotAndInvalidated
                               : PresummarizeScope::Hot;
    AnalysisService S(makeWorkload(), SO);
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    ASSERT_GT(Probe.size(), 8u);
    (void)S.queryVars(Probe);

    std::vector<ir::MethodId> Edited;
    S.editProgram([&](ir::Program &Q) {
      Edited = applyScriptEdit(Q, 0);
      return Edited;
    });
    S.submitCommit().wait();
    S.waitForWarm();
    ASSERT_GE(S.stats().WarmRuns, 1u);
    ASSERT_EQ(Edited.size(), 1u);

    std::unordered_set<ir::VarId> Probed(Probe.begin(), Probe.end());
    std::vector<ir::VarId> Unqueried;
    const std::vector<ir::Variable> &Vars = S.program().variables();
    for (size_t I = 0; I < Vars.size(); ++I)
      if (Vars[I].Owner == Edited[0] && !Probed.count(ir::VarId(I)))
        Unqueried.push_back(ir::VarId(I));
    ASSERT_GT(Unqueried.size(), 0u)
        << "the edited method must own variables outside the probe";

    ServiceBatchResult R = S.queryVars(Unqueried);
    if (Speculative)
      EXPECT_EQ(R.Stats.SummariesComputed, 0u)
          << "HotAndInvalidated must have warmed the edited method's "
             "variables";
    else
      EXPECT_GT(R.Stats.SummariesComputed, 0u)
          << "Hot scope must not speculatively warm never-queried "
             "variables";
  }
}

/// Presummarize off is the default and must stay inert: no warm passes,
/// and waitForWarm returns immediately instead of hanging.
TEST(AnalysisServiceTest, PresummarizeOffIsInert) {
  AnalysisService S(makeWorkload());
  std::vector<ir::VarId> Probe = probeVariables(S.program(), 13);
  S.queryVars(Probe);
  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
  S.submitCommit().wait();
  S.waitForWarm(); // must not block
  EXPECT_EQ(S.stats().WarmRuns, 0u);
  EXPECT_EQ(S.stats().WarmQueries, 0u);
}
