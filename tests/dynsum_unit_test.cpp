//===----------------------------------------------------------------------===//
///
/// \file
/// Rule-level unit tests for DYNSUM: every transition of Algorithm 3
/// (PPTA) and Algorithm 4 (worklist) is exercised on a minimal program
/// crafted for exactly that rule, plus regression tests for the
/// field-tag discipline and budget/caching edge cases.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "ir/Builder.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Minimal harness: parse, build, query one variable by name.
struct Mini {
  explicit Mini(const char *Src) {
    ir::ParseResult R = ir::parseProgram(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  pag::NodeId node(const char *Var) const {
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal && Prog->names().text(V.Name) == std::string_view(Var))
        return Built.Graph->nodeOfVar(V.Id);
    ADD_FAILURE() << "no variable " << Var;
    return 0;
  }

  ir::AllocId alloc(const char *Label) const {
    Symbol L = Prog->names().lookup(Label);
    for (const ir::AllocSite &A : Prog->allocs())
      if (A.Label == L)
        return A.Id;
    ADD_FAILURE() << "no alloc " << Label;
    return ir::kNone;
  }

  std::vector<ir::AllocId> query(const char *Var,
                                 uint64_t Budget = 75000) {
    AnalysisOptions Opts;
    Opts.BudgetPerQuery = Budget;
    DynSumAnalysis A(*Built.Graph, Opts);
    return A.query(node(Var)).allocSites();
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

} // namespace

//===----------------------------------------------------------------------===//
// Algorithm 3, state S1
//===----------------------------------------------------------------------===//

TEST(PptaRuleTest, S1NewWithEmptyStackYieldsObject) {
  Mini M("class A {} method m() { x = new A @o1 }");
  EXPECT_EQ(M.query("x"), std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(PptaRuleTest, S1AssignWalksBackwards) {
  Mini M("class A {} method m() { x = new A @o1  y = x  z = y }");
  EXPECT_EQ(M.query("z"), std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(PptaRuleTest, S1LoadPushesAndStoreBarPops) {
  // z = b.f requires the store b.f = x: load-bar push f, alias at b
  // (trivially, b itself), store-bar pop f.
  Mini M(R"(
class A {}
class Box { fields f }
method m() {
  x = new A @o1
  b = new Box @ob
  b.f = x
  z = b.f
}
)");
  EXPECT_EQ(M.query("z"), std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(PptaRuleTest, S1DistinctFieldsDontConflate) {
  Mini M(R"(
class A {}
class Box { fields f, g }
method m() {
  x = new A @o1
  y = new A @o2
  b = new Box @ob
  b.f = x
  b.g = y
  zf = b.f
  zg = b.g
}
)");
  EXPECT_EQ(M.query("zf"), std::vector<ir::AllocId>{M.alloc("o1")});
  EXPECT_EQ(M.query("zg"), std::vector<ir::AllocId>{M.alloc("o2")});
}

//===----------------------------------------------------------------------===//
// Algorithm 3, state S2 (alias discovery)
//===----------------------------------------------------------------------===//

TEST(PptaRuleTest, S2AssignPropagatesAliasesForward) {
  // b2 = b1 aliases the boxes: a store through b1 is seen via b2.
  Mini M(R"(
class A {}
class Box { fields f }
method m() {
  x = new A @o1
  b1 = new Box @ob
  b2 = b1
  b1.f = x
  z = b2.f
}
)");
  EXPECT_EQ(M.query("z"), std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(PptaRuleTest, S2StorePushAndForwardLoadPop) {
  // The object x is stored into c.inner, c flows to d, and the load
  // d.inner retrieves it: a store(f) push popped by a forward load(f).
  Mini M(R"(
class A {}
class Cell { fields inner }
method m() {
  x = new A @o1
  c = new Cell @oc
  c.inner = x
  d = c
  z = d.inner
}
)");
  EXPECT_EQ(M.query("z"), std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(PptaRuleTest, TwoLevelFieldPath) {
  // z = outer.in.f: two pending loads resolved by two stores.
  Mini M(R"(
class A {}
class Inner { fields f }
class Outer { fields in }
method m() {
  x = new A @o1
  i = new Inner @oi
  o = new Outer @oo
  i.f = x
  o.in = i
  t = o.in
  z = t.f
}
)");
  EXPECT_EQ(M.query("z"), std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(PptaRuleTest, FieldTagRegression) {
  // Regression for the load-bar/store cross-match bug: v123 = v5.f2
  // where v5's object has no f2 store, and v123 itself is stored into a
  // shared container.  The untagged algorithm leaked the container's
  // other contents (o2) into pts(v123).
  Mini M(R"(
class A {}
class B {}
class Box { fields boxf }
class C0 { fields f2 }
method boxput(b : Box, p) {
  b.boxf = p
}
method m() {
  v5 = new C0 @oc0
  v123 = v5.f2
  other = new B @o2
  box = new Box @obox
  call @1 boxput(box, v123)
  call @2 boxput(box, other)
}
)");
  EXPECT_EQ(M.query("v123"), std::vector<ir::AllocId>{});
}

TEST(PptaRuleTest, StoreStoreBarDoesNotMatch) {
  // Two stores into the same field of the same box must not alias the
  // two stored values with each other.
  Mini M(R"(
class A {}
class B {}
class Box { fields f }
method m() {
  x = new A @o1
  y = new B @o2
  b = new Box @ob
  b.f = x
  b.f = y
  zx = b.f
}
)");
  // The load sees both stored values (the field is weakly updated)...
  std::vector<ir::AllocId> Z = M.query("zx");
  EXPECT_EQ(Z.size(), 2u);
  // ...but x itself still points to o1 only.
  EXPECT_EQ(M.query("x"), std::vector<ir::AllocId>{M.alloc("o1")});
}

//===----------------------------------------------------------------------===//
// Algorithm 4: context rules
//===----------------------------------------------------------------------===//

TEST(WorklistRuleTest, ExitPushThenEntryPopMatchesSite) {
  // Classic two-call-site identity: contexts must match exit to entry.
  Mini M(R"(
class A {}
class B {}
method id(p) { return p }
method m() {
  a = new A @oa
  b = new B @ob
  x = call @1 id(a)
  y = call @2 id(b)
}
)");
  EXPECT_EQ(M.query("x"), std::vector<ir::AllocId>{M.alloc("oa")});
  EXPECT_EQ(M.query("y"), std::vector<ir::AllocId>{M.alloc("ob")});
}

TEST(WorklistRuleTest, EmptyContextPopReachesAllCallers) {
  // Querying the formal parameter itself (empty initial context) must
  // see every caller's argument: the unbalanced-prefix rule.
  Mini M(R"(
class A {}
class B {}
method sink(p) { return p }
method m() {
  a = new A @oa
  b = new B @ob
  x = call @1 sink(a)
  y = call @2 sink(b)
}
)");
  std::vector<ir::AllocId> P = M.query("p");
  EXPECT_EQ(P.size(), 2u);
}

TEST(WorklistRuleTest, AssignGlobalClearsContext) {
  // A value routed through a global is visible to every reader
  // regardless of calling context.
  Mini M(R"(
class A {}
global g
method writer(v) { g = v }
method reader() {
  r = g
  return r
}
method m() {
  a = new A @oa
  call @1 writer(a)
  x = call @2 reader()
}
)");
  EXPECT_EQ(M.query("x"), std::vector<ir::AllocId>{M.alloc("oa")});
}

TEST(WorklistRuleTest, RecursiveEdgesAreContextFree) {
  Mini M(R"(
class A {}
method rec(p, n) {
  r = call @1 rec(p, n)
  return p
}
method m() {
  a = new A @oa
  x = call @2 rec(a, a)
}
)");
  std::vector<ir::AllocId> X = M.query("x");
  ASSERT_EQ(X.size(), 1u);
  EXPECT_EQ(X[0], M.alloc("oa"));
}

TEST(WorklistRuleTest, HeapContextsDistinguishAllocWrappers) {
  // A wrapper allocating per call: each caller gets its own abstract
  // (site, context) pair, though the site is shared.
  Mini M(R"(
class Box { fields f }
class A {}
class B {}
method wrap(v) {
  b = new Box @owrap
  b.f = v
  return b
}
method m() {
  a = new A @oa
  c = new B @oc
  w1 = call @1 wrap(a)
  w2 = call @2 wrap(c)
  x = w1.f
  y = w2.f
}
)");
  EXPECT_EQ(M.query("x"), std::vector<ir::AllocId>{M.alloc("oa")});
  EXPECT_EQ(M.query("y"), std::vector<ir::AllocId>{M.alloc("oc")});
}

//===----------------------------------------------------------------------===//
// Cache mechanics
//===----------------------------------------------------------------------===//

TEST(DynSumCacheTest, TrivialSummariesAreNotCounted) {
  // A pure parameter-passing chain has no local edges at the formals;
  // the Section 4.3 shortcut must not inflate the summary count.
  Mini M(R"(
class A {}
method pass1(p) { return p }
method m() {
  a = new A @oa
  x = call @1 pass1(a)
}
)");
  AnalysisOptions Opts;
  DynSumAnalysis A(*M.Built.Graph, Opts);
  (void)A.query(M.node("x"));
  // x and a have local edges (new/assign-free? x has exit in-edge only;
  // a has a new edge), p/ret are pure boundary nodes.
  for (size_t I = 0; I < 3; ++I)
    (void)A.query(M.node("x"));
  EXPECT_LE(A.cacheSize(), 4u);
}

TEST(DynSumCacheTest, IncompleteSummariesAreNeverCached) {
  Mini M(R"(
class A {}
class Box { fields f }
method m() {
  x = new A @o1
  b = new Box @ob
  b.f = x
  z = b.f
}
)");
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = 2; // cannot finish any PPTA
  DynSumAnalysis A(*M.Built.Graph, Opts);
  QueryResult R = A.query(M.node("z"));
  EXPECT_TRUE(R.BudgetExceeded);
  EXPECT_EQ(A.cacheSize(), 0u);
  // A later well-budgeted analysis instance is unaffected by design;
  // the same instance must also recover once budget allows.
  AnalysisOptions Good;
  DynSumAnalysis A2(*M.Built.Graph, Good);
  EXPECT_EQ(A2.query(M.node("z")).allocSites(),
            std::vector<ir::AllocId>{M.alloc("o1")});
}

TEST(DynSumCacheTest, InvalidateUnknownMethodIsNoOp) {
  Mini M("class A {} method m() { x = new A @o1 }");
  AnalysisOptions Opts;
  DynSumAnalysis A(*M.Built.Graph, Opts);
  (void)A.query(M.node("x"));
  size_t Before = A.cacheSize();
  A.invalidateMethod(12345); // not a real method
  EXPECT_EQ(A.cacheSize(), Before);
}

TEST(DynSumCacheTest, SummaryKeyPackingRoundTrips) {
  StackPool Pool;
  StackId S = Pool.push(StackPool::empty(), 42);
  uint64_t K1 = packSummaryKey(7, S, RsmState::S1);
  uint64_t K2 = packSummaryKey(7, S, RsmState::S2);
  uint64_t K3 = packSummaryKey(8, S, RsmState::S1);
  uint64_t K4 = packSummaryKey(7, StackPool::empty(), RsmState::S1);
  EXPECT_NE(K1, K2);
  EXPECT_NE(K1, K3);
  EXPECT_NE(K1, K4);
  EXPECT_EQ((K1 >> 1) & 0xffffffffu, 7u);
}

TEST(DynSumCacheTest, FieldTagEncodingRoundTrips) {
  for (ir::FieldId F : {0u, 1u, 17u, 4095u}) {
    EXPECT_EQ(decodeField(encodeLoadBarField(F)), F);
    EXPECT_EQ(decodeField(encodeStoreField(F)), F);
    EXPECT_NE(encodeLoadBarField(F), encodeStoreField(F));
  }
}
