//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized delta-vs-scratch equivalence for the PAG layer.
///
/// MiniJavaFuzzer generates a well-typed program; the shared
/// IrEditFuzzer then drives N edit/commit rounds of IR-level mutations
/// (new allocations, assigns, loads/stores, direct calls, statement
/// removals, fresh locals and whole new methods).  After every round
/// the delta-patched graph must be isomorphic to a cold buildPAG of the
/// same program: identical node flags, identical live edge multiset
/// (modulo slot numbering), clean CSR invariants despite holes and slot
/// reuse, and identical DYNSUM answers.  A parallel EditSession replays
/// the same rounds and must stay warm-equal to cold throughout.
///
/// The sharded (multi-worker) delta builds and the async service
/// commits run the same oracle in tests/parallel_commit_test.cpp.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "frontend/Frontend.h"
#include "incremental/EditSession.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"

#include "IrEditFuzzer.h"
#include "MiniJavaFuzzer.h"

#include <gtest/gtest.h>

using namespace dynsum;
using analysis::AnalysisOptions;
using analysis::QueryResult;
using dynsum::testing::checkCsrInvariants;
using dynsum::testing::checkIsomorphic;
using dynsum::testing::IrEditFuzzer;
using dynsum::testing::sampleVars;

//===----------------------------------------------------------------------===//
// The fuzz equivalence drive
//===----------------------------------------------------------------------===//

class DeltaFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaFuzzTest, DeltaBuildsStayIsomorphicToScratchAcrossEditRounds) {
  constexpr unsigned kRounds = 6;
  constexpr unsigned kEditsPerRound = 12;

  dynsum::testing::MiniJavaFuzzer Fuzz(GetParam());
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ir::Program &P = *R.Prog;
  ASSERT_TRUE(ir::validate(P).empty());

  pag::PAG Delta(P);
  pag::CallGraph Calls;
  pag::buildPAGDelta(Delta, Calls);

  IrEditFuzzer Edits(GetParam() ^ 0xfeedbeef);
  for (unsigned Round = 0; Round < kRounds; ++Round) {
    Edits.apply(P, kEditsPerRound);
    ASSERT_TRUE(ir::validate(P).empty()) << "edit fuzzer broke the program";

    pag::DeltaStats DS = pag::buildPAGDelta(Delta, Calls);
    EXPECT_LE(DS.Relowered.size(), P.methods().size());

    pag::BuiltPAG Cold = pag::buildPAG(P);
    checkCsrInvariants(Delta);
    checkIsomorphic(Delta, *Cold.Graph);

    // Same answers: cold DYNSUM over the delta graph vs the scratch
    // graph, for a sample of variables including the newest ones.
    // Budget-exhausted queries are skipped: their partial answers
    // depend on traversal order, and the delta CSR legitimately orders
    // buckets differently (survivors first, re-lowered edges appended)
    // than a scratch build's edge-id order.  Completed queries are
    // closures and must match exactly.
    analysis::DynSumAnalysis DeltaA(Delta, AnalysisOptions());
    analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
    std::vector<ir::VarId> Sample = sampleVars(P, 7);
    size_t Compared = 0;
    for (ir::VarId V : Sample) {
      QueryResult DR = DeltaA.query(Delta.nodeOfVar(V));
      QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(V));
      if (DR.BudgetExceeded || CR.BudgetExceeded)
        continue;
      ++Compared;
      EXPECT_EQ(DR.allocSites(), CR.allocSites())
          << "round " << Round << ", " << P.describeVar(V);
    }
    EXPECT_GT(Compared, Sample.size() / 2)
        << "too many queries blew the budget for the round to mean much";
  }
}

TEST_P(DeltaFuzzTest, WarmSessionMatchesColdAcrossFuzzedEditRounds) {
  constexpr unsigned kRounds = 4;
  constexpr unsigned kEditsPerRound = 10;

  dynsum::testing::MiniJavaFuzzer Fuzz(GetParam() + 101);
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ASSERT_TRUE(ir::validate(*R.Prog).empty());

  incremental::EditSession S(std::move(R.Prog), AnalysisOptions());
  ir::Program &P = S.program();

  // Warm the session before any edits.
  for (ir::VarId V : sampleVars(P, 5))
    S.queryVar(V);

  IrEditFuzzer Edits(GetParam() * 31 + 7);
  for (unsigned Round = 0; Round < kRounds; ++Round) {
    Edits.apply(P, kEditsPerRound);
    // The edit fuzzer mutates the program directly; the program's own
    // edit clock carries the dirty set into commit().
    ASSERT_TRUE(ir::validate(P).empty());
    S.commit();

    pag::BuiltPAG Cold = pag::buildPAG(P);
    analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
    for (ir::VarId V : sampleVars(P, 5)) {
      QueryResult Warm = S.queryVar(V);
      QueryResult ColdR = ColdA.query(Cold.Graph->nodeOfVar(V));
      // Completed queries must match; a budget blowout on either side
      // makes the partial answer order-dependent (and warm caches
      // legitimately stretch the budget further than cold runs).
      if (Warm.BudgetExceeded || ColdR.BudgetExceeded)
        continue;
      EXPECT_EQ(Warm.allocSites(), ColdR.allocSites())
          << "round " << Round << ", " << P.describeVar(V);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzzTest,
                         ::testing::Values(2, 3, 17, 29, 71, 113));
