//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized delta-vs-scratch equivalence for the PAG layer.
///
/// MiniJavaFuzzer generates a well-typed program; a deterministic edit
/// fuzzer then drives N edit/commit rounds of IR-level mutations (new
/// allocations, assigns, loads/stores, direct calls, statement
/// removals, fresh locals and whole new methods).  After every round
/// the delta-patched graph must be isomorphic to a cold buildPAG of the
/// same program: identical node flags, identical live edge multiset
/// (modulo slot numbering), clean CSR invariants despite holes and slot
/// reuse, and identical DYNSUM answers.  A parallel EditSession replays
/// the same rounds and must stay warm-equal to cold throughout.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "frontend/Frontend.h"
#include "incremental/EditSession.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"

#include "MiniJavaFuzzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

using namespace dynsum;
using analysis::AnalysisOptions;
using analysis::QueryResult;

namespace {

//===----------------------------------------------------------------------===//
// Deterministic IR-level edit fuzzer
//===----------------------------------------------------------------------===//

class EditFuzzer {
public:
  explicit EditFuzzer(uint64_t Seed)
      : State(Seed * 0x9e3779b97f4a7c15ull + 1) {}

  /// Applies \p Count random (but deterministic) edits to \p P, keeping
  /// it validator-clean.  Touch tracking rides on the program itself.
  void apply(ir::Program &P, unsigned Count) {
    for (unsigned I = 0; I < Count; ++I) {
      ir::MethodId M = pick(unsigned(P.methods().size()));
      switch (pick(8)) {
      case 0:
      case 1:
        addAlloc(P, M);
        break;
      case 2:
        addAssign(P, M);
        break;
      case 3:
        addLoad(P, M);
        break;
      case 4:
        addStore(P, M);
        break;
      case 5:
        addCall(P, M);
        break;
      case 6:
        removeStatement(P, M);
        break;
      case 7:
        if (pick(4) == 0)
          addMethod(P); // rarer: hierarchy/structure growth
        else
          addAlloc(P, M);
        break;
      }
    }
  }

private:
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  unsigned pick(unsigned Bound) { return unsigned(next() % Bound); }

  std::vector<ir::VarId> localsOf(const ir::Program &P, ir::MethodId M) {
    std::vector<ir::VarId> Out;
    for (const ir::Variable &V : P.variables())
      if (!V.IsGlobal && V.Owner == M)
        Out.push_back(V.Id);
    return Out;
  }

  ir::VarId someLocal(ir::Program &P, ir::MethodId M) {
    std::vector<ir::VarId> Locals = localsOf(P, M);
    if (!Locals.empty() && pick(3) != 0)
      return Locals[pick(unsigned(Locals.size()))];
    return P.createLocal(P.name("fz" + std::to_string(NextLocal++)), M,
                         ir::kObjectType);
  }

  ir::FieldId someField(ir::Program &P) {
    if (!P.fields().empty() && pick(4) != 0)
      return P.fields()[pick(unsigned(P.fields().size()))].Id;
    return P.getOrCreateField(
        P.name("fzf" + std::to_string(NextField++)));
  }

  void addAlloc(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Alloc;
    S.Dst = someLocal(P, M);
    S.Type = ir::TypeId(pick(unsigned(P.classes().size())));
    S.Alloc = P.createAllocSite(S.Type, M, Symbol{});
    P.addStatement(M, std::move(S));
  }

  void addAssign(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Assign;
    S.Src = someLocal(P, M);
    S.Dst = someLocal(P, M);
    P.addStatement(M, std::move(S));
  }

  void addLoad(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Load;
    S.Base = someLocal(P, M);
    S.Dst = someLocal(P, M);
    S.FieldLabel = someField(P);
    P.addStatement(M, std::move(S));
  }

  void addStore(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Store;
    S.Base = someLocal(P, M);
    S.Src = someLocal(P, M);
    S.FieldLabel = someField(P);
    P.addStatement(M, std::move(S));
  }

  void addCall(ir::Program &P, ir::MethodId M) {
    // Direct call to an arbitrary method with arity-correct arguments;
    // randomly hitting an uncalled method exercises the boundary-flag
    // flip, a self or mutual call exercises recursion collapsing.
    ir::MethodId Callee = ir::MethodId(pick(unsigned(P.methods().size())));
    ir::Statement S;
    S.Kind = ir::StmtKind::Call;
    S.Callee = Callee;
    S.Call = P.createCallSite(M, ir::kNone);
    for (size_t A = 0; A < P.method(Callee).Params.size(); ++A)
      S.Args.push_back(someLocal(P, M));
    if (pick(2) == 0)
      S.Dst = someLocal(P, M);
    P.addStatement(M, std::move(S));
  }

  void removeStatement(ir::Program &P, ir::MethodId M) {
    std::vector<ir::Statement> &Stmts = P.method(M).Stmts;
    if (Stmts.empty())
      return;
    // Removing a Return changes the method's boundary interface and
    // must ripple to its callers' exit edges — keep those in the pool.
    Stmts.erase(Stmts.begin() + pick(unsigned(Stmts.size())));
    P.touchMethod(M);
  }

  void addMethod(ir::Program &P) {
    ir::MethodId M = P.createMethod(
        P.name("fzm" + std::to_string(NextMethod++)), ir::kNone);
    ir::VarId Param = P.createLocal(P.name("p"), M, ir::kObjectType);
    P.method(M).Params.push_back(Param);
    addAlloc(P, M);
    ir::Statement Ret;
    Ret.Kind = ir::StmtKind::Return;
    Ret.Src = someLocal(P, M);
    P.addStatement(M, std::move(Ret));
  }

  uint64_t State;
  unsigned NextLocal = 0;
  unsigned NextField = 0;
  unsigned NextMethod = 0;
};

//===----------------------------------------------------------------------===//
// Isomorphism checks
//===----------------------------------------------------------------------===//

/// Canonical node name independent of numbering: variables by VarId,
/// objects by numVars + AllocId.
uint64_t canonical(const pag::PAG &G, pag::NodeId N) {
  const pag::Node &Node = G.node(N);
  if (Node.Kind == pag::NodeKind::Object)
    return uint64_t(G.program().variables().size()) + Node.IrId;
  return Node.IrId;
}

using EdgeKey = std::tuple<uint64_t, uint64_t, unsigned, uint32_t, bool>;

std::vector<EdgeKey> liveEdgeKeys(const pag::PAG &G) {
  std::vector<EdgeKey> Keys;
  Keys.reserve(G.numEdges());
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E))
      continue;
    const pag::Edge &Ed = G.edge(E);
    Keys.emplace_back(canonical(G, Ed.Src), canonical(G, Ed.Dst),
                      unsigned(Ed.Kind), Ed.Aux, Ed.ContextFree);
  }
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

/// Structural CSR invariants on \p G — valid for dense and hole-y
/// (delta-repacked) layouts alike.
void checkCsrInvariants(const pag::PAG &G) {
  std::vector<unsigned> InSeen(G.numEdgeSlots(), 0),
      OutSeen(G.numEdgeSlots(), 0);
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    size_t InTotal = 0, OutTotal = 0;
    for (unsigned K = 0; K < pag::kNumEdgeKinds; ++K) {
      pag::EdgeKind Kind = pag::EdgeKind(K);
      for (pag::EdgeId E : G.inEdgesOfKind(N, Kind)) {
        ASSERT_TRUE(G.edgeAlive(E));
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Dst, N);
        ++InSeen[E];
        ++InTotal;
      }
      for (pag::EdgeId E : G.outEdgesOfKind(N, Kind)) {
        ASSERT_TRUE(G.edgeAlive(E));
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Src, N);
        ++OutSeen[E];
        ++OutTotal;
      }
    }
    EXPECT_EQ(InTotal, G.inEdges(N).size()) << "node " << N;
    EXPECT_EQ(OutTotal, G.outEdges(N).size()) << "node " << N;
  }
  size_t InLive = 0, OutLive = 0;
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E)) {
      EXPECT_EQ(InSeen[E], 0u) << "dead slot in CSR, edge " << E;
      EXPECT_EQ(OutSeen[E], 0u) << "dead slot in CSR, edge " << E;
      continue;
    }
    EXPECT_EQ(InSeen[E], 1u) << "edge " << E;
    EXPECT_EQ(OutSeen[E], 1u) << "edge " << E;
    InLive += InSeen[E];
    OutLive += OutSeen[E];
  }
  EXPECT_EQ(InLive, G.numEdges());
  EXPECT_EQ(OutLive, G.numEdges());

  // Field CSR holds exactly the labelled accesses.
  std::vector<size_t> Stores(G.program().fields().size(), 0);
  std::vector<size_t> Loads(G.program().fields().size(), 0);
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E))
      continue;
    if (G.edge(E).Kind == pag::EdgeKind::Store)
      ++Stores[G.edge(E).Aux];
    else if (G.edge(E).Kind == pag::EdgeKind::Load)
      ++Loads[G.edge(E).Aux];
  }
  for (ir::FieldId F = 0; F < G.program().fields().size(); ++F) {
    EXPECT_EQ(G.storesOfField(F).size(), Stores[F]) << "field " << F;
    EXPECT_EQ(G.loadsOfField(F).size(), Loads[F]) << "field " << F;
    for (pag::EdgeId E : G.storesOfField(F)) {
      ASSERT_TRUE(G.edgeAlive(E));
      EXPECT_EQ(G.edge(E).Kind, pag::EdgeKind::Store);
      EXPECT_EQ(G.edge(E).Aux, F);
    }
    for (pag::EdgeId E : G.loadsOfField(F)) {
      ASSERT_TRUE(G.edgeAlive(E));
      EXPECT_EQ(G.edge(E).Kind, pag::EdgeKind::Load);
      EXPECT_EQ(G.edge(E).Aux, F);
    }
  }
}

/// Full isomorphism of the delta-evolved \p Delta against a cold
/// \p Cold of the same program: flags per IR entity, live edge
/// multiset under canonical node naming.
void checkIsomorphic(const pag::PAG &Delta, const pag::PAG &Cold) {
  const ir::Program &P = Delta.program();
  ASSERT_EQ(Delta.numNodes(), Cold.numNodes());
  ASSERT_EQ(Delta.numEdges(), Cold.numEdges());
  for (const ir::Variable &V : P.variables()) {
    const pag::Node &D = Delta.node(Delta.nodeOfVar(V.Id));
    const pag::Node &C = Cold.node(Cold.nodeOfVar(V.Id));
    EXPECT_EQ(D.Kind, C.Kind) << P.describeVar(V.Id);
    EXPECT_EQ(D.Method, C.Method) << P.describeVar(V.Id);
    EXPECT_EQ(D.HasLocalEdge, C.HasLocalEdge) << P.describeVar(V.Id);
    EXPECT_EQ(D.HasGlobalIn, C.HasGlobalIn) << P.describeVar(V.Id);
    EXPECT_EQ(D.HasGlobalOut, C.HasGlobalOut) << P.describeVar(V.Id);
  }
  for (const ir::AllocSite &A : P.allocs()) {
    const pag::Node &D = Delta.node(Delta.nodeOfAlloc(A.Id));
    const pag::Node &C = Cold.node(Cold.nodeOfAlloc(A.Id));
    EXPECT_EQ(D.HasLocalEdge, C.HasLocalEdge) << P.describeAlloc(A.Id);
    EXPECT_EQ(D.HasGlobalIn, C.HasGlobalIn) << P.describeAlloc(A.Id);
    EXPECT_EQ(D.HasGlobalOut, C.HasGlobalOut) << P.describeAlloc(A.Id);
  }
  EXPECT_EQ(liveEdgeKeys(Delta), liveEdgeKeys(Cold));
}

std::vector<ir::VarId> sampleVars(const ir::Program &P, size_t Stride) {
  std::vector<ir::VarId> Out;
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Id % Stride == 0)
      Out.push_back(V.Id);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// The fuzz equivalence drive
//===----------------------------------------------------------------------===//

class DeltaFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaFuzzTest, DeltaBuildsStayIsomorphicToScratchAcrossEditRounds) {
  constexpr unsigned kRounds = 6;
  constexpr unsigned kEditsPerRound = 12;

  dynsum::testing::MiniJavaFuzzer Fuzz(GetParam());
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ir::Program &P = *R.Prog;
  ASSERT_TRUE(ir::validate(P).empty());

  pag::PAG Delta(P);
  pag::CallGraph Calls;
  pag::buildPAGDelta(Delta, Calls);

  EditFuzzer Edits(GetParam() ^ 0xfeedbeef);
  for (unsigned Round = 0; Round < kRounds; ++Round) {
    Edits.apply(P, kEditsPerRound);
    ASSERT_TRUE(ir::validate(P).empty()) << "edit fuzzer broke the program";

    pag::DeltaStats DS = pag::buildPAGDelta(Delta, Calls);
    EXPECT_LE(DS.Relowered.size(), P.methods().size());

    pag::BuiltPAG Cold = pag::buildPAG(P);
    checkCsrInvariants(Delta);
    checkIsomorphic(Delta, *Cold.Graph);

    // Same answers: cold DYNSUM over the delta graph vs the scratch
    // graph, for a sample of variables including the newest ones.
    // Budget-exhausted queries are skipped: their partial answers
    // depend on traversal order, and the delta CSR legitimately orders
    // buckets differently (survivors first, re-lowered edges appended)
    // than a scratch build's edge-id order.  Completed queries are
    // closures and must match exactly.
    analysis::DynSumAnalysis DeltaA(Delta, AnalysisOptions());
    analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
    std::vector<ir::VarId> Sample = sampleVars(P, 7);
    size_t Compared = 0;
    for (ir::VarId V : Sample) {
      QueryResult DR = DeltaA.query(Delta.nodeOfVar(V));
      QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(V));
      if (DR.BudgetExceeded || CR.BudgetExceeded)
        continue;
      ++Compared;
      EXPECT_EQ(DR.allocSites(), CR.allocSites())
          << "round " << Round << ", " << P.describeVar(V);
    }
    EXPECT_GT(Compared, Sample.size() / 2)
        << "too many queries blew the budget for the round to mean much";
  }
}

TEST_P(DeltaFuzzTest, WarmSessionMatchesColdAcrossFuzzedEditRounds) {
  constexpr unsigned kRounds = 4;
  constexpr unsigned kEditsPerRound = 10;

  dynsum::testing::MiniJavaFuzzer Fuzz(GetParam() + 101);
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ASSERT_TRUE(ir::validate(*R.Prog).empty());

  incremental::EditSession S(std::move(R.Prog), AnalysisOptions());
  ir::Program &P = S.program();

  // Warm the session before any edits.
  for (ir::VarId V : sampleVars(P, 5))
    S.queryVar(V);

  EditFuzzer Edits(GetParam() * 31 + 7);
  for (unsigned Round = 0; Round < kRounds; ++Round) {
    Edits.apply(P, kEditsPerRound);
    // The edit fuzzer mutates the program directly; the program's own
    // edit clock carries the dirty set into commit().
    ASSERT_TRUE(ir::validate(P).empty());
    S.commit();

    pag::BuiltPAG Cold = pag::buildPAG(P);
    analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
    for (ir::VarId V : sampleVars(P, 5)) {
      QueryResult Warm = S.queryVar(V);
      QueryResult ColdR = ColdA.query(Cold.Graph->nodeOfVar(V));
      // Completed queries must match; a budget blowout on either side
      // makes the partial answer order-dependent (and warm caches
      // legitimately stretch the budget further than cold runs).
      if (Warm.BudgetExceeded || ColdR.BudgetExceeded)
        continue;
      EXPECT_EQ(Warm.allocSites(), ColdR.allocSites())
          << "round " << Round << ", " << P.describeVar(V);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzzTest,
                         ::testing::Values(2, 3, 17, 29, 71, 113));
