//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the demand alias query (DemandAnalysis::mayAlias) — the
/// question the STASUM line of work (Yan et al., ISSTA'11) answers
/// directly, realized here on top of points-to intersection.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "frontend/Frontend.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

class AliasFixture {
public:
  explicit AliasFixture(const char *Source) {
    frontend::CompileResult R = frontend::compileMiniJava(Source);
    EXPECT_TRUE(R.ok()) << R.Diags.str();
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  pag::NodeId var(std::string_view Cls, std::string_view Method,
                  std::string_view Name) const {
    ir::TypeId T = Prog->findClass(Prog->names().lookup(Cls));
    ir::MethodId M = Prog->findMethod(T, Prog->names().lookup(Method));
    Symbol N = Prog->names().lookup(Name);
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal && V.Owner == M && V.Name == N)
        return Built.Graph->nodeOfVar(V.Id);
    ADD_FAILURE() << "no variable " << Name;
    return 0;
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

const char *kAliasSource = R"(
  class A {}
  class Main {
    static void main() {
      A x = new A();
      A y = x;        // aliases x
      A z = new A();  // distinct object
      A w = z;
      if (true) { w = x; }   // w may alias both
    }
  }
)";

TEST(AliasTest, DirectCopyAliases) {
  AliasFixture F(kAliasSource);
  DynSumAnalysis A(*F.Built.Graph, AnalysisOptions());
  EXPECT_TRUE(A.mayAlias(F.var("Main", "main", "x"),
                         F.var("Main", "main", "y")));
}

TEST(AliasTest, DistinctAllocationsDoNotAlias) {
  AliasFixture F(kAliasSource);
  DynSumAnalysis A(*F.Built.Graph, AnalysisOptions());
  EXPECT_FALSE(A.mayAlias(F.var("Main", "main", "x"),
                          F.var("Main", "main", "z")));
}

TEST(AliasTest, FlowInsensitiveMergeAliasesBoth) {
  AliasFixture F(kAliasSource);
  DynSumAnalysis A(*F.Built.Graph, AnalysisOptions());
  pag::NodeId W = F.var("Main", "main", "w");
  EXPECT_TRUE(A.mayAlias(W, F.var("Main", "main", "x")));
  EXPECT_TRUE(A.mayAlias(W, F.var("Main", "main", "z")));
}

TEST(AliasTest, ContextSensitivityKeepsIdentityCallsApart) {
  AliasFixture F(R"(
    class A {}
    class Main {
      static A id(A p) { return p; }
      static void main() {
        A r1 = Main.id(new A());
        A r2 = Main.id(new A());
      }
    }
  )");
  DynSumAnalysis A(*F.Built.Graph, AnalysisOptions());
  EXPECT_FALSE(A.mayAlias(F.var("Main", "main", "r1"),
                          F.var("Main", "main", "r2")))
      << "unbalanced entry/exit paths must not conflate the two calls";
}

TEST(AliasTest, FieldSensitivityKeepsFieldsApart) {
  AliasFixture F(R"(
    class Pair { Object first; Object second; }
    class Main {
      static void main() {
        Pair p = new Pair();
        p.first = new Main();
        p.second = new Object();
        Object f = p.first;
        Object s = p.second;
      }
    }
  )");
  DynSumAnalysis A(*F.Built.Graph, AnalysisOptions());
  EXPECT_FALSE(A.mayAlias(F.var("Main", "main", "f"),
                          F.var("Main", "main", "s")));
  EXPECT_TRUE(A.mayAlias(F.var("Main", "main", "f"),
                         F.var("Main", "main", "f")));
}

TEST(AliasTest, BudgetExhaustionIsConservativelyTrue) {
  AliasFixture F(kAliasSource);
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = 0; // every query is immediately over budget
  DynSumAnalysis A(*F.Built.Graph, Opts);
  EXPECT_TRUE(A.mayAlias(F.var("Main", "main", "x"),
                         F.var("Main", "main", "z")))
      << "an unanswerable alias query must default to 'may alias'";
}

TEST(AliasTest, OneSidedBudgetExhaustionIsStillConservative) {
  // One query completes, the other blows the budget: even though the
  // completed side's objects are provably disjoint from everything the
  // partial side found, the unanswered side forces "may alias" — in
  // both argument orders.
  AliasFixture F(R"(
    class A {}
    class Main {
      static void main() {
        A a0 = new A();
        A a1 = a0; A a2 = a1; A a3 = a2; A a4 = a3;
        A a5 = a4; A a6 = a5; A a7 = a6; A a8 = a7;
        A deep = a8;
        A cheap = new A();
      }
    }
  )");
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = 4; // enough for cheap's one edge, not the chain
  DynSumAnalysis A(*F.Built.Graph, Opts);
  pag::NodeId Deep = F.var("Main", "main", "deep");
  pag::NodeId Cheap = F.var("Main", "main", "cheap");
  ASSERT_TRUE(A.query(Deep).BudgetExceeded)
      << "test premise: the chain query must exhaust the budget";
  ASSERT_FALSE(A.query(Cheap).BudgetExceeded)
      << "test premise: the single-new query must complete";
  EXPECT_TRUE(A.mayAlias(Deep, Cheap));
  EXPECT_TRUE(A.mayAlias(Cheap, Deep));
}

TEST(AliasTest, AgreesAcrossAnalyses) {
  AliasFixture F(kAliasSource);
  DynSumAnalysis Dyn(*F.Built.Graph, AnalysisOptions());
  RefinePtsAnalysis Refine(*F.Built.Graph, AnalysisOptions());
  const char *Vars[] = {"x", "y", "z", "w"};
  for (const char *A : Vars)
    for (const char *B : Vars) {
      pag::NodeId NA = F.var("Main", "main", A);
      pag::NodeId NB = F.var("Main", "main", B);
      EXPECT_EQ(Dyn.mayAlias(NA, NB), Refine.mayAlias(NA, NB))
          << A << " vs " << B;
    }
}

} // namespace
