//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel-vs-serial Andersen bit-identity oracle.
///
/// The sharded bulk-synchronous solver must reach the exact least
/// fixpoint of the serial worklist at every thread count — not an
/// approximation, not a reordering: for every PAG node the allocation
/// set is element-for-element identical, and for every (object, field)
/// pair the field set is too.  The Dense (seed BitVector) baseline is
/// held to the same standard, which pins the HybridPtsSet migration.
///
/// Runs under TSan in CI, so the three-phase round discipline (frozen
/// deltas, owner-sharded writes, single-writer apply) is also checked
/// for data races, not just for results.
///
//===----------------------------------------------------------------------===//

#include "MiniJavaFuzzer.h"

#include "analysis/Andersen.h"
#include "frontend/Frontend.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

struct Solvers {
  pag::BuiltPAG Built;
  std::vector<std::unique_ptr<AndersenAnalysis>> All;
};

Solvers solveAllVariants(uint64_t Seed) {
  dynsum::testing::MiniJavaFuzzer Fuzzer(Seed);
  std::string Source = Fuzzer.generate();
  frontend::CompileResult Compiled = frontend::compileMiniJava(Source);
  EXPECT_TRUE(Compiled.ok()) << "seed " << Seed;

  Solvers S;
  S.Built = pag::buildPAG(*Compiled.Prog);
  S.All.push_back(std::make_unique<AndersenAnalysis>(*S.Built.Graph));
  S.All.push_back(std::make_unique<AndersenAnalysis>(*S.Built.Graph, 1,
                                                     PtsRep::Dense));
  S.All.push_back(std::make_unique<AndersenAnalysis>(*S.Built.Graph, 2));
  S.All.push_back(std::make_unique<AndersenAnalysis>(*S.Built.Graph, 8));
  for (auto &A : S.All)
    A->solve();
  return S;
}

class AndersenParallelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AndersenParallelTest, BitIdenticalAtEveryThreadCount) {
  Solvers S = solveAllVariants(GetParam());
  const pag::PAG &G = *S.Built.Graph;
  const AndersenAnalysis &Ref = *S.All[0];
  static const char *Names[] = {"serial-hybrid", "serial-dense", "parallel-2",
                                "parallel-8"};

  for (size_t V = 0; V < G.numNodes(); ++V) {
    auto Expect = Ref.allocSites(pag::NodeId(V));
    for (size_t I = 1; I < S.All.size(); ++I)
      ASSERT_EQ(S.All[I]->allocSites(pag::NodeId(V)), Expect)
          << "seed " << GetParam() << " node " << V << " variant "
          << Names[I];
  }

  const ir::Program &P = G.program();
  for (size_t A = 0; A < P.allocs().size(); ++A) {
    for (size_t F = 0; F < P.fields().size(); ++F) {
      auto Expect = Ref.fieldAllocSites(ir::AllocId(A), ir::FieldId(F));
      for (size_t I = 1; I < S.All.size(); ++I)
        ASSERT_EQ(S.All[I]->fieldAllocSites(ir::AllocId(A), ir::FieldId(F)),
                  Expect)
            << "seed " << GetParam() << " obj " << A << " field " << F
            << " variant " << Names[I];
    }
  }
}

TEST_P(AndersenParallelTest, ParallelSolveIsDeterministic) {
  dynsum::testing::MiniJavaFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();
  frontend::CompileResult Compiled = frontend::compileMiniJava(Source);
  ASSERT_TRUE(Compiled.ok());
  pag::BuiltPAG Built = pag::buildPAG(*Compiled.Prog);

  AndersenAnalysis A(*Built.Graph, 8), B(*Built.Graph, 8);
  A.solve();
  B.solve();
  EXPECT_EQ(A.propagationCount(), B.propagationCount());
  for (size_t V = 0; V < Built.Graph->numNodes(); V += 3)
    ASSERT_EQ(A.allocSites(pag::NodeId(V)), B.allocSites(pag::NodeId(V)))
        << "node " << V;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AndersenParallelTest,
                         ::testing::Range(uint64_t(0), uint64_t(24)));

TEST(AndersenParallel, HardwareThreadCountSmoke) {
  dynsum::testing::MiniJavaFuzzer Fuzzer(99);
  frontend::CompileResult Compiled =
      frontend::compileMiniJava(Fuzzer.generate());
  ASSERT_TRUE(Compiled.ok());
  pag::BuiltPAG Built = pag::buildPAG(*Compiled.Prog);
  AndersenAnalysis Serial(*Built.Graph), Hw(*Built.Graph, /*Threads=*/0);
  Serial.solve();
  Hw.solve();
  for (size_t V = 0; V < Built.Graph->numNodes(); ++V)
    ASSERT_EQ(Hw.allocSites(pag::NodeId(V)), Serial.allocSites(pag::NodeId(V)));
}

TEST(AndersenParallel, ThreadedCallGraphRefinementMatchesSerial) {
  dynsum::testing::MiniJavaFuzzer Fuzzer(7);
  frontend::CompileResult Compiled =
      frontend::compileMiniJava(Fuzzer.generate());
  ASSERT_TRUE(Compiled.ok());
  pag::BuiltPAG Serial = buildPAGWithAndersenCallGraph(*Compiled.Prog);
  pag::BuiltPAG Threaded =
      buildPAGWithAndersenCallGraph(*Compiled.Prog, 2, /*Threads=*/4);
  EXPECT_EQ(Serial.Graph->numNodes(), Threaded.Graph->numNodes());
  EXPECT_EQ(Serial.Graph->numEdges(), Threaded.Graph->numEdges());
}

} // namespace
