//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the serve path: the overflow-aware line reader (an overlong
/// line must report ONE error, never execute as two commands), the
/// shared command interpreter (including the fixed "assign" method
/// validation), the shutdown-signal plumbing, and the multi-tenant
/// socket server — greeting/bind protocol, per-tenant isolation (edits
/// in tenant A never change tenant B's answers), the global connection
/// cap's well-formed refusal, and a concurrent multi-client mixed
/// edit/query session (the TSan job runs this test).
///
//===----------------------------------------------------------------------===//

#include "server/Serverd.h"

#include "ir/Parser.h"
#include "server/CommandInterpreter.h"
#include "support/Shutdown.h"
#include "workload/PaperExample.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace dynsum;
using namespace dynsum::server;

namespace {

std::unique_ptr<ir::Program> figure2() {
  ir::ParseResult R = ir::parseProgram(workload::figure2Source());
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.Prog);
}

std::unique_ptr<service::AnalysisService> makeService(unsigned Threads = 1) {
  service::ServiceOptions SO;
  SO.Engine.NumThreads = Threads;
  return std::make_unique<service::AnalysisService>(figure2(), SO);
}

/// Runs one command and returns everything it wrote (out and err share
/// one stream, like a socket session).
std::string run(CommandInterpreter &I, const std::string &Line,
                CommandStatus *Status = nullptr) {
  StringOStream Out;
  CommandStatus St = I.execute(Line, Out, Out);
  if (Status)
    *Status = St;
  return Out.str();
}

/// Writes \p Content to a temp stdio stream and rewinds it, so
/// readCommandLine sees exactly the bytes a REPL's stdin would.
struct TempInput {
  std::FILE *F;
  explicit TempInput(const std::string &Content) : F(std::tmpfile()) {
    EXPECT_NE(F, nullptr);
    std::fwrite(Content.data(), 1, Content.size(), F);
    std::rewind(F);
  }
  ~TempInput() { std::fclose(F); }
};

//===----------------------------------------------------------------------===//
// readCommandLine: the overflow fix
//===----------------------------------------------------------------------===//

TEST(ReadCommandLine, PlainLinesAndEof) {
  TempInput In("first line\nsecond\n\nlast-no-newline");
  std::string Line;
  EXPECT_EQ(readCommandLine(In.F, Line, 4096), LineStatus::Ok);
  EXPECT_EQ(Line, "first line");
  EXPECT_EQ(readCommandLine(In.F, Line, 4096), LineStatus::Ok);
  EXPECT_EQ(Line, "second");
  EXPECT_EQ(readCommandLine(In.F, Line, 4096), LineStatus::Ok);
  EXPECT_EQ(Line, "");
  EXPECT_EQ(readCommandLine(In.F, Line, 4096), LineStatus::Ok);
  EXPECT_EQ(Line, "last-no-newline");
  EXPECT_EQ(readCommandLine(In.F, Line, 4096), LineStatus::Eof);
}

TEST(ReadCommandLine, OverlongLineDrainsWholeAndReportsOnce) {
  // The historical bug: fgets(Line, 4096, stdin) split a >4095-byte
  // line into two commands — the tail executed as a second command.
  // Now the whole line must be consumed as ONE Overflow and the NEXT
  // line must come through intact.
  std::string Long(10000, 'x');
  TempInput In(Long + "\nquery Main.main.s1\n");
  std::string Line;
  EXPECT_EQ(readCommandLine(In.F, Line, kMaxReplLineBytes),
            LineStatus::Overflow);
  EXPECT_EQ(readCommandLine(In.F, Line, kMaxReplLineBytes), LineStatus::Ok);
  EXPECT_EQ(Line, "query Main.main.s1");
  EXPECT_EQ(readCommandLine(In.F, Line, kMaxReplLineBytes), LineStatus::Eof);
}

TEST(ReadCommandLine, OverlongFinalLineWithoutNewline) {
  TempInput In(std::string(8000, 'y'));
  std::string Line;
  EXPECT_EQ(readCommandLine(In.F, Line, kMaxReplLineBytes),
            LineStatus::Overflow);
  EXPECT_EQ(readCommandLine(In.F, Line, kMaxReplLineBytes), LineStatus::Eof);
}

TEST(ReadCommandLine, ExactCapIsNotOverflow) {
  std::string AtCap(kMaxReplLineBytes, 'z');
  TempInput In(AtCap + "\n");
  std::string Line;
  EXPECT_EQ(readCommandLine(In.F, Line, kMaxReplLineBytes), LineStatus::Ok);
  EXPECT_EQ(Line.size(), kMaxReplLineBytes);
}

//===----------------------------------------------------------------------===//
// splitWords / spec resolution
//===----------------------------------------------------------------------===//

TEST(SplitWords, EdgeCases) {
  EXPECT_TRUE(splitWords("").empty());
  EXPECT_TRUE(splitWords("   \t  ").empty());
  std::vector<std::string> W = splitWords("  query\t Main.main.s1  ");
  ASSERT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0], "query");
  EXPECT_EQ(W[1], "Main.main.s1");
}

TEST(SpecResolution, MethodAndVarSpecs) {
  std::unique_ptr<ir::Program> P = figure2();
  EXPECT_NE(resolveMethodSpec(*P, "Main.main"), ir::kNone);
  EXPECT_EQ(resolveMethodSpec(*P, "Main"), ir::kNone) << "a class is not a "
                                                         "method";
  EXPECT_EQ(resolveMethodSpec(*P, "NoSuch.method"), ir::kNone);
  EXPECT_NE(resolveVarSpec(*P, "Main.main.s1"), ir::kNone);
  EXPECT_EQ(resolveVarSpec(*P, "nodots"), ir::kNone);
  EXPECT_EQ(resolveVarSpec(*P, "Main.main.missing"), ir::kNone);
}

//===----------------------------------------------------------------------===//
// CommandInterpreter
//===----------------------------------------------------------------------===//

TEST(CommandInterpreter, GarbageAndEmptyLines) {
  auto S = makeService();
  CommandInterpreter I(*S);
  CommandStatus St;
  EXPECT_EQ(run(I, "", &St), "");
  EXPECT_EQ(St, CommandStatus::Ok);
  std::string Reply = run(I, "frobnicate all the things", &St);
  EXPECT_EQ(St, CommandStatus::Error);
  EXPECT_NE(Reply.find("error: bad command"), std::string::npos);
  run(I, "commit --sideways", &St);
  EXPECT_EQ(St, CommandStatus::Error);
  run(I, "deadline soon", &St);
  EXPECT_EQ(St, CommandStatus::Error);
  run(I, "quit", &St);
  EXPECT_EQ(St, CommandStatus::Quit);
}

TEST(CommandInterpreter, AssignValidatesMethodSpec) {
  // The fixed bug: "assign Main main.x main.y" resolves both variables
  // through the composed specs "Main.main.x"/"Main.main.y", but "Main"
  // alone is a class — the unchecked ir::kNone used to flow straight
  // into addStatement.
  auto S = makeService();
  // Create x and y so the variable lookups genuinely succeed.
  CommandInterpreter I(*S);
  run(I, "alloc Main.main x Integer");
  run(I, "alloc Main.main y Integer");
  CommandStatus St;
  std::string Reply = run(I, "assign Main main.x main.y", &St);
  EXPECT_EQ(St, CommandStatus::Error);
  EXPECT_NE(Reply.find("error: unknown method 'Main'"), std::string::npos)
      << Reply;
  // The valid spelling still buffers.
  Reply = run(I, "assign Main.main x y", &St);
  EXPECT_EQ(St, CommandStatus::Ok);
  EXPECT_NE(Reply.find("buffered: x = y"), std::string::npos) << Reply;
}

TEST(CommandInterpreter, EditCommitQueryRoundTrip) {
  auto S = makeService();
  CommandInterpreter I(*S);
  std::string Reply = run(I, "query Main.main.s1");
  EXPECT_NE(Reply.find("pts(Main.main.s1) = {o26:Integer}"),
            std::string::npos)
      << Reply;
  CommandStatus St;
  run(I, "alloc Main.main s1 String", &St);
  EXPECT_EQ(St, CommandStatus::Ok);
  run(I, "commit", &St);
  EXPECT_EQ(St, CommandStatus::Ok);
  Reply = run(I, "query Main.main.s1");
  EXPECT_NE(Reply.find("s1@serve:String"), std::string::npos) << Reply;
  Reply = run(I, "stats");
  EXPECT_NE(Reply.find("generation 1"), std::string::npos) << Reply;
}

//===----------------------------------------------------------------------===//
// Shutdown plumbing
//===----------------------------------------------------------------------===//

TEST(Shutdown, SignalSetsFlagAndWakesPipe) {
  ASSERT_TRUE(support::installShutdownHandlers());
  support::resetShutdownRequest();
  EXPECT_FALSE(support::shutdownRequested());
  std::raise(SIGTERM); // handled: must NOT kill the test binary
  EXPECT_TRUE(support::shutdownRequested());
  EXPECT_EQ(support::shutdownSignal(), SIGTERM);
  pollfd Fd = {support::shutdownWakeFd(), POLLIN, 0};
  EXPECT_EQ(::poll(&Fd, 1, 1000), 1);
  support::resetShutdownRequest();
  EXPECT_FALSE(support::shutdownRequested());
}

//===----------------------------------------------------------------------===//
// The socket server
//===----------------------------------------------------------------------===//

/// A blocking line-protocol client: connect, then request() sends one
/// line and reads the reply block up to its lone-"." terminator.
class TestClient {
public:
  explicit TestClient(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    Connected =
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0;
  }
  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool connected() const { return Connected; }

  /// Reads one reply block (everything up to the "." line).
  std::string readBlock() {
    std::string Block;
    std::string Line;
    while (readLine(Line)) {
      if (Line == ".")
        return Block;
      Block += Line;
      Block += '\n';
    }
    return Block; // hangup mid-block
  }

  std::string request(const std::string &Line) {
    std::string Wire = Line + "\n";
    EXPECT_TRUE(sendAll(Wire));
    return readBlock();
  }

  bool sendAll(const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t W =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += size_t(W);
    }
    return true;
  }

private:
  bool readLine(std::string &Line) {
    Line.clear();
    for (;;) {
      if (Pos < Buf.size()) {
        size_t Nl = Buf.find('\n', Pos);
        if (Nl != std::string::npos) {
          Line = Buf.substr(Pos, Nl - Pos);
          Pos = Nl + 1;
          return true;
        }
      }
      Buf.erase(0, Pos);
      Pos = 0;
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return false;
      Buf.append(Chunk, size_t(N));
    }
  }

  int Fd = -1;
  bool Connected = false;
  std::string Buf;
  size_t Pos = 0;
};

/// A started two-tenant server on an ephemeral port.
struct ServerFixture {
  AnalysisServer Server;
  explicit ServerFixture(ServerOptions O = ServerOptions()) : Server([&O] {
    O.QueryThreads = 1;
    return O;
  }()) {
    EXPECT_TRUE(Server.addTenant("alpha", figure2()));
    EXPECT_TRUE(Server.addTenant("beta", figure2()));
    std::string Error;
    EXPECT_TRUE(Server.start(Error)) << Error;
  }
};

TEST(AnalysisServer, GreetingBindAndServerVerbs) {
  ServerFixture F;
  TestClient C(F.Server.port());
  ASSERT_TRUE(C.connected());
  EXPECT_NE(C.readBlock().find("dynsum_serverd: 2 tenants"),
            std::string::npos);
  EXPECT_NE(C.request("query Main.main.s1").find("error: no tenant bound"),
            std::string::npos);
  EXPECT_NE(C.request("tenant nosuch").find("error: no tenant"),
            std::string::npos);
  std::string Tenants = C.request("tenants");
  EXPECT_NE(Tenants.find("alpha"), std::string::npos);
  EXPECT_NE(Tenants.find("beta"), std::string::npos);
  EXPECT_NE(C.request("tenant alpha").find("tenant alpha bound"),
            std::string::npos);
  EXPECT_NE(C.request("query Main.main.s1").find("{o26:Integer}"),
            std::string::npos);
  EXPECT_NE(C.request("help").find("commands:"), std::string::npos);
  // Empty request line: still exactly one (empty) reply block.
  EXPECT_EQ(C.request(""), "");
  EXPECT_NE(C.request("quit").find("bye"), std::string::npos);
}

TEST(AnalysisServer, OverlongProtocolLineIsOneError) {
  ServerFixture F;
  TestClient C(F.Server.port());
  ASSERT_TRUE(C.connected());
  C.readBlock();
  C.request("tenant alpha");
  std::string Long = "query " + std::string(10000, 'x');
  EXPECT_NE(C.request(Long).find("error: line exceeds"), std::string::npos);
  // The session survives and the next command parses cleanly.
  EXPECT_NE(C.request("query Main.main.s1").find("{o26:Integer}"),
            std::string::npos);
}

TEST(AnalysisServer, TenantIsolation) {
  ServerFixture F;
  TestClient A(F.Server.port()), B(F.Server.port());
  ASSERT_TRUE(A.connected() && B.connected());
  A.readBlock();
  B.readBlock();
  A.request("tenant alpha");
  B.request("tenant beta");
  // Mutate alpha: new alloc site flows into its answer...
  A.request("alloc Main.main s1 String");
  EXPECT_NE(A.request("commit").find("generation 1"), std::string::npos);
  EXPECT_NE(A.request("query Main.main.s1").find("s1@serve:String"),
            std::string::npos);
  // ...and beta's program, generation and answer are untouched.
  std::string BReply = B.request("query Main.main.s1");
  EXPECT_NE(BReply.find("pts(Main.main.s1) = {o26:Integer}"),
            std::string::npos)
      << BReply;
  EXPECT_EQ(BReply.find("s1@serve"), std::string::npos) << BReply;
  EXPECT_NE(B.request("stats").find("generation 0"), std::string::npos);
}

TEST(AnalysisServer, ConnectionCapShedsWellFormed) {
  ServerOptions O;
  O.MaxConnections = 1;
  ServerFixture F(O);
  TestClient First(F.Server.port());
  ASSERT_TRUE(First.connected());
  First.readBlock(); // occupy the only slot
  // Everything past the cap gets the refusal block, then a close —
  // never a hang, never garbage.
  for (int I = 0; I < 3; ++I) {
    TestClient Shed(F.Server.port());
    ASSERT_TRUE(Shed.connected());
    EXPECT_NE(Shed.readBlock().find("error: server overloaded"),
              std::string::npos);
  }
  EXPECT_GE(F.Server.shedConnections(), 3u);
  // The admitted session still works.
  First.request("tenant alpha");
  EXPECT_NE(First.request("query Main.main.s1").find("{o26:Integer}"),
            std::string::npos);
}

TEST(AnalysisServer, ConcurrentMultiClientMixedTraffic) {
  // 4 clients × 2 tenants of interleaved edit/query/commit traffic.
  // Every reply must be well-formed (this test runs under TSan in CI,
  // so it is also the data-race gate for the server).
  ServerOptions O;
  O.CommitThreads = 2;
  ServerFixture F(O);
  std::atomic<int> Failures{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < 4; ++T) {
    Clients.emplace_back([&F, &Failures, T] {
      TestClient C(F.Server.port());
      if (!C.connected()) {
        ++Failures;
        return;
      }
      C.readBlock();
      const char *Tenant = (T % 2 == 0) ? "alpha" : "beta";
      if (C.request(std::string("tenant ") + Tenant).find("bound") ==
          std::string::npos) {
        ++Failures;
        return;
      }
      for (int I = 0; I < 12; ++I) {
        std::string Reply;
        switch (I % 4) {
        case 0:
          Reply = C.request("query Main.main.s1 Main.main.s2");
          if (Reply.find("pts(") == std::string::npos &&
              Reply.find("(overloaded)") == std::string::npos)
            ++Failures;
          break;
        case 1:
          Reply = C.request("alloc Main.main v" + std::to_string(T) +
                            " Integer");
          if (Reply.find("buffered:") == std::string::npos)
            ++Failures;
          break;
        case 2:
          Reply = C.request("commit --async");
          if (Reply.find("queued async commit") == std::string::npos)
            ++Failures;
          break;
        default:
          Reply = C.request("stats");
          if (Reply.find("generation") == std::string::npos)
            ++Failures;
          break;
        }
      }
      C.request("quit");
    });
  }
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  F.Server.stop(); // drain with traffic done: joins cleanly
}

TEST(AnalysisServer, StopUnblocksLiveSessions) {
  auto F = std::make_unique<ServerFixture>();
  TestClient C(F->Server.port());
  ASSERT_TRUE(C.connected());
  C.readBlock();
  C.request("tenant alpha");
  // Stop with the session parked in recv: drain must shut it down and
  // join without hanging.
  std::thread Stopper([&F] { F->Server.stop(); });
  EXPECT_EQ(C.readBlock(), ""); // hangup surfaces as an empty block
  Stopper.join();
}

} // namespace
