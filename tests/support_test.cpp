//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support library.
///
//===----------------------------------------------------------------------===//

#include "support/Allocator.h"
#include "support/BitVector.h"
#include "support/CommandLine.h"
#include "support/FlatSet.h"
#include "support/Hashing.h"
#include "support/InternedStack.h"
#include "support/OStream.h"
#include "support/Parallel.h"
#include "support/PrettyTable.h"
#include "support/Random.h"
#include "support/SmallVector.h"
#include "support/Statistics.h"
#include "support/StringInterner.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>

using namespace dynsum;

//===----------------------------------------------------------------------===//
// BumpPtrAllocator
//===----------------------------------------------------------------------===//

TEST(AllocatorTest, ReturnsAlignedChunks) {
  BumpPtrAllocator A(/*SlabSize=*/128);
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u) << Align;
  }
}

TEST(AllocatorTest, GrowsBeyondOneSlab) {
  BumpPtrAllocator A(/*SlabSize=*/64);
  for (int I = 0; I < 100; ++I)
    ASSERT_NE(A.allocate(32, 8), nullptr);
  EXPECT_GT(A.numSlabs(), 1u);
}

TEST(AllocatorTest, OversizedRequestGetsOwnSlab) {
  BumpPtrAllocator A(/*SlabSize=*/64);
  void *Big = A.allocate(1024, 8);
  ASSERT_NE(Big, nullptr);
  EXPECT_GE(A.bytesAllocated(), 1024u);
}

TEST(AllocatorTest, DistinctAllocationsDontOverlap) {
  BumpPtrAllocator A;
  char *P1 = A.allocateArray<char>(16);
  char *P2 = A.allocateArray<char>(16);
  EXPECT_TRUE(P2 >= P1 + 16 || P1 >= P2 + 16);
}

TEST(AllocatorTest, ResetDropsEverything) {
  BumpPtrAllocator A;
  (void)A.allocate(100, 8);
  A.reset();
  EXPECT_EQ(A.numSlabs(), 0u);
  EXPECT_EQ(A.bytesAllocated(), 0u);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInternerTest, EmptyStringIsSymbolZero) {
  StringInterner SI;
  EXPECT_EQ(SI.intern("").Id, 0u);
  EXPECT_TRUE(SI.intern("").empty());
}

TEST(StringInternerTest, InternIsIdempotent) {
  StringInterner SI;
  Symbol A = SI.intern("hello");
  Symbol B = SI.intern("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(SI.text(A), "hello");
}

TEST(StringInternerTest, DistinctStringsGetDistinctSymbols) {
  StringInterner SI;
  EXPECT_NE(SI.intern("a"), SI.intern("b"));
  EXPECT_EQ(SI.size(), 3u); // "", "a", "b"
}

TEST(StringInternerTest, LookupDoesNotCreate) {
  StringInterner SI;
  EXPECT_TRUE(SI.lookup("missing").empty());
  EXPECT_EQ(SI.size(), 1u);
  SI.intern("present");
  EXPECT_FALSE(SI.lookup("present").empty());
}

TEST(StringInternerTest, TextSurvivesRehash) {
  StringInterner SI;
  Symbol First = SI.intern("first");
  for (int I = 0; I < 1000; ++I)
    SI.intern("k" + std::to_string(I));
  EXPECT_EQ(SI.text(First), "first");
}

//===----------------------------------------------------------------------===//
// StackPool
//===----------------------------------------------------------------------===//

TEST(StackPoolTest, EmptyStackProperties) {
  StackPool P;
  EXPECT_TRUE(StackPool::empty().isEmpty());
  EXPECT_EQ(P.depth(StackPool::empty()), 0u);
}

TEST(StackPoolTest, PushPopPeekRoundTrip) {
  StackPool P;
  StackId S = P.push(StackPool::empty(), 42);
  EXPECT_FALSE(S.isEmpty());
  EXPECT_EQ(P.peek(S), 42u);
  EXPECT_EQ(P.depth(S), 1u);
  EXPECT_TRUE(P.pop(S).isEmpty());
}

TEST(StackPoolTest, HashConsingGivesIdenticalIds) {
  StackPool P;
  StackId A = P.push(P.push(StackPool::empty(), 1), 2);
  StackId B = P.push(P.push(StackPool::empty(), 1), 2);
  EXPECT_EQ(A, B);
  StackId C = P.push(P.push(StackPool::empty(), 2), 1);
  EXPECT_NE(A, C);
}

TEST(StackPoolTest, ElementsBottomToTop) {
  StackPool P;
  StackId S = P.make({10, 20, 30});
  EXPECT_EQ(P.elements(S), (std::vector<uint32_t>{10, 20, 30}));
  EXPECT_EQ(P.peek(S), 30u);
}

TEST(StackPoolTest, SharedTailsAreShared) {
  StackPool P;
  StackId Tail = P.make({1, 2, 3});
  size_t Before = P.size();
  StackId A = P.push(Tail, 4);
  StackId B = P.push(Tail, 5);
  EXPECT_EQ(P.size(), Before + 2); // only two new nodes
  EXPECT_EQ(P.pop(A), Tail);
  EXPECT_EQ(P.pop(B), Tail);
}

//===----------------------------------------------------------------------===//
// BitVector
//===----------------------------------------------------------------------===//

TEST(BitVectorTest, SetTestReset) {
  BitVector BV(130);
  EXPECT_FALSE(BV.test(129));
  EXPECT_TRUE(BV.set(129));
  EXPECT_FALSE(BV.set(129)); // second set reports no change
  EXPECT_TRUE(BV.test(129));
  BV.reset(129);
  EXPECT_FALSE(BV.test(129));
}

TEST(BitVectorTest, CountAcrossWords) {
  BitVector BV(200);
  for (size_t I = 0; I < 200; I += 7)
    BV.set(I);
  EXPECT_EQ(BV.count(), (200 + 6) / 7);
}

TEST(BitVectorTest, OrInPlaceReportsChange) {
  BitVector A(64), B(64);
  B.set(3);
  EXPECT_TRUE(A.orInPlace(B));
  EXPECT_FALSE(A.orInPlace(B)); // already subsumed
  EXPECT_TRUE(A.test(3));
}

TEST(BitVectorTest, ClearKeepsSize) {
  BitVector BV(77);
  BV.set(76);
  BV.clear();
  EXPECT_EQ(BV.size(), 77u);
  EXPECT_EQ(BV.count(), 0u);
}

//===----------------------------------------------------------------------===//
// HybridPtsSet
//===----------------------------------------------------------------------===//

namespace {
std::vector<uint32_t> elementsOf(const HybridPtsSet &S) {
  std::vector<uint32_t> Out;
  S.forEach([&](uint32_t E) { Out.push_back(E); });
  return Out;
}
} // namespace

TEST(HybridPtsSetTest, InlineToSparseToDenseTransitions) {
  HybridPtsSet S(1024); // dense threshold at 1024/8 = 128 elements
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Inline);
  for (uint32_t I = 0; I < 8; ++I)
    EXPECT_TRUE(S.set(I * 5));
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Inline);
  EXPECT_TRUE(S.set(999));
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Sparse);
  for (uint32_t I = 0; I < 200; ++I)
    S.set(I * 3);
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Dense);
  // All elements survive both promotions.
  for (uint32_t I = 0; I < 8; ++I)
    EXPECT_TRUE(S.test(I * 5));
  EXPECT_TRUE(S.test(999));
  EXPECT_TRUE(S.test(3 * 199));
}

TEST(HybridPtsSetTest, SmallUniverseSkipsSparse) {
  HybridPtsSet S(40); // 9 elements * 8 >= 40: inline promotes straight to dense
  for (uint32_t I = 0; I < 9; ++I)
    S.set(I);
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Dense);
  EXPECT_EQ(S.count(), 9u);
}

TEST(HybridPtsSetTest, SetReportsNewlyInsertedAcrossReps) {
  HybridPtsSet S(4096);
  for (uint32_t I = 0; I < 600; ++I) {
    EXPECT_TRUE(S.set(I * 2));
    EXPECT_FALSE(S.set(I * 2));
  }
  EXPECT_EQ(S.count(), 600u);
}

TEST(HybridPtsSetTest, ForEachAscendingInEveryRep) {
  for (size_t Fill : {5u, 40u, 900u}) {
    HybridPtsSet S(2048);
    std::vector<uint32_t> Expect;
    // Insert in a scrambled order.
    for (size_t I = 0; I < Fill; ++I) {
      uint32_t E = uint32_t((I * 797) % 2048);
      if (S.set(E))
        Expect.push_back(E);
    }
    std::sort(Expect.begin(), Expect.end());
    EXPECT_EQ(elementsOf(S), Expect);
  }
}

TEST(HybridPtsSetTest, RandomizedEquivalenceWithBitVector) {
  Rng R(7);
  for (int Round = 0; Round < 20; ++Round) {
    const size_t Universe = 64 + R.next() % 1500;
    HybridPtsSet A(Universe), B(Universe);
    BitVector RefA(Universe), RefB(Universe);
    const size_t Ops = R.next() % 400;
    for (size_t I = 0; I < Ops; ++I) {
      size_t E = R.next() % Universe;
      if (R.next() % 2) {
        EXPECT_EQ(A.set(E), RefA.set(E));
      } else {
        EXPECT_EQ(B.set(E), RefB.set(E));
      }
    }
    EXPECT_EQ(A.orInPlace(B), RefA.orInPlace(RefB));
    EXPECT_EQ(A.count(), RefA.count());
    for (uint32_t E : elementsOf(A))
      EXPECT_TRUE(RefA.test(E));
    EXPECT_FALSE(A.orInPlace(B)); // already subsumed, like BitVector
  }
}

TEST(HybridPtsSetTest, OrInPlaceReportsNewElements) {
  HybridPtsSet A(512), B(512);
  A.set(1);
  A.set(100);
  for (uint32_t I = 0; I < 200; ++I)
    B.set(I * 2);
  std::vector<uint32_t> New;
  EXPECT_TRUE(A.orInPlace(B, [&](uint32_t E) { New.push_back(E); }));
  std::sort(New.begin(), New.end());
  // Everything in B except 100 (already present); 1 is odd, never in B.
  EXPECT_EQ(New.size(), 199u);
  EXPECT_FALSE(std::binary_search(New.begin(), New.end(), 100u));
  EXPECT_EQ(A.count(), 201u);
}

TEST(HybridPtsSetTest, ClearResetsToInlineKeepingUniverse) {
  HybridPtsSet S(256);
  for (uint32_t I = 0; I < 100; ++I)
    S.set(I);
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Dense);
  S.clear();
  EXPECT_EQ(S.size(), 256u);
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.rep(), HybridPtsSet::Rep::Inline);
  EXPECT_TRUE(S.set(7));
  EXPECT_TRUE(S.test(7));
}

//===----------------------------------------------------------------------===//
// Rng / ZipfSampler
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(RngTest, NextBoolExtremes) {
  Rng R(7);
  EXPECT_FALSE(R.nextBool(0.0));
  EXPECT_TRUE(R.nextBool(1.0));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(99);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(ZipfTest, SkewsTowardsSmallIndices) {
  Rng R(5);
  ZipfSampler Z(100, 1.0);
  size_t CountFirstTen = 0;
  constexpr size_t kDraws = 10000;
  for (size_t I = 0; I < kDraws; ++I)
    if (Z.sample(R) < 10)
      ++CountFirstTen;
  // Under Zipf(1.0) the first decile carries roughly half the mass; a
  // uniform sampler would give ~10%.
  EXPECT_GT(CountFirstTen, kDraws / 3);
}

TEST(ZipfTest, AllIndicesReachable) {
  Rng R(6);
  ZipfSampler Z(4, 0.5);
  std::set<size_t> Seen;
  for (int I = 0; I < 2000; ++I)
    Seen.insert(Z.sample(R));
  EXPECT_EQ(Seen.size(), 4u);
}

//===----------------------------------------------------------------------===//
// OStream / PrettyTable / Statistics / CommandLine / Hashing
//===----------------------------------------------------------------------===//

TEST(OStreamTest, FormatsNumbers) {
  StringOStream OS;
  OS << uint64_t(42) << ' ' << int64_t(-7) << ' ';
  OS.writeFixed(3.14159, 2);
  EXPECT_EQ(OS.str(), "42 -7 3.14");
}

TEST(OStreamTest, PaddingAndRepetition) {
  StringOStream OS;
  OS.writePadded("ab", 5, /*LeftAlign=*/true);
  OS << '|';
  OS.writePadded("ab", 5, /*LeftAlign=*/false);
  OS << '|';
  OS.writeRepeated('-', 3);
  EXPECT_EQ(OS.str(), "ab   |   ab|---");
}

TEST(PrettyTableTest, AlignsColumns) {
  PrettyTable T;
  T.row().cell("name").cell("v");
  T.row().cell("x").cell(uint64_t(1000));
  StringOStream OS;
  T.print(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("name"), std::string::npos);
  EXPECT_NE(Text.find("1000"), std::string::npos);
  EXPECT_NE(Text.find("----"), std::string::npos);
}

TEST(StatisticsTest, AddAndQuery) {
  Statistics S;
  S.add("queries");
  S.add("queries", 4);
  EXPECT_EQ(S.get("queries"), 5u);
  EXPECT_EQ(S.get("absent"), 0u);
  S.clear();
  EXPECT_EQ(S.get("queries"), 0u);
}

TEST(CommandLineTest, ParsesFlagsAndPositionals) {
  const char *Argv[] = {"prog", "--scale=0.5", "--verbose", "input.ir",
                        "--n=42"};
  CommandLine CL(5, Argv);
  EXPECT_DOUBLE_EQ(CL.getDouble("scale", 1.0), 0.5);
  EXPECT_TRUE(CL.has("verbose"));
  EXPECT_EQ(CL.getInt("n", 0), 42);
  EXPECT_EQ(CL.getInt("missing", 9), 9);
  ASSERT_EQ(CL.positional().size(), 1u);
  EXPECT_EQ(CL.positional()[0], "input.ir");
}

TEST(CommandLineTest, RepeatedFlagsKeepEveryValueInOrder) {
  const char *Argv[] = {"prog", "--query=a.b.c", "--other=1", "--query=d.e.f"};
  CommandLine CL(4, Argv);
  EXPECT_EQ(CL.getAll("query"),
            (std::vector<std::string>{"a.b.c", "d.e.f"}));
  EXPECT_TRUE(CL.getAll("missing").empty());
  // The map accessor still answers with the first occurrence.
  EXPECT_EQ(CL.getString("query", ""), "a.b.c");
}

TEST(HashingTest, PackPairIsInjectiveOnHalves) {
  EXPECT_NE(packPair(1, 2), packPair(2, 1));
  EXPECT_EQ(packPair(7, 9) >> 32, 7u);
  EXPECT_EQ(packPair(7, 9) & 0xffffffffu, 9u);
}

TEST(TimerTest, MeasuresForwardTime) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  EXPECT_GE(A, 0.0);
}

//===----------------------------------------------------------------------===//
// FlatU64Set
//===----------------------------------------------------------------------===//

TEST(FlatSetTest, InsertContainsAndDuplicates) {
  FlatU64Set S;
  EXPECT_TRUE(S.insert(42));
  EXPECT_FALSE(S.insert(42));
  EXPECT_TRUE(S.contains(42));
  EXPECT_FALSE(S.contains(43));
  EXPECT_EQ(S.size(), 1u);
}

TEST(FlatSetTest, ZeroIsAnOrdinaryKey) {
  // packSummaryKey(0, empty, S1) == 0, so key 0 must be storable.
  FlatU64Set S;
  EXPECT_FALSE(S.contains(0));
  EXPECT_TRUE(S.insert(0));
  EXPECT_TRUE(S.contains(0));
  EXPECT_FALSE(S.insert(0));
}

TEST(FlatSetTest, EpochClearForgetsEverythingKeepsCapacity) {
  FlatU64Set S;
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_TRUE(S.insert(I * 977));
  size_t CapBefore = S.capacity();
  S.clear();
  EXPECT_EQ(S.size(), 0u);
  EXPECT_EQ(S.capacity(), CapBefore);
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_FALSE(S.contains(I * 977));
  // Reinsertion after clear behaves like a fresh set.
  EXPECT_TRUE(S.insert(977));
  EXPECT_TRUE(S.contains(977));
}

TEST(FlatSetTest, GrowthPreservesMembership) {
  FlatU64Set S;
  std::set<uint64_t> Reference;
  Rng R(7);
  for (int I = 0; I < 5000; ++I) {
    uint64_t K = (uint64_t(R.next()) << 32) | R.next();
    EXPECT_EQ(S.insert(K), Reference.insert(K).second);
  }
  EXPECT_EQ(S.size(), Reference.size());
  for (uint64_t K : Reference)
    EXPECT_TRUE(S.contains(K));
  size_t Count = 0;
  S.forEach([&](uint64_t K) {
    EXPECT_EQ(Reference.count(K), 1u);
    ++Count;
  });
  EXPECT_EQ(Count, Reference.size());
}

TEST(FlatSetTest, ManyEpochsStayIndependent) {
  FlatU64Set S;
  for (uint64_t Epoch = 0; Epoch < 300; ++Epoch) {
    EXPECT_TRUE(S.insert(Epoch));
    EXPECT_TRUE(S.insert(1ull << 40));
    EXPECT_EQ(S.size(), 2u);
    S.clear();
    EXPECT_TRUE(S.empty());
  }
}

//===----------------------------------------------------------------------===//
// SmallVector
//===----------------------------------------------------------------------===//

TEST(SmallVectorTest, StaysInlineUpToN) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u); // no heap growth yet
  V.push_back(4);
  EXPECT_GT(V.capacity(), 4u);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(V[size_t(I)], I);
}

TEST(SmallVectorTest, CopyAndMoveAcrossInlineAndHeap) {
  for (size_t Len : {2u, 16u}) {
    SmallVector<std::string, 4> V;
    for (size_t I = 0; I < Len; ++I)
      V.push_back("s" + std::to_string(I));

    SmallVector<std::string, 4> Copy(V);
    EXPECT_TRUE(Copy == V);

    SmallVector<std::string, 4> Moved(std::move(Copy));
    EXPECT_TRUE(Moved == V);
    EXPECT_EQ(Copy.size(), 0u); // moved-from is empty and reusable
    Copy.push_back("again");
    EXPECT_EQ(Copy.size(), 1u);

    SmallVector<std::string, 4> Assigned;
    Assigned.push_back("overwritten");
    Assigned = V;
    EXPECT_TRUE(Assigned == V);
    SmallVector<std::string, 4> MoveAssigned;
    MoveAssigned = std::move(Assigned);
    EXPECT_TRUE(MoveAssigned == V);
  }
}

TEST(SmallVectorTest, ResizeGrowsAndShrinks) {
  SmallVector<uint32_t, 4> V;
  V.resize(10);
  EXPECT_EQ(V.size(), 10u);
  for (uint32_t X : V)
    EXPECT_EQ(X, 0u);
  V[9] = 99;
  V.resize(3);
  EXPECT_EQ(V.size(), 3u);
  V.resize(6);
  EXPECT_EQ(V[5], 0u);
}

TEST(SmallVectorTest, ShrinkToFitReleasesSlackAndReturnsInline) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(I);
  while (V.size() > 2)
    V.pop_back();
  V.shrinkToFit();
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.capacity(), 4u); // two elements fit inline again
  EXPECT_EQ(V[0], 0);
  EXPECT_EQ(V[1], 1);

  // Heap case: shrink to the exact heap size.
  SmallVector<int, 4> W;
  for (int I = 0; I < 9; ++I)
    W.push_back(I);
  W.shrinkToFit();
  EXPECT_EQ(W.capacity(), 9u);
  for (int I = 0; I < 9; ++I)
    EXPECT_EQ(W[size_t(I)], I);
}

TEST(SmallVectorTest, PushBackOfOwnElementSurvivesGrowth) {
  SmallVector<std::string, 4> V;
  for (int I = 0; I < 4; ++I)
    V.push_back("elem" + std::to_string(I));
  V.push_back(V[0]); // triggers growth: the source must be secured first
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V.back(), "elem0");
  EXPECT_EQ(V[0], "elem0");
}

//===----------------------------------------------------------------------===//
// Parallel (the commit pipeline's fork-join helpers)
//===----------------------------------------------------------------------===//

TEST(ParallelTest, ClampThreadsResolvesZeroAndCapsWraparounds) {
  EXPECT_GE(clampThreads(0), 1u); // 0 = hardware concurrency, at least 1
  EXPECT_EQ(clampThreads(1), 1u);
  EXPECT_EQ(clampThreads(8), 8u);
  // A negative request arrives as a huge unsigned and must be capped.
  EXPECT_EQ(clampThreads(unsigned(-1)), 256u);
}

TEST(ParallelTest, ChunksCoverTheRangeExactlyOnce) {
  for (size_t N : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    for (unsigned Threads : {1u, 2u, 3u, 8u, 64u}) {
      std::vector<std::atomic<unsigned>> Seen(N);
      for (auto &S : Seen)
        S.store(0);
      parallelChunks(N, Threads, [&](size_t Begin, size_t End, unsigned) {
        EXPECT_LE(Begin, End);
        EXPECT_LE(End, N);
        for (size_t I = Begin; I < End; ++I)
          Seen[I].fetch_add(1);
      });
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(Seen[I].load(), 1u)
            << "index " << I << " at N=" << N << " threads=" << Threads;
    }
  }
}

TEST(ParallelTest, ChunkBoundariesAreSchedulingIndependent) {
  // Determinism contract: the (Begin, End) set depends only on
  // (N, Threads) — collect it twice and compare.
  auto Boundaries = [](size_t N, unsigned Threads) {
    std::mutex M;
    std::set<std::pair<size_t, size_t>> Out;
    parallelChunks(N, Threads, [&](size_t Begin, size_t End, unsigned) {
      std::lock_guard<std::mutex> Lock(M);
      Out.emplace(Begin, End);
    });
    return Out;
  };
  for (size_t N : {5u, 100u})
    for (unsigned Threads : {2u, 8u})
      EXPECT_EQ(Boundaries(N, Threads), Boundaries(N, Threads));
}

TEST(ParallelTest, JobsEachRunExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    constexpr size_t kJobs = 23;
    std::vector<std::atomic<unsigned>> Ran(kJobs);
    for (auto &R : Ran)
      R.store(0);
    parallelJobs(kJobs, Threads, [&](size_t I) { Ran[I].fetch_add(1); });
    for (size_t I = 0; I < kJobs; ++I)
      EXPECT_EQ(Ran[I].load(), 1u) << "job " << I;
  }
}
