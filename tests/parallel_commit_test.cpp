//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzz oracle for the parallel commit pipeline.
///
/// Two layers, both driven by MiniJavaFuzzer programs and the shared
/// IrEditFuzzer across >= 6 edit/commit rounds, at 1/2/8 commit
/// threads:
///
///   * Graph level: a delta graph evolved with sharded buildPAGDelta
///     must stay ISOMORPHIC to a serial scratch build after every round
///     (node flags, canonical live edge multiset, CSR invariants,
///     DYNSUM answers) — and beyond isomorphism, BIT-IDENTICAL to a
///     serially evolved twin (same edge slot ids, same per-segment slot
///     lists, same CSR span order), because every id-assigning phase of
///     the pipeline is single-writer by design.
///
///   * Service level: a service committing through background
///     submitCommit() tickets (the background committer) must converge
///     to the same answers as a foreground-commit twin and as a cold
///     scratch build after every round, at every commit thread count.
///
/// The TSan CI job runs this test alongside the service/engine suites;
/// the ASan job runs it with the full ctest batch.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "frontend/Frontend.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"
#include "service/AnalysisService.h"

#include "IrEditFuzzer.h"
#include "MiniJavaFuzzer.h"

#include <gtest/gtest.h>

using namespace dynsum;
using analysis::AnalysisOptions;
using analysis::QueryResult;
using dynsum::testing::checkCsrInvariants;
using dynsum::testing::checkIsomorphic;
using dynsum::testing::IrEditFuzzer;
using dynsum::testing::sampleVars;
using service::AnalysisService;
using service::CommitMode;
using service::ServiceOptions;

namespace {

constexpr unsigned kRounds = 6;
constexpr unsigned kEditsPerRound = 12;
constexpr unsigned kThreadCounts[] = {1, 2, 8};

/// Compiles the fuzz program of \p Seed (deterministic).
std::unique_ptr<ir::Program> fuzzProgram(uint64_t Seed) {
  dynsum::testing::MiniJavaFuzzer Fuzz(Seed);
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return std::move(R.Prog);
}

/// Asserts \p A and \p B are the same graph bit for bit: same slots,
/// same payloads, same per-method segments, same CSR span ORDER (not
/// just multiset) — the single-writer phases make the sharded build
/// reproduce the serial layout exactly.
void checkBitIdentical(const pag::PAG &A, const pag::PAG &B) {
  ASSERT_EQ(A.numNodes(), B.numNodes());
  ASSERT_EQ(A.numEdgeSlots(), B.numEdgeSlots());
  ASSERT_EQ(A.numEdges(), B.numEdges());
  for (pag::EdgeId E = 0; E < A.numEdgeSlots(); ++E) {
    ASSERT_EQ(A.edgeAlive(E), B.edgeAlive(E)) << "slot " << E;
    if (!A.edgeAlive(E))
      continue;
    const pag::Edge &EA = A.edge(E);
    const pag::Edge &EB = B.edge(E);
    ASSERT_EQ(EA.Src, EB.Src) << "slot " << E;
    ASSERT_EQ(EA.Dst, EB.Dst) << "slot " << E;
    ASSERT_EQ(EA.Kind, EB.Kind) << "slot " << E;
    ASSERT_EQ(EA.Aux, EB.Aux) << "slot " << E;
    ASSERT_EQ(EA.ContextFree, EB.ContextFree) << "slot " << E;
  }
  for (const ir::Method &M : A.program().methods())
    ASSERT_EQ(A.segmentEdges(M.Id), B.segmentEdges(M.Id))
        << "segment of " << A.program().describeMethod(M.Id);
  for (pag::NodeId N = 0; N < A.numNodes(); ++N) {
    for (unsigned K = 0; K < pag::kNumEdgeKinds; ++K) {
      pag::EdgeSpan SA = A.inEdgesOfKind(N, pag::EdgeKind(K));
      pag::EdgeSpan SB = B.inEdgesOfKind(N, pag::EdgeKind(K));
      ASSERT_EQ(SA.size(), SB.size()) << "node " << N << " kind " << K;
      for (size_t I = 0; I < SA.size(); ++I)
        ASSERT_EQ(SA[I], SB[I]) << "node " << N << " kind " << K;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Graph level: sharded delta builds vs serial scratch + serial twin
//===----------------------------------------------------------------------===//

class ParallelCommitFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelCommitFuzzTest, ShardedDeltaIsIsomorphicToSerialScratch) {
  for (unsigned Threads : kThreadCounts) {
    auto Prog = fuzzProgram(GetParam());
    ASSERT_TRUE(Prog);
    ir::Program &P = *Prog;
    ASSERT_TRUE(ir::validate(P).empty());

    // The sharded graph under test and its serially evolved twin.
    pag::PAG Sharded(P), Serial(P);
    pag::CallGraph ShardedCalls, SerialCalls;
    pag::buildPAGDelta(Sharded, ShardedCalls, nullptr, false, Threads);
    pag::buildPAGDelta(Serial, SerialCalls, nullptr, false, 1);

    // Same seed at every thread count: each count replays the identical
    // edit stream, so any divergence is the pipeline's fault.
    IrEditFuzzer Edits(GetParam() * 131 + 5);
    for (unsigned Round = 0; Round < kRounds; ++Round) {
      Edits.apply(P, kEditsPerRound);
      ASSERT_TRUE(ir::validate(P).empty());

      pag::DeltaStats DS =
          pag::buildPAGDelta(Sharded, ShardedCalls, nullptr, false, Threads);
      EXPECT_EQ(DS.ThreadsUsed, Threads);
      pag::buildPAGDelta(Serial, SerialCalls, nullptr, false, 1);

      // Isomorphic to a cold scratch build...
      pag::BuiltPAG Cold = pag::buildPAG(P);
      checkCsrInvariants(Sharded);
      checkIsomorphic(Sharded, *Cold.Graph);
      // ...and bit-identical to the serial twin.
      checkBitIdentical(Sharded, Serial);

      // Identical DYNSUM answers for every in-budget query.
      analysis::DynSumAnalysis ShardedA(Sharded, AnalysisOptions());
      analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
      size_t Compared = 0;
      std::vector<ir::VarId> Sample = sampleVars(P, 7);
      for (ir::VarId V : Sample) {
        QueryResult SR = ShardedA.query(Sharded.nodeOfVar(V));
        QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(V));
        if (SR.BudgetExceeded || CR.BudgetExceeded)
          continue;
        ++Compared;
        EXPECT_EQ(SR.allocSites(), CR.allocSites())
            << "threads " << Threads << ", round " << Round << ", "
            << P.describeVar(V);
      }
      EXPECT_GT(Compared, Sample.size() / 2);
    }
  }
}

//===----------------------------------------------------------------------===//
// Service level: commitAsync converges to blocking commit
//===----------------------------------------------------------------------===//

TEST_P(ParallelCommitFuzzTest, AsyncCommitsConvergeToBlockingCommits) {
  for (unsigned Threads : kThreadCounts) {
    // Three identical programs: the async service, the blocking twin,
    // and the cold-reference copy.  The same-seeded fuzzer applies the
    // identical edit stream to each (its decisions depend only on its
    // seed and the program state, which stay in lockstep).
    auto AsyncProg = fuzzProgram(GetParam());
    auto BlockProg = fuzzProgram(GetParam());
    auto RefProg = fuzzProgram(GetParam());
    ASSERT_TRUE(AsyncProg && BlockProg && RefProg);

    ServiceOptions SO;
    SO.Engine.NumThreads = 2;
    SO.Commit = Threads;
    AnalysisService Async(std::move(AsyncProg), SO);
    AnalysisService Block(std::move(BlockProg), SO);

    IrEditFuzzer AsyncEdits(GetParam() * 977 + 13);
    IrEditFuzzer BlockEdits(GetParam() * 977 + 13);
    IrEditFuzzer RefEdits(GetParam() * 977 + 13);

    for (unsigned Round = 0; Round < kRounds; ++Round) {
      Async.editProgram([&](ir::Program &Q) {
        AsyncEdits.apply(Q, kEditsPerRound);
        return std::vector<ir::MethodId>{}; // program auto-stamps
      });
      Block.editProgram([&](ir::Program &Q) {
        BlockEdits.apply(Q, kEditsPerRound);
        return std::vector<ir::MethodId>{};
      });
      RefEdits.apply(*RefProg, kEditsPerRound);

      CommitMode Mode =
          Round % 3 == 2 ? CommitMode::Scratch : CommitMode::Delta;
      service::CommitTicket Ticket =
          Async.submitCommit({Mode, /*Background=*/true});
      Ticket.wait();
      ASSERT_TRUE(Ticket.done());
      Block.submitCommit({Mode, /*Background=*/false}).wait();
      ASSERT_FALSE(Async.dirty()) << "async commit lost edits";
      EXPECT_EQ(Ticket.generation(), Async.generation())
          << "the ticket must report the generation its commit published";
      EXPECT_EQ(Async.generation(), Block.generation())
          << "one waited-for async commit per round must track blocking "
           "generations";

      pag::BuiltPAG Cold = pag::buildPAG(*RefProg);
      analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
      std::vector<ir::VarId> Probe = sampleVars(*RefProg, 9);
      service::ServiceBatchResult AR = Async.queryVars(Probe);
      service::ServiceBatchResult BR = Block.queryVars(Probe);
      for (size_t I = 0; I < Probe.size(); ++I) {
        QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(Probe[I]));
        if (AR.Outcomes[I].BudgetExceeded ||
            BR.Outcomes[I].BudgetExceeded || CR.BudgetExceeded)
          continue;
        EXPECT_EQ(AR.Outcomes[I].AllocSites, BR.Outcomes[I].AllocSites)
            << "threads " << Threads << ", round " << Round << ", probe "
            << I;
        EXPECT_EQ(AR.Outcomes[I].AllocSites, CR.allocSites())
            << "threads " << Threads << ", round " << Round << ", probe "
            << I;
      }
    }
    EXPECT_EQ(Async.stats().AsyncCommitsRequested, uint64_t(kRounds));
  }
}

//===----------------------------------------------------------------------===//
// Coalescing: many queued requests, no lost edits
//===----------------------------------------------------------------------===//

TEST(ParallelCommitQueueTest, CoalescedAsyncCommitsLoseNothing) {
  auto Prog = fuzzProgram(73);
  auto RefProg = fuzzProgram(73);
  ASSERT_TRUE(Prog && RefProg);

  ServiceOptions SO;
  SO.Commit = 2;
  AnalysisService S(std::move(Prog), SO);

  IrEditFuzzer Edits(4242);
  IrEditFuzzer RefEdits(4242);
  constexpr unsigned kBursts = 24;
  for (unsigned I = 0; I < kBursts; ++I) {
    S.editProgram([&](ir::Program &Q) {
      Edits.apply(Q, 3);
      return std::vector<ir::MethodId>{};
    });
    RefEdits.apply(*RefProg, 3);
    // Fire-and-forget: requests racing the in-flight commit coalesce
    // (their dropped tickets share the covering commit's state).
    S.submitCommit({CommitMode::Delta, /*Background=*/true});
  }
  S.waitForCommits();
  ASSERT_FALSE(S.dirty()) << "queued edits must all be committed";

  service::ServiceStats SS = S.stats();
  EXPECT_EQ(SS.AsyncCommitsRequested, uint64_t(kBursts));
  EXPECT_GE(SS.Commits, 1u);
  EXPECT_LE(SS.Commits, uint64_t(kBursts))
      << "coalescing must never run more commits than were requested";
  // Every request either ran its own commit or was folded into one in
  // flight (a request can be counted coalesced AND still trigger the
  // follow-up commit, so this is a lower bound, exact when nothing
  // overlapped).
  EXPECT_GE(SS.Commits + SS.AsyncCommitsCoalesced, uint64_t(kBursts));

  // The final generation answers exactly like a cold build of the
  // identically edited reference program: nothing was lost.
  pag::BuiltPAG Cold = pag::buildPAG(*RefProg);
  analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
  std::vector<ir::VarId> Probe = sampleVars(*RefProg, 9);
  service::ServiceBatchResult R = S.queryVars(Probe);
  for (size_t I = 0; I < Probe.size(); ++I) {
    QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(Probe[I]));
    if (R.Outcomes[I].BudgetExceeded || CR.BudgetExceeded)
      continue;
    EXPECT_EQ(R.Outcomes[I].AllocSites, CR.allocSites()) << "probe " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCommitFuzzTest,
                         ::testing::Values(7, 41, 97));
