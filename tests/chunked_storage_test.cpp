//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the copy-on-write chunk tables under the PAG:
/// ChunkedVector (refcounted element chunks, mutableAt splits exactly
/// one chunk) and ChunkedFlatArray (region placement that never
/// straddles a group, jumbo multi-slot groups, deterministic placement
/// independent of sharing state).  Small LogElems parameters keep the
/// chunk boundaries in view; the production aliases only change the
/// chunk size, not the semantics.
///
//===----------------------------------------------------------------------===//

#include "support/ChunkedStorage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

using namespace dynsum;
using support::ChunkedFlatArray;
using support::ChunkedVector;
using support::ChunkMemoryStats;

namespace {

/// 4 elements per chunk: three chunks by index 8.
using SmallVec = ChunkedVector<int, 2>;
/// 4 elements per flat chunk.
using SmallFlat = ChunkedFlatArray<uint32_t, 2>;

TEST(ChunkedVectorTest, PushBackResizeAndIndex) {
  SmallVec V;
  EXPECT_TRUE(V.empty());
  for (int I = 0; I < 10; ++I)
    V.push_back(I * 3);
  ASSERT_EQ(V.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(V[I], I * 3);
  EXPECT_EQ(V.back(), 27);

  // Grow from a non-chunk-aligned size fills the tail with the value.
  V.resize(17, -1);
  ASSERT_EQ(V.size(), 17u);
  EXPECT_EQ(V[9], 27);
  for (size_t I = 10; I < 17; ++I)
    EXPECT_EQ(V[I], -1);

  // Shrink keeps the survivors.
  V.resize(5);
  ASSERT_EQ(V.size(), 5u);
  EXPECT_EQ(V[4], 12);
}

TEST(ChunkedVectorTest, CopySharesAllChunksAndMutableAtSplitsOne) {
  SmallVec A;
  for (int I = 0; I < 12; ++I) // exactly three full chunks
    A.push_back(I);

  SmallVec B(A);
  ASSERT_EQ(B.size(), 12u);

  // Every chunk is co-owned after the copy...
  ChunkMemoryStats MA = A.memory();
  EXPECT_EQ(MA.Chunks, 3u);
  EXPECT_EQ(MA.SharedChunks, 3u);
  for (size_t I = 0; I < 12; ++I) {
    EXPECT_TRUE(A.sharedAt(I));
    EXPECT_TRUE(B.sharedAt(I));
  }

  // ...and a write splits exactly the chunk it lands in.
  B.mutableAt(5) = 500;
  EXPECT_EQ(B[5], 500);
  EXPECT_EQ(A[5], 5) << "CoW write leaked into the sibling owner";
  EXPECT_FALSE(B.sharedAt(4)) << "indices 4..7 live in the split chunk";
  EXPECT_TRUE(B.sharedAt(3));
  EXPECT_TRUE(B.sharedAt(8));
  EXPECT_EQ(B.memory().SharedChunks, 2u);
  EXPECT_EQ(A.memory().SharedChunks, 2u);

  // The split chunk is writable raw now; the rest still is not.
  B.rawAt(7) = 700;
  EXPECT_EQ(B[7], 700);
  EXPECT_EQ(A[7], 7);
}

TEST(ChunkedVectorTest, ShrinkDropsOnlyThisOwnersChunkRefs) {
  SmallVec A;
  for (int I = 0; I < 12; ++I)
    A.push_back(I);
  SmallVec B(A);

  // A shrinks to one chunk; B must keep reading all twelve.
  A.resize(4);
  EXPECT_EQ(A.memory().Chunks, 1u);
  ASSERT_EQ(B.size(), 12u);
  for (int I = 0; I < 12; ++I)
    EXPECT_EQ(B[I], I);
  // B now solely owns the two dropped chunks.
  EXPECT_FALSE(B.sharedAt(8));
  EXPECT_TRUE(B.sharedAt(0));
}

TEST(ChunkedVectorTest, AssignRebuildsUnshared) {
  SmallVec A;
  for (int I = 0; I < 8; ++I)
    A.push_back(I);
  SmallVec B(A);

  B.assign(6, 42);
  ASSERT_EQ(B.size(), 6u);
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(B[I], 42);
  EXPECT_EQ(B.memory().SharedChunks, 0u);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(A[I], I);
  EXPECT_EQ(A.memory().SharedChunks, 0u);
}

TEST(ChunkedVectorTest, EnsureWritableThenRawWrite) {
  SmallVec A;
  for (int I = 0; I < 8; ++I)
    A.push_back(I);
  SmallVec B(A);

  // The serial uniquify step before a parallel raw-write phase.
  B.ensureWritable(2);
  B.rawAt(2) = 22;
  EXPECT_EQ(B[2], 22);
  EXPECT_EQ(A[2], 2);
}

TEST(ChunkedVectorTest, MoveTransfersOwnershipWithoutSharing) {
  SmallVec A;
  for (int I = 0; I < 8; ++I)
    A.push_back(I);
  SmallVec B(std::move(A));
  EXPECT_EQ(A.size(), 0u);
  ASSERT_EQ(B.size(), 8u);
  EXPECT_EQ(B.memory().SharedChunks, 0u);
  EXPECT_EQ(B[7], 7);

  SmallVec C;
  C.push_back(99);
  C = std::move(B);
  ASSERT_EQ(C.size(), 8u);
  EXPECT_EQ(C[0], 0);
}

TEST(ChunkedVectorTest, ShuffledDestructionOrderKeepsSurvivorsIntact) {
  // A chain of generations with interleaved writes, destroyed in a
  // shuffled order: refcounts must free every chunk exactly once
  // (ASan verifies) and survivors must keep their logical contents.
  std::vector<std::unique_ptr<SmallVec>> Gens;
  Gens.push_back(std::make_unique<SmallVec>());
  for (int I = 0; I < 16; ++I)
    Gens.back()->push_back(I);
  std::vector<std::vector<int>> Expected(1);
  for (int I = 0; I < 16; ++I)
    Expected[0].push_back(I);

  for (int G = 1; G < 8; ++G) {
    Gens.push_back(std::make_unique<SmallVec>(*Gens.back()));
    Expected.push_back(Expected.back());
    size_t At = size_t(G * 5) % Gens.back()->size();
    Gens.back()->mutableAt(At) = G * 1000;
    Expected.back()[At] = G * 1000;
    if (G % 3 == 0) {
      Gens.back()->push_back(G);
      Expected.back().push_back(G);
    }
  }

  std::vector<size_t> Order(Gens.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::mt19937 Rng(0xC0FFEE);
  std::shuffle(Order.begin(), Order.end(), Rng);

  for (size_t Victim : Order) {
    Gens[Victim].reset();
    for (size_t G = 0; G < Gens.size(); ++G) {
      if (!Gens[G])
        continue;
      ASSERT_EQ(Gens[G]->size(), Expected[G].size());
      for (size_t I = 0; I < Expected[G].size(); ++I)
        EXPECT_EQ((*Gens[G])[I], Expected[G][I])
            << "generation " << G << " index " << I << " after destroying "
            << Victim;
    }
  }
}

TEST(ChunkedFlatArrayTest, RegionsNeverStraddleAndPadIsTracked) {
  SmallFlat F;
  // 3 fits the first chunk; 2 does not fit the remaining room of 1, so
  // one element is abandoned and the region starts a fresh chunk.
  size_t R0 = F.placeRegion(3);
  size_t R1 = F.placeRegion(2);
  EXPECT_EQ(R0, 0u);
  EXPECT_EQ(R1, 4u);
  EXPECT_EQ(F.padElements(), 1u);

  // Each region reads as one contiguous span.
  uint32_t *P0 = F.regionPtr(R0);
  for (uint32_t I = 0; I < 3; ++I)
    P0[I] = 10 + I;
  uint32_t *P1 = F.regionPtr(R1);
  for (uint32_t I = 0; I < 2; ++I)
    P1[I] = 20 + I;
  const uint32_t *A = F.addr(R0);
  EXPECT_EQ(A[0], 10u);
  EXPECT_EQ(A[2], 12u);
  const uint32_t *B = F.addr(R1);
  EXPECT_EQ(B[1], 21u);
}

TEST(ChunkedFlatArrayTest, JumboRegionIsOneGroupAndRetiresItsTail) {
  SmallFlat F;
  size_t R = F.placeRegion(10); // 3 slots of 4, one refcount
  EXPECT_EQ(R, 0u);
  uint32_t *P = F.regionPtr(R);
  for (uint32_t I = 0; I < 10; ++I)
    P[I] = I;
  // The group's own remainder is abandoned so the next region starts a
  // fresh, independently-refcounted chunk.
  EXPECT_EQ(F.size(), 12u);
  EXPECT_EQ(F.padElements(), 2u);
  size_t Next = F.placeRegion(1);
  EXPECT_EQ(Next, 12u);

  // Contiguous across the whole jumbo span.
  const uint32_t *A = F.addr(R);
  for (uint32_t I = 0; I < 10; ++I)
    EXPECT_EQ(A[I], I);

  // A copy shares the jumbo group as a unit.
  SmallFlat G(F);
  EXPECT_TRUE(G.sharedAt(0));
  EXPECT_TRUE(G.sharedAt(9));
  ChunkMemoryStats M = F.memory();
  EXPECT_EQ(M.Chunks, 2u) << "jumbo group + the fresh tail chunk";
  EXPECT_EQ(M.SharedChunks, 2u);
}

TEST(ChunkedFlatArrayTest, EnsureUniqueRegionCopiesTheWholeGroup) {
  SmallFlat F;
  size_t R0 = F.placeRegion(4);
  size_t R1 = F.placeRegion(4);
  uint32_t *P = F.regionPtr(R0);
  P[0] = 7;
  F.regionPtr(R1)[0] = 9;

  SmallFlat G(F);
  G.ensureUniqueRegion(R0);
  EXPECT_FALSE(G.sharedAt(R0));
  EXPECT_TRUE(G.sharedAt(R1)) << "only the rewritten group splits";
  G.regionPtr(R0)[0] = 70;
  EXPECT_EQ(*F.addr(R0), 7u) << "CoW write leaked into the sibling";
  EXPECT_EQ(*G.addr(R0), 70u);
  EXPECT_EQ(*G.addr(R1), 9u) << "split must preserve group contents";
}

TEST(ChunkedFlatArrayTest, TailAppendAfterCopyDoesNotCorruptSibling) {
  // The rollback-branching hazard: two generations share a partially
  // filled tail chunk, then both append.  The tail group must be made
  // unique before placement so neither write lands in shared memory.
  SmallFlat A;
  size_t R = A.placeRegion(2);
  A.regionPtr(R)[0] = 1;
  A.regionPtr(R)[1] = 2;

  SmallFlat B(A);
  size_t RB = B.placeRegion(2);
  EXPECT_EQ(RB, 2u) << "placement depends on the call sequence only";
  B.regionPtr(RB)[0] = 30;
  B.regionPtr(RB)[1] = 31;

  size_t RA = A.placeRegion(2);
  EXPECT_EQ(RA, 2u);
  A.regionPtr(RA)[0] = 40;
  A.regionPtr(RA)[1] = 41;

  EXPECT_EQ(*B.addr(2), 30u);
  EXPECT_EQ(*B.addr(3), 31u);
  EXPECT_EQ(*A.addr(2), 40u);
  EXPECT_EQ(*A.addr(3), 41u);
  EXPECT_EQ(*A.addr(0), 1u);
  EXPECT_EQ(*B.addr(0), 1u);
}

TEST(ChunkedFlatArrayTest, PlacementIsDeterministicRegardlessOfSharing) {
  // The same placeRegion sequence must yield the same begin indices
  // whether or not a copy was taken partway through — sharded delta
  // builds rely on layout depending only on the call sequence.
  const size_t Sizes[] = {3, 1, 6, 2, 4, 9, 1, 5};

  SmallFlat Plain;
  std::vector<size_t> PlainBegins;
  for (size_t N : Sizes)
    PlainBegins.push_back(Plain.placeRegion(N));

  SmallFlat Shared;
  std::vector<size_t> SharedBegins;
  std::unique_ptr<SmallFlat> Snapshot;
  for (size_t I = 0; I < std::size(Sizes); ++I) {
    if (I == 1) // next region fits the shared tail chunk: forces CoW
      Snapshot = std::make_unique<SmallFlat>(Shared);
    SharedBegins.push_back(Shared.placeRegion(Sizes[I]));
  }

  EXPECT_EQ(PlainBegins, SharedBegins);
  EXPECT_EQ(Plain.size(), Shared.size());
  EXPECT_EQ(Plain.padElements(), Shared.padElements());
}

TEST(ChunkedFlatArrayTest, ResetFreesOnlyThisOwnersRefs) {
  SmallFlat A;
  size_t R = A.placeRegion(6);
  A.regionPtr(R)[5] = 55;
  SmallFlat B(A);
  A.reset();
  EXPECT_EQ(A.size(), 0u);
  EXPECT_EQ(A.padElements(), 0u);
  EXPECT_EQ(*B.addr(R + 5), 55u);
  EXPECT_EQ(B.memory().SharedChunks, 0u) << "B is sole owner after reset";
}

} // namespace
