//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the RTA dispatch resolver and the CHA/RTA/Andersen
/// call-graph precision ladder.
///
//===----------------------------------------------------------------------===//

#include "pag/Rta.h"

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "frontend/Frontend.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dynsum;
using namespace dynsum::pag;

namespace {

/// Compiles MiniJava and exposes resolver plumbing.
struct RtaFixture {
  explicit RtaFixture(const char *Source) {
    frontend::CompileResult R = frontend::compileMiniJava(Source);
    EXPECT_TRUE(R.ok()) << R.Diags.str();
    Prog = std::move(R.Prog);
  }

  ir::MethodId method(std::string_view Cls, std::string_view Name) const {
    ir::TypeId T = Prog->findClass(Prog->names().lookup(Cls));
    return Prog->findMethod(T, Prog->names().lookup(Name));
  }

  /// The single virtual call statement in \p M.
  const ir::Statement &virtualCallIn(ir::MethodId M) const {
    for (const ir::Statement &S : Prog->method(M).Stmts)
      if (S.Kind == ir::StmtKind::Call && S.IsVirtual)
        return S;
    ADD_FAILURE() << "no virtual call in " << Prog->describeMethod(M);
    static ir::Statement Dummy;
    return Dummy;
  }

  std::unique_ptr<ir::Program> Prog;
};

const char *kHierarchySource = R"(
  class Animal { Object noise() { return null; } }
  class Dog extends Animal { Object noise() { return null; } }
  class Cat extends Animal { Object noise() { return null; } }
  class Main {
    static void main() {
      Animal a = new Dog();   // Cat is never instantiated
      Object n = a.noise();
    }
  }
)";

TEST(RtaTest, FiltersUninstantiatedSubclasses) {
  RtaFixture F(kHierarchySource);
  RtaTargetResolver Rta(*F.Prog);

  ir::MethodId Main = F.method("Main", "main");
  const ir::Statement &Call = F.virtualCallIn(Main);

  std::vector<ir::MethodId> RtaTargets = Rta.resolve(*F.Prog, Main, Call);
  std::vector<ir::MethodId> ChaTargets =
      TargetResolver().resolve(*F.Prog, Main, Call);

  EXPECT_EQ(ChaTargets.size(), 3u) << "CHA: Animal, Dog and Cat overrides";
  ASSERT_EQ(RtaTargets.size(), 1u) << "RTA: only Dog is instantiated";
  EXPECT_EQ(RtaTargets[0], F.method("Dog", "noise"));
}

TEST(RtaTest, ReachabilityRootsPruneAllocations) {
  RtaFixture F(R"(
    class Animal { Object noise() { return null; } }
    class Dog extends Animal { Object noise() { return null; } }
    class Cat extends Animal { Object noise() { return null; } }
    class Main {
      static void main() {
        Animal a = new Dog();
        Object n = a.noise();
      }
      static void deadCode() {
        Animal c = new Cat();   // never called from main
        Object n = c.noise();
      }
    }
  )");

  // Rooted at main: Cat's allocation is unreachable.
  RtaTargetResolver Rooted(*F.Prog, {F.method("Main", "main")});
  EXPECT_TRUE(Rooted.isReachable(F.method("Main", "main")));
  EXPECT_FALSE(Rooted.isReachable(F.method("Main", "deadCode")));
  EXPECT_FALSE(
      Rooted.isInstantiated(F.Prog->findClass(F.Prog->names().lookup("Cat"))));

  // Rootless (all methods): Cat counts again.
  RtaTargetResolver All(*F.Prog);
  EXPECT_TRUE(
      All.isInstantiated(F.Prog->findClass(F.Prog->names().lookup("Cat"))));
}

TEST(RtaTest, VirtualCallsExtendReachability) {
  RtaFixture F(R"(
    class Base { Object step() { return null; } }
    class Impl extends Base {
      Object step() { return Helper.make(); }
    }
    class Helper {
      static Object make() { return new Helper(); }
    }
    class Main {
      static void main() {
        Base b = new Impl();
        Object r = b.step();
      }
    }
  )");
  RtaTargetResolver Rta(*F.Prog, {F.method("Main", "main")});
  // Helper.make is reached only through the virtual dispatch to
  // Impl.step, which RTA must discover during its fixpoint.
  EXPECT_TRUE(Rta.isReachable(F.method("Helper", "make")));
  EXPECT_TRUE(Rta.isInstantiated(
      F.Prog->findClass(F.Prog->names().lookup("Helper"))));
}

TEST(RtaTest, PagUnderRtaHasFewerCallEdges) {
  RtaFixture F(kHierarchySource);
  BuiltPAG Cha = buildPAG(*F.Prog);
  RtaTargetResolver Rta(*F.Prog);
  BuiltPAG RtaPag = buildPAG(*F.Prog, &Rta);

  PAGStats ChaStats = Cha.Graph->stats();
  PAGStats RtaStats = RtaPag.Graph->stats();
  EXPECT_LT(RtaStats.EdgesByKind[unsigned(EdgeKind::Entry)],
            ChaStats.EdgesByKind[unsigned(EdgeKind::Entry)]);
}

/// Precision ladder: Andersen-resolved targets ⊆ RTA targets ⊆ CHA
/// targets for every virtual site.
TEST(RtaTest, PrecisionLadderHolds) {
  RtaFixture F(kHierarchySource);
  BuiltPAG ChaPag = buildPAG(*F.Prog);
  analysis::AndersenAnalysis Andersen(*ChaPag.Graph);
  Andersen.solve();
  analysis::AndersenTargetResolver AndersenRes(Andersen, *ChaPag.Graph);
  RtaTargetResolver Rta(*F.Prog);
  TargetResolver Cha;

  for (const ir::Method &M : F.Prog->methods()) {
    for (const ir::Statement &S : M.Stmts) {
      if (S.Kind != ir::StmtKind::Call || !S.IsVirtual)
        continue;
      auto sorted = [](std::vector<ir::MethodId> V) {
        std::sort(V.begin(), V.end());
        return V;
      };
      auto A = sorted(AndersenRes.resolve(*F.Prog, M.Id, S));
      auto R = sorted(Rta.resolve(*F.Prog, M.Id, S));
      auto C = sorted(Cha.resolve(*F.Prog, M.Id, S));
      EXPECT_TRUE(std::includes(R.begin(), R.end(), A.begin(), A.end()))
          << "RTA must cover Andersen targets";
      EXPECT_TRUE(std::includes(C.begin(), C.end(), R.begin(), R.end()))
          << "CHA must cover RTA targets";
    }
  }
}

/// Demand results under the RTA call graph refine (are a subset of)
/// results under CHA — fewer spurious entry edges, never extra ones.
TEST(RtaTest, DynSumUnderRtaRefinesCha) {
  RtaFixture F(R"(
    class Animal {
      Object tag;
      Animal(Object t) { this.tag = t; }
      Object noise() { return this.tag; }
    }
    class Dog extends Animal {
      Dog(Object t) { this.tag = t; }
      Object noise() { return this.tag; }
    }
    class Cat extends Animal {
      Cat(Object t) { this.tag = t; }
      Object noise() { return null; }
    }
    class Main {
      static void main() {
        Object bone = new Object();
        Animal d = new Dog(bone);
        Object got = d.noise();
      }
    }
  )");
  BuiltPAG ChaPag = buildPAG(*F.Prog);
  RtaTargetResolver Rta(*F.Prog);
  BuiltPAG RtaPag = buildPAG(*F.Prog, &Rta);

  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis UnderCha(*ChaPag.Graph, Opts);
  analysis::DynSumAnalysis UnderRta(*RtaPag.Graph, Opts);

  for (const ir::Variable &V : F.Prog->variables()) {
    if (V.IsGlobal)
      continue;
    auto Cha = UnderCha.query(ChaPag.Graph->nodeOfVar(V.Id)).allocSites();
    auto RtaR = UnderRta.query(RtaPag.Graph->nodeOfVar(V.Id)).allocSites();
    EXPECT_TRUE(std::includes(Cha.begin(), Cha.end(), RtaR.begin(),
                              RtaR.end()))
        << "RTA results must refine CHA for " << F.Prog->describeVar(V.Id);
  }
}

TEST(RtaTest, CountsAreConsistent) {
  RtaFixture F(kHierarchySource);
  RtaTargetResolver Rta(*F.Prog);
  // Dog, String (builtin, never allocated here) ... exactly the types
  // with allocation statements: Dog plus the Object receivers? The
  // source allocates Dog only.
  EXPECT_EQ(Rta.numInstantiatedTypes(), 1u);
  EXPECT_EQ(Rta.numReachableMethods(), F.Prog->methods().size())
      << "rootless RTA reaches every method by definition";
}

} // namespace
