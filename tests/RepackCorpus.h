//===----------------------------------------------------------------------===//
///
/// \file
/// The partitioned-repack corpus: a deterministic program plus edit
/// rounds built to stress the boundaries of the partitioned CSR repack.
///
/// tests/csr_equiv_test.cpp evolves a delta PAG through these rounds at
/// several finalize thread counts and asserts the answers match the
/// golden "repack-r<N>" sections of tests/golden/csr_corpus.txt, which
/// were captured from the serial seed implementation.  The rounds are
/// chosen so that:
///
///   * round 0 dirties every other method — the affected node list is
///     dense and contiguous, so partitioned workers own adjacent dirty
///     buckets and their range boundaries fall inside hot node runs;
///   * round 1 empties a contiguous strip of methods and refills them
///     smaller — dead slots, in-place holes and slot reuse;
///   * round 2 grows the tail methods hard — regions relocate to the
///     flat-array tail across worker ranges;
///   * round 3 touches every method at once — the whole node table is
///     dirty and every worker range is exercised;
///   * rounds 4+ hammer one method's bucket so relocation holes pile up
///     quadratically until the slack policy forces a compacting full
///     pack in the middle of the commit sequence.
///
/// Shared by the test and by the one-off golden generator; must stay
/// gtest-free.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_TESTS_REPACKCORPUS_H
#define DYNSUM_TESTS_REPACKCORPUS_H

#include "ir/Builder.h"
#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace dynsum {
namespace testing {

/// Methods in the corpus program; kept modest so golden stays readable
/// while still giving 8 repack workers multi-bucket ranges.
constexpr unsigned kRepackMethods = 48;

/// Edit rounds driven by the test (4 structured + 10 hammer rounds; the
/// hammer tail is what pushes slack over the compaction bar).
constexpr unsigned kRepackRounds = 14;

/// Builds the base program: kRepackMethods free methods in a call ring,
/// four shared fields, one shared global.  Every method's locals sit in
/// adjacent node-id runs, so dirtying a method range dirties an
/// adjacent CSR bucket range.
inline std::unique_ptr<ir::Program> buildRepackCorpusProgram() {
  ir::ProgramBuilder B;
  B.cls("C0");
  B.cls("C1");
  B.cls("C2");
  B.global("g", "C0");

  std::vector<ir::MethodId> Ms;
  Ms.reserve(kRepackMethods);
  for (unsigned I = 0; I < kRepackMethods; ++I)
    Ms.push_back(B.method("m" + std::to_string(I),
                          {{"p" + std::to_string(I), ""}}));

  for (unsigned I = 0; I < kRepackMethods; ++I) {
    std::string S = std::to_string(I);
    ir::MethodId M = Ms[I];
    B.alloc(M, "a" + S, "C" + std::to_string(I % 3), "o" + S);
    B.assign(M, "b" + S, "a" + S);
    B.alloc(M, "h" + S, "C0", "h" + S);
    B.store(M, "h" + S, "f" + std::to_string(I % 4), "a" + S);
    B.load(M, "c" + S, "h" + S, "f" + std::to_string(I % 4));
    if (I % 4 == 0)
      B.assign(M, "g", "a" + S);
    if (I % 5 == 0)
      B.assign(M, "c" + S, "g");
    // Call ring: entry edges into the next method's formal, exit edges
    // back into this method's result.
    B.call(M, "d" + S, "m" + std::to_string((I + 1) % kRepackMethods),
           {"a" + S});
    B.ret(M, "b" + S);
  }
  return B.takeProgram();
}

namespace repack_detail {

/// First local of \p M in creation order (the parameter).
inline ir::VarId firstLocalOf(const ir::Program &P, ir::MethodId M) {
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M)
      return V.Id;
  return ir::kNone;
}

/// Appends an allocation into a fresh local plus an assign of it into
/// \p M's first local, growing that node's in-bucket by one each call.
inline void growOnce(ir::Program &P, ir::MethodId M, unsigned Tag) {
  ir::VarId Base = firstLocalOf(P, M);
  ir::VarId V = P.createLocal(
      P.name("rg" + std::to_string(M) + "_" + std::to_string(Tag)), M,
      ir::kObjectType);
  ir::Statement A;
  A.Kind = ir::StmtKind::Alloc;
  A.Dst = V;
  A.Type = ir::kObjectType;
  A.Alloc = P.createAllocSite(ir::kObjectType, M, Symbol{});
  P.addStatement(M, std::move(A));
  ir::Statement S;
  S.Kind = ir::StmtKind::Assign;
  S.Src = V;
  S.Dst = Base;
  P.addStatement(M, std::move(S));
}

} // namespace repack_detail

/// Applies edit round \p Round (0-based, < kRepackRounds) to \p P.
/// Deterministic; dirty tracking rides on the program's edit clock.
inline void applyRepackRound(ir::Program &P, unsigned Round) {
  using repack_detail::growOnce;
  const unsigned NumMethods = kRepackMethods;
  switch (Round) {
  case 0:
    // Adjacent dirty buckets across worker ranges: every even method
    // grows a little, so half the node table repacks.
    for (unsigned I = 0; I < NumMethods; I += 2)
      growOnce(P, P.methods()[I].Id, Round);
    break;
  case 1: {
    // Shrink a contiguous strip to nothing (dead slots + holes), then
    // refill smaller (slot reuse).
    for (unsigned I = NumMethods / 3; I < NumMethods / 3 + 6; ++I) {
      ir::MethodId M = P.methods()[I].Id;
      P.method(M).Stmts.clear();
      P.touchMethod(M);
      growOnce(P, M, Round);
    }
    break;
  }
  case 2:
    // Tail methods grow hard: their regions relocate to the array tail.
    for (unsigned I = NumMethods - 4; I < NumMethods; ++I)
      for (unsigned G = 0; G < 12; ++G)
        growOnce(P, P.methods()[I].Id, Round * 100 + G);
    break;
  case 3:
    // Everything dirty at once: the full node table partitions across
    // every worker range.
    for (unsigned I = 0; I < NumMethods; ++I)
      growOnce(P, P.methods()[I].Id, Round);
    break;
  default:
    // Hammer one method: its first local's in-bucket relocates every
    // round, abandoning ever-larger copies until slack forces a
    // compacting full pack mid-sequence.
    for (unsigned G = 0; G < 40; ++G)
      growOnce(P, P.methods()[1].Id, Round * 100 + G);
    break;
  }
}

/// The probe set the golden answers are recorded for: every 7th local,
/// in id order (append-only ids keep earlier rounds' probes stable).
inline std::vector<ir::VarId> repackProbeVariables(const ir::Program &P) {
  std::vector<ir::VarId> Out;
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Id % 7 == 0)
      Out.push_back(V.Id);
  return Out;
}

} // namespace testing
} // namespace dynsum

#endif // DYNSUM_TESTS_REPACKCORPUS_H
