//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random generator of *well-typed* MiniJava programs,
/// used by property tests to exercise the whole pipeline: every
/// generated program must compile cleanly, lower to valid IR, and give
/// consistent answers across all analyses.
///
/// The generator tracks a simple type environment so every emitted
/// statement type-checks by construction: variables are drawn from the
/// classes declared earlier, assignments only go up the hierarchy,
/// calls pass subtype-correct arguments.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_TESTS_MINIJAVAFUZZER_H
#define DYNSUM_TESTS_MINIJAVAFUZZER_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynsum {
namespace testing {

/// Generates one random MiniJava source program for \p Seed.  The same
/// seed always yields the same source.
class MiniJavaFuzzer {
public:
  explicit MiniJavaFuzzer(uint64_t Seed) : State(Seed * 2654435761u + 1) {}

  std::string generate();

private:
  //===------------------------------------------------------------------===//
  // PRNG (SplitMix64)
  //===------------------------------------------------------------------===//

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  unsigned pick(unsigned Bound) { return unsigned(next() % Bound); }
  bool chance(unsigned Percent) { return pick(100) < Percent; }

  //===------------------------------------------------------------------===//
  // Program model
  //===------------------------------------------------------------------===//

  struct ClassModel {
    std::string Name;
    int Super = -1;                       ///< index; -1 = Object
    std::vector<std::string> FieldNames;  ///< all of static type = FieldTypes
    std::vector<int> FieldTypes;          ///< class index per field
    bool HasCtor = false;
    int CtorParamType = -1;               ///< class index of the single param
    std::vector<std::string> MethodNames; ///< one Object-returning method each
    std::vector<int> MethodParamTypes;
  };

  /// True when \p Sub is \p Super or below it.
  bool isSubclass(int Sub, int Super) const {
    for (int C = Sub; C != -1; C = Classes[C].Super)
      if (C == Super)
        return true;
    return false;
  }

  /// A random class index whose instances fit a variable of \p Type.
  int subclassOf(int Type) {
    std::vector<int> Fits;
    for (int C = 0; C < int(Classes.size()); ++C)
      if (isSubclass(C, Type))
        Fits.push_back(C);
    return Fits[pick(unsigned(Fits.size()))];
  }

  //===------------------------------------------------------------------===//
  // Emission
  //===------------------------------------------------------------------===//

  struct Local {
    std::string Name;
    int Type; ///< class index
  };

  void emitClasses();
  void emitBody(std::string &Out, int SelfClass, std::vector<Local> Locals,
                unsigned Depth);
  /// Emits one statement; may append new locals.
  void emitStmt(std::string &Out, int SelfClass, std::vector<Local> &Locals,
                unsigned Depth);
  /// An expression of (a subtype of) \p Type; emits prerequisite
  /// statements into \p Out when needed.  Never fails: locals, "new",
  /// and ultimately "null" at the recursion bound (constructor argument
  /// chains can cycle through the hierarchy).
  std::string exprOf(std::string &Out, int Type, std::vector<Local> &Locals,
                     unsigned ExprDepth = 0);
  void indent(std::string &Out, unsigned Depth) {
    Out.append(Depth * 2, ' ');
  }

  uint64_t State;
  std::vector<ClassModel> Classes;
  std::string Source;
  unsigned NextLocal = 0;
  unsigned StmtBudget = 0;
};

} // namespace testing
} // namespace dynsum

#endif // DYNSUM_TESTS_MINIJAVAFUZZER_H
