//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the three paper clients (SafeCast, NullDeref, FactoryM)
/// and the client-running framework.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "clients/Client.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::clients;

namespace {

struct ClientFixture {
  explicit ClientFixture(const char *Src) {
    ir::ParseResult R = ir::parseProgram(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

} // namespace

//===----------------------------------------------------------------------===//
// SafeCast
//===----------------------------------------------------------------------===//

static const char *kCastSource = R"(
class Animal {}
class Dog extends Animal {}
class Cat extends Animal {}
method main() {
  var a1 : Animal
  var a2 : Animal
  d = new Dog @od
  c = new Cat @oc
  a1 = d
  a2 = c
  safe = (Dog) a1
  unsafe = (Dog) a2
  up = (Animal) d
}
)";

TEST(SafeCastTest, OnlyDowncastsBecomeQueries) {
  ClientFixture F(kCastSource);
  SafeCastClient C;
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  // "up" is an upcast (Dog -> Animal is a supertype of the declared
  // type of d... d's declared type is Object, so it is a downcast too).
  // a1/a2 are Animal-typed, Dog is not a supertype: both are queries.
  EXPECT_GE(Qs.size(), 2u);
}

TEST(SafeCastTest, ProvenAndRefutedVerdicts) {
  ClientFixture F(kCastSource);
  SafeCastClient C;
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  unsigned Proven = 0, Refuted = 0;
  for (const ClientQuery &Q : Qs) {
    Verdict V = C.judge(*F.Built.Graph, Q, A.query(Q.Node));
    Proven += V == Verdict::Proven;
    Refuted += V == Verdict::Refuted;
  }
  // (Dog) a1 is provably safe; (Dog) a2 provably fails.
  EXPECT_GE(Proven, 1u);
  EXPECT_GE(Refuted, 1u);
}

TEST(SafeCastTest, NullPassesAnyCast) {
  ClientFixture F(R"(
class Dog {}
method main() {
  var a : Object
  a = null
  d = (Dog) a
}
)");
  SafeCastClient C;
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  ASSERT_EQ(Qs.size(), 1u);
  EXPECT_EQ(C.judge(*F.Built.Graph, Qs[0], A.query(Qs[0].Node)),
            Verdict::Proven);
}

TEST(SafeCastTest, BudgetExceededIsUnknown) {
  ClientFixture F(kCastSource);
  SafeCastClient C;
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = 0;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  ASSERT_FALSE(Qs.empty());
  EXPECT_EQ(C.judge(*F.Built.Graph, Qs[0], A.query(Qs[0].Node)),
            Verdict::Unknown);
}

//===----------------------------------------------------------------------===//
// NullDeref
//===----------------------------------------------------------------------===//

static const char *kNullSource = R"(
class Box { fields f }
method main() {
  good = new Box @ogood
  x = new Box @ox
  good.f = x
  v1 = good.f

  bad = null
  bad.f = x

  w = uninit.f
}
)";

TEST(NullDerefTest, QueriesDistinctBases) {
  ClientFixture F(kNullSource);
  NullDerefClient C;
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  // Bases: good (twice, deduped), bad, uninit -> 3 queries.
  EXPECT_EQ(Qs.size(), 3u);
}

TEST(NullDerefTest, Verdicts) {
  ClientFixture F(kNullSource);
  NullDerefClient C;
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  unsigned Proven = 0, Refuted = 0;
  for (const ClientQuery &Q : Qs) {
    Verdict V = C.judge(*F.Built.Graph, Q, A.query(Q.Node));
    Proven += V == Verdict::Proven;
    Refuted += V == Verdict::Refuted;
  }
  EXPECT_EQ(Proven, 1u);  // good
  EXPECT_EQ(Refuted, 2u); // bad (null), uninit (empty set)
}

//===----------------------------------------------------------------------===//
// FactoryM
//===----------------------------------------------------------------------===//

static const char *kFactorySource = R"(
class Widget {}
global cachedInstance

method createFresh(p) {
  o = new Widget @ofresh
  return o
}

method createDelegating(p) {
  o = call @1 createFresh(p)
  return o
}

method createCached(p) {
  o = cachedInstance
  return o
}

method main() {
  shared = new Widget @oshared
  cachedInstance = shared
  a = call @2 createFresh(a0)
  b = call @3 createDelegating(b0)
  c = call @4 createCached(c0)
}
)";

TEST(FactoryMTest, QueriesFactoryCallResults) {
  ClientFixture F(kFactorySource);
  FactoryMClient C;
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  // Call sites @2, @3, @4 have results; @1's caller is itself a factory
  // and also counts.
  EXPECT_EQ(Qs.size(), 4u);
}

TEST(FactoryMTest, FreshAndDelegatingProvenCachedRefuted) {
  ClientFixture F(kFactorySource);
  FactoryMClient C;
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  unsigned Proven = 0, Refuted = 0;
  for (const ClientQuery &Q : Qs) {
    Verdict V = C.judge(*F.Built.Graph, Q, A.query(Q.Node));
    Proven += V == Verdict::Proven;
    Refuted += V == Verdict::Refuted;
  }
  // @1 (inside createDelegating), @2, @3 return fresh objects; @4
  // returns the globally cached instance.
  EXPECT_EQ(Proven, 3u);
  EXPECT_EQ(Refuted, 1u);
}

TEST(FactoryMTest, FactoryNameDetection) {
  EXPECT_TRUE(FactoryMClient::isFactoryName("createThing"));
  EXPECT_TRUE(FactoryMClient::isFactoryName("makeWidget"));
  EXPECT_FALSE(FactoryMClient::isFactoryName("getThing"));
  EXPECT_FALSE(FactoryMClient::isFactoryName("recreate"));
}

//===----------------------------------------------------------------------===//
// Framework
//===----------------------------------------------------------------------===//

TEST(ClientFrameworkTest, StrideSampleKeepsOrderAndSize) {
  std::vector<ClientQuery> Qs(100);
  for (size_t I = 0; I < Qs.size(); ++I)
    Qs[I].Site = uint32_t(I);
  std::vector<ClientQuery> S = strideSample(Qs, 10);
  ASSERT_EQ(S.size(), 10u);
  for (size_t I = 1; I < S.size(); ++I)
    EXPECT_LT(S[I - 1].Site, S[I].Site);
  // No-op when the limit exceeds the size.
  EXPECT_EQ(strideSample(Qs, 1000).size(), 100u);
  EXPECT_EQ(strideSample(Qs, 0).size(), 100u);
}

TEST(ClientFrameworkTest, RunClientAggregates) {
  ClientFixture F(kNullSource);
  NullDerefClient C;
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  ClientReport Rep = runClient(C, A, Qs);
  EXPECT_EQ(Rep.NumQueries, Qs.size());
  EXPECT_EQ(Rep.Proven + Rep.Refuted + Rep.Unknown, Rep.NumQueries);
  EXPECT_EQ(std::string(Rep.ClientName), "NullDeref");
  EXPECT_EQ(std::string(Rep.AnalysisName), "DYNSUM");
  EXPECT_GT(Rep.TotalSteps, 0u);
}

TEST(ClientFrameworkTest, PredicateStopsRefinementEarly) {
  ClientFixture F(kCastSource);
  SafeCastClient C;
  AnalysisOptions Opts;
  RefinePtsAnalysis A(*F.Built.Graph, Opts, /*Refinement=*/true);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  for (const ClientQuery &Q : Qs) {
    (void)A.query(Q.Node, C.predicate(*F.Built.Graph, Q));
    EXPECT_LE(A.lastIterations(), Opts.MaxRefineIterations);
  }
}

TEST(ClientFrameworkTest, BatchedRunsCoverTheStream) {
  ClientFixture F(kNullSource);
  NullDerefClient C;
  AnalysisOptions Opts;
  DynSumAnalysis A(*F.Built.Graph, Opts);
  std::vector<ClientQuery> Qs = C.makeQueries(*F.Built.Graph, 0);
  ClientReport R1 = runClient(C, A, Qs, 0, 2);
  ClientReport R2 = runClient(C, A, Qs, 2, Qs.size());
  EXPECT_EQ(R1.NumQueries + R2.NumQueries, Qs.size());
}
