//===----------------------------------------------------------------------===//
///
/// \file
/// Shared fuzzing + isomorphism-check helpers for the delta-build and
/// parallel-commit differential oracles.
///
/// IrEditFuzzer drives deterministic IR-level mutations (allocations,
/// assigns, loads/stores, direct calls, statement removals, fresh
/// locals and whole new methods) over a well-typed program, keeping it
/// validator-clean; the checkers assert that an incrementally evolved
/// PAG is isomorphic to a cold scratch build — node flags per IR
/// entity, live edge multiset under canonical node naming, and the CSR
/// structural invariants that must hold through holes and slot reuse.
///
/// Used by tests/delta_build_test.cpp (serial delta vs scratch) and
/// tests/parallel_commit_test.cpp (sharded delta + async service
/// commits vs scratch at several worker counts).
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_TESTS_IREDITFUZZER_H
#define DYNSUM_TESTS_IREDITFUZZER_H

#include "ir/Program.h"
#include "pag/PAG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

namespace dynsum {
namespace testing {

//===----------------------------------------------------------------------===//
// Deterministic IR-level edit fuzzer
//===----------------------------------------------------------------------===//

class IrEditFuzzer {
public:
  explicit IrEditFuzzer(uint64_t Seed)
      : State(Seed * 0x9e3779b97f4a7c15ull + 1) {}

  /// Applies \p Count random (but deterministic) edits to \p P, keeping
  /// it validator-clean.  Touch tracking rides on the program itself.
  void apply(ir::Program &P, unsigned Count) {
    for (unsigned I = 0; I < Count; ++I) {
      ir::MethodId M = pick(unsigned(P.methods().size()));
      switch (pick(8)) {
      case 0:
      case 1:
        addAlloc(P, M);
        break;
      case 2:
        addAssign(P, M);
        break;
      case 3:
        addLoad(P, M);
        break;
      case 4:
        addStore(P, M);
        break;
      case 5:
        addCall(P, M);
        break;
      case 6:
        removeStatement(P, M);
        break;
      case 7:
        if (pick(4) == 0)
          addMethod(P); // rarer: hierarchy/structure growth
        else
          addAlloc(P, M);
        break;
      }
    }
  }

private:
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  unsigned pick(unsigned Bound) { return unsigned(next() % Bound); }

  std::vector<ir::VarId> localsOf(const ir::Program &P, ir::MethodId M) {
    std::vector<ir::VarId> Out;
    for (const ir::Variable &V : P.variables())
      if (!V.IsGlobal && V.Owner == M)
        Out.push_back(V.Id);
    return Out;
  }

  ir::VarId someLocal(ir::Program &P, ir::MethodId M) {
    std::vector<ir::VarId> Locals = localsOf(P, M);
    if (!Locals.empty() && pick(3) != 0)
      return Locals[pick(unsigned(Locals.size()))];
    return P.createLocal(P.name("fz" + std::to_string(NextLocal++)), M,
                         ir::kObjectType);
  }

  ir::FieldId someField(ir::Program &P) {
    if (!P.fields().empty() && pick(4) != 0)
      return P.fields()[pick(unsigned(P.fields().size()))].Id;
    return P.getOrCreateField(
        P.name("fzf" + std::to_string(NextField++)));
  }

  void addAlloc(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Alloc;
    S.Dst = someLocal(P, M);
    S.Type = ir::TypeId(pick(unsigned(P.classes().size())));
    S.Alloc = P.createAllocSite(S.Type, M, Symbol{});
    P.addStatement(M, std::move(S));
  }

  void addAssign(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Assign;
    S.Src = someLocal(P, M);
    S.Dst = someLocal(P, M);
    P.addStatement(M, std::move(S));
  }

  void addLoad(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Load;
    S.Base = someLocal(P, M);
    S.Dst = someLocal(P, M);
    S.FieldLabel = someField(P);
    P.addStatement(M, std::move(S));
  }

  void addStore(ir::Program &P, ir::MethodId M) {
    ir::Statement S;
    S.Kind = ir::StmtKind::Store;
    S.Base = someLocal(P, M);
    S.Src = someLocal(P, M);
    S.FieldLabel = someField(P);
    P.addStatement(M, std::move(S));
  }

  void addCall(ir::Program &P, ir::MethodId M) {
    // Direct call to an arbitrary method with arity-correct arguments;
    // randomly hitting an uncalled method exercises the boundary-flag
    // flip, a self or mutual call exercises recursion collapsing.
    ir::MethodId Callee = ir::MethodId(pick(unsigned(P.methods().size())));
    ir::Statement S;
    S.Kind = ir::StmtKind::Call;
    S.Callee = Callee;
    S.Call = P.createCallSite(M, ir::kNone);
    for (size_t A = 0; A < P.method(Callee).Params.size(); ++A)
      S.Args.push_back(someLocal(P, M));
    if (pick(2) == 0)
      S.Dst = someLocal(P, M);
    P.addStatement(M, std::move(S));
  }

  void removeStatement(ir::Program &P, ir::MethodId M) {
    size_t Size = P.method(M).Stmts.size();
    if (Size == 0)
      return;
    // Removing a Return changes the method's boundary interface and
    // must ripple to its callers' exit edges — keep those in the pool.
    // Routed through Program::removeStatements so the edit clock stamp
    // comes from the program itself, like addStatement.
    size_t Victim = pick(unsigned(Size));
    size_t Index = 0;
    P.removeStatements(
        M, [&Index, Victim](const ir::Statement &) {
          return Index++ == Victim;
        });
  }

  void addMethod(ir::Program &P) {
    ir::MethodId M = P.createMethod(
        P.name("fzm" + std::to_string(NextMethod++)), ir::kNone);
    ir::VarId Param = P.createLocal(P.name("p"), M, ir::kObjectType);
    P.method(M).Params.push_back(Param);
    addAlloc(P, M);
    ir::Statement Ret;
    Ret.Kind = ir::StmtKind::Return;
    Ret.Src = someLocal(P, M);
    P.addStatement(M, std::move(Ret));
  }

  uint64_t State;
  unsigned NextLocal = 0;
  unsigned NextField = 0;
  unsigned NextMethod = 0;
};

//===----------------------------------------------------------------------===//
// Isomorphism checks
//===----------------------------------------------------------------------===//

/// Canonical node name independent of numbering: variables by VarId,
/// objects by numVars + AllocId.
inline uint64_t canonicalNode(const pag::PAG &G, pag::NodeId N) {
  const pag::Node &Node = G.node(N);
  if (Node.Kind == pag::NodeKind::Object)
    return uint64_t(G.program().variables().size()) + Node.IrId;
  return Node.IrId;
}

using EdgeKey = std::tuple<uint64_t, uint64_t, unsigned, uint32_t, bool>;

/// The live edge multiset under canonical naming, sorted.
inline std::vector<EdgeKey> liveEdgeKeys(const pag::PAG &G) {
  std::vector<EdgeKey> Keys;
  Keys.reserve(G.numEdges());
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E))
      continue;
    const pag::Edge &Ed = G.edge(E);
    Keys.emplace_back(canonicalNode(G, Ed.Src), canonicalNode(G, Ed.Dst),
                      unsigned(Ed.Kind), Ed.Aux, Ed.ContextFree);
  }
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

/// Structural CSR invariants on \p G — valid for dense and hole-y
/// (delta-repacked) layouts alike.
inline void checkCsrInvariants(const pag::PAG &G) {
  std::vector<unsigned> InSeen(G.numEdgeSlots(), 0),
      OutSeen(G.numEdgeSlots(), 0);
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    size_t InTotal = 0, OutTotal = 0;
    for (unsigned K = 0; K < pag::kNumEdgeKinds; ++K) {
      pag::EdgeKind Kind = pag::EdgeKind(K);
      for (pag::EdgeId E : G.inEdgesOfKind(N, Kind)) {
        ASSERT_TRUE(G.edgeAlive(E));
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Dst, N);
        ++InSeen[E];
        ++InTotal;
      }
      for (pag::EdgeId E : G.outEdgesOfKind(N, Kind)) {
        ASSERT_TRUE(G.edgeAlive(E));
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Src, N);
        ++OutSeen[E];
        ++OutTotal;
      }
    }
    EXPECT_EQ(InTotal, G.inEdges(N).size()) << "node " << N;
    EXPECT_EQ(OutTotal, G.outEdges(N).size()) << "node " << N;
  }
  size_t InLive = 0, OutLive = 0;
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E)) {
      EXPECT_EQ(InSeen[E], 0u) << "dead slot in CSR, edge " << E;
      EXPECT_EQ(OutSeen[E], 0u) << "dead slot in CSR, edge " << E;
      continue;
    }
    EXPECT_EQ(InSeen[E], 1u) << "edge " << E;
    EXPECT_EQ(OutSeen[E], 1u) << "edge " << E;
    InLive += InSeen[E];
    OutLive += OutSeen[E];
  }
  EXPECT_EQ(InLive, G.numEdges());
  EXPECT_EQ(OutLive, G.numEdges());

  // Field CSR holds exactly the labelled accesses.
  std::vector<size_t> Stores(G.program().fields().size(), 0);
  std::vector<size_t> Loads(G.program().fields().size(), 0);
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.edgeAlive(E))
      continue;
    if (G.edge(E).Kind == pag::EdgeKind::Store)
      ++Stores[G.edge(E).Aux];
    else if (G.edge(E).Kind == pag::EdgeKind::Load)
      ++Loads[G.edge(E).Aux];
  }
  for (ir::FieldId F = 0; F < G.program().fields().size(); ++F) {
    EXPECT_EQ(G.storesOfField(F).size(), Stores[F]) << "field " << F;
    EXPECT_EQ(G.loadsOfField(F).size(), Loads[F]) << "field " << F;
    for (pag::EdgeId E : G.storesOfField(F)) {
      ASSERT_TRUE(G.edgeAlive(E));
      EXPECT_EQ(G.edge(E).Kind, pag::EdgeKind::Store);
      EXPECT_EQ(G.edge(E).Aux, F);
    }
    for (pag::EdgeId E : G.loadsOfField(F)) {
      ASSERT_TRUE(G.edgeAlive(E));
      EXPECT_EQ(G.edge(E).Kind, pag::EdgeKind::Load);
      EXPECT_EQ(G.edge(E).Aux, F);
    }
  }
}

/// Full isomorphism of the incrementally evolved \p Delta against a
/// cold \p Cold of the same program: flags per IR entity, live edge
/// multiset under canonical node naming.
inline void checkIsomorphic(const pag::PAG &Delta, const pag::PAG &Cold) {
  const ir::Program &P = Delta.program();
  ASSERT_EQ(Delta.numNodes(), Cold.numNodes());
  ASSERT_EQ(Delta.numEdges(), Cold.numEdges());
  for (const ir::Variable &V : P.variables()) {
    const pag::Node &D = Delta.node(Delta.nodeOfVar(V.Id));
    const pag::Node &C = Cold.node(Cold.nodeOfVar(V.Id));
    EXPECT_EQ(D.Kind, C.Kind) << P.describeVar(V.Id);
    EXPECT_EQ(D.Method, C.Method) << P.describeVar(V.Id);
    EXPECT_EQ(D.HasLocalEdge, C.HasLocalEdge) << P.describeVar(V.Id);
    EXPECT_EQ(D.HasGlobalIn, C.HasGlobalIn) << P.describeVar(V.Id);
    EXPECT_EQ(D.HasGlobalOut, C.HasGlobalOut) << P.describeVar(V.Id);
  }
  for (const ir::AllocSite &A : P.allocs()) {
    const pag::Node &D = Delta.node(Delta.nodeOfAlloc(A.Id));
    const pag::Node &C = Cold.node(Cold.nodeOfAlloc(A.Id));
    EXPECT_EQ(D.HasLocalEdge, C.HasLocalEdge) << P.describeAlloc(A.Id);
    EXPECT_EQ(D.HasGlobalIn, C.HasGlobalIn) << P.describeAlloc(A.Id);
    EXPECT_EQ(D.HasGlobalOut, C.HasGlobalOut) << P.describeAlloc(A.Id);
  }
  EXPECT_EQ(liveEdgeKeys(Delta), liveEdgeKeys(Cold));
}

/// Every \p Stride-th non-global variable, in id order.
inline std::vector<ir::VarId> sampleVars(const ir::Program &P,
                                         size_t Stride) {
  std::vector<ir::VarId> Out;
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Id % Stride == 0)
      Out.push_back(V.Id);
  return Out;
}

} // namespace testing
} // namespace dynsum

#endif // DYNSUM_TESTS_IREDITFUZZER_H
