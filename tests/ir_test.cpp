//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the IR: program model, builder, parser, printer,
/// validator.
///
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Program.h"
#include "ir/Validator.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::ir;

//===----------------------------------------------------------------------===//
// Program model
//===----------------------------------------------------------------------===//

TEST(ProgramTest, ObjectIsTheImplicitRoot) {
  Program P;
  ASSERT_EQ(P.classes().size(), 1u);
  EXPECT_EQ(P.names().text(P.classOf(kObjectType).Name), "Object");
}

TEST(ProgramTest, SubtypingIsReflexiveAndTransitive) {
  Program P;
  TypeId A = P.createClass(P.name("A"), kObjectType);
  TypeId B = P.createClass(P.name("B"), A);
  TypeId C = P.createClass(P.name("C"), B);
  EXPECT_TRUE(P.isSubtypeOf(C, C));
  EXPECT_TRUE(P.isSubtypeOf(C, A));
  EXPECT_TRUE(P.isSubtypeOf(C, kObjectType));
  EXPECT_FALSE(P.isSubtypeOf(A, C));
}

TEST(ProgramTest, DispatchWalksUpTheHierarchy) {
  Program P;
  TypeId A = P.createClass(P.name("A"), kObjectType);
  TypeId B = P.createClass(P.name("B"), A);
  Symbol Run = P.name("run");
  MethodId OnA = P.createMethod(Run, A);
  EXPECT_EQ(P.dispatch(B, Run), OnA);
  EXPECT_EQ(P.dispatch(A, Run), OnA);
  EXPECT_EQ(P.dispatch(kObjectType, Run), kNone);
  // An override in B shadows A's method for B receivers only.
  MethodId OnB = P.createMethod(Run, B);
  EXPECT_EQ(P.dispatch(B, Run), OnB);
  EXPECT_EQ(P.dispatch(A, Run), OnA);
}

TEST(ProgramTest, ChaTargetsCoverTheSubtree) {
  Program P;
  TypeId A = P.createClass(P.name("A"), kObjectType);
  TypeId B1 = P.createClass(P.name("B1"), A);
  TypeId B2 = P.createClass(P.name("B2"), A);
  (void)B2;
  Symbol Run = P.name("run");
  MethodId OnA = P.createMethod(Run, A);
  MethodId OnB1 = P.createMethod(Run, B1);
  std::vector<MethodId> Targets = P.chaTargets(A, Run);
  // B2 inherits A's run; B1 overrides: both methods are possible.
  EXPECT_EQ(Targets, (std::vector<MethodId>{OnA, OnB1}));
}

TEST(ProgramTest, FieldsAreUniquedByName) {
  Program P;
  EXPECT_EQ(P.getOrCreateField(P.name("f")), P.getOrCreateField(P.name("f")));
  EXPECT_NE(P.getOrCreateField(P.name("f")), P.getOrCreateField(P.name("g")));
}

TEST(ProgramTest, NullAllocSitesAreDistinctAndFlagged) {
  Program P;
  MethodId M = P.createMethod(P.name("m"), kNone);
  AllocId N1 = P.createNullAlloc(M);
  AllocId N2 = P.createNullAlloc(M);
  EXPECT_NE(N1, N2);
  EXPECT_TRUE(P.alloc(N1).IsNull);
}

TEST(ProgramTest, Describers) {
  Program P;
  TypeId A = P.createClass(P.name("A"), kObjectType);
  MethodId M = P.createMethod(P.name("go"), A);
  VarId V = P.createLocal(P.name("x"), M, kObjectType);
  VarId G = P.createGlobal(P.name("cfg"), kObjectType);
  AllocId O = P.createAllocSite(A, M, P.name("o1"));
  EXPECT_EQ(P.describeMethod(M), "A.go");
  EXPECT_EQ(P.describeVar(V), "x@A.go");
  EXPECT_EQ(P.describeVar(G), "G.cfg");
  EXPECT_EQ(P.describeAlloc(O), "o1:A");
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

TEST(BuilderTest, LocalsAreScopedPerMethod) {
  ProgramBuilder B;
  MethodId M1 = B.method("m1");
  MethodId M2 = B.method("m2");
  VarId X1 = B.var(M1, "x");
  VarId X2 = B.var(M2, "x");
  EXPECT_NE(X1, X2);
  EXPECT_EQ(B.var(M1, "x"), X1); // stable on re-lookup
}

TEST(BuilderTest, GlobalShadowsLocalName) {
  ProgramBuilder B;
  VarId G = B.global("shared");
  MethodId M = B.method("m");
  EXPECT_EQ(B.var(M, "shared"), G);
}

TEST(BuilderTest, StatementsRecordSites) {
  ProgramBuilder B;
  MethodId M = B.method("m");
  B.cls("T");
  AllocId A = B.alloc(M, "x", "T", "site1");
  CastSiteId C = B.cast(M, "y", "T", "x");
  const Program &P = B.program();
  EXPECT_EQ(P.alloc(A).Owner, M);
  EXPECT_EQ(P.castSite(C).Owner, M);
  EXPECT_EQ(P.castSite(C).Target, P.findClass(P.names().lookup("T")));
  ASSERT_EQ(P.method(M).Stmts.size(), 2u);
  EXPECT_EQ(P.method(M).Stmts[0].Kind, StmtKind::Alloc);
  EXPECT_EQ(P.method(M).Stmts[1].Kind, StmtKind::Cast);
}

TEST(BuilderTest, VcallPassesReceiverFirst) {
  ProgramBuilder B;
  B.cls("T");
  B.method("T.run", {{"this", "T"}, {"p", ""}});
  MethodId M = B.method("m");
  B.vcall(M, "r", "recv", "run", {"arg"});
  const Statement &S = B.program().method(M).Stmts.back();
  ASSERT_EQ(S.Args.size(), 2u);
  EXPECT_EQ(S.Args[0], S.Base);
  EXPECT_TRUE(S.IsVirtual);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ParsesFigure2) {
  ParseResult R = parseProgram(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  const Program &P = *R.Prog;
  EXPECT_NE(P.findClass(P.names().lookup("Vector")), kNone);
  EXPECT_NE(P.findClass(P.names().lookup("Client")), kNone);
  EXPECT_EQ(P.methods().size(), 8u);
  EXPECT_TRUE(validate(P).empty());
}

TEST(ParserTest, ForwardReferencesAcrossDeclarations) {
  // main calls a method declared later; the callee's class appears last.
  ParseResult R = parseProgram(R"(
method main() {
  x = call later(y)
}
method later(p : Late) {
  return p
}
class Late {}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(validate(*R.Prog).empty());
}

TEST(ParserTest, ClassInheritanceAfterMethodUse) {
  ParseResult R = parseProgram(R"(
method Sub.run(this : Sub) { return this }
class Sub extends Base {}
class Base {}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Program &P = *R.Prog;
  TypeId Sub = P.findClass(P.names().lookup("Sub"));
  TypeId Base = P.findClass(P.names().lookup("Base"));
  EXPECT_TRUE(P.isSubtypeOf(Sub, Base));
}

TEST(ParserTest, RejectsUnknownCharacters) {
  ParseResult R = parseProgram("class A {} method m() { x = y ? z }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unexpected character"), std::string::npos);
}

TEST(ParserTest, RejectsUnterminatedBody) {
  ParseResult R = parseProgram("method m() { x = y ");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, RejectsVcallWithoutReceiver) {
  ParseResult R = parseProgram("method m() { x = vcall run() }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, ReportsLineNumbers) {
  ParseResult R = parseProgram("class A {}\nmethod m() {\n  !\n}");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 3"), std::string::npos);
}

TEST(ParserTest, CommentsAreSkipped) {
  ParseResult R = parseProgram(R"(
# hash comment
class A {}       // trailing comment
method m() {
  // a full-line comment
  x = new A @o1
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Prog->allocs().size(), 1u);
}

TEST(ParserTest, CallSiteLabelsPreserved) {
  ParseResult R = parseProgram(R"(
method callee(p) { return p }
method m() {
  x = call @77 callee(x)
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Prog->callSites().size(), 1u);
  EXPECT_EQ(R.Prog->callSites()[0].Label, 77u);
}

//===----------------------------------------------------------------------===//
// Printer round-trip
//===----------------------------------------------------------------------===//

namespace {

/// Structural fingerprint used to compare programs across a round-trip.
struct Fingerprint {
  size_t Classes, Methods, Vars, Allocs, Calls, Casts, Stmts;

  static Fingerprint of(const Program &P) {
    Fingerprint F{};
    F.Classes = P.classes().size();
    F.Methods = P.methods().size();
    F.Vars = P.variables().size();
    F.Allocs = P.allocs().size();
    F.Calls = P.callSites().size();
    F.Casts = P.castSites().size();
    for (const Method &M : P.methods())
      F.Stmts += M.Stmts.size();
    return F;
  }

  bool operator==(const Fingerprint &O) const {
    return Classes == O.Classes && Methods == O.Methods && Vars == O.Vars &&
           Allocs == O.Allocs && Calls == O.Calls && Casts == O.Casts &&
           Stmts == O.Stmts;
  }
};

} // namespace

TEST(PrinterTest, Figure2RoundTripsStructurally) {
  ParseResult First = parseProgram(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(First.ok()) << First.Error;
  std::string Printed = programToString(*First.Prog);
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second.ok()) << Second.Error << "\n" << Printed;
  EXPECT_TRUE(Fingerprint::of(*First.Prog) == Fingerprint::of(*Second.Prog))
      << Printed;
  EXPECT_TRUE(validate(*Second.Prog).empty());
}

TEST(PrinterTest, PreservesDeclaredTypes) {
  ParseResult First = parseProgram(R"(
class T {}
method m() {
  var x : T
  x = new T
}
)");
  ASSERT_TRUE(First.ok());
  ParseResult Second = parseProgram(programToString(*First.Prog));
  ASSERT_TRUE(Second.ok()) << Second.Error;
  const Program &P = *Second.Prog;
  TypeId T = P.findClass(P.names().lookup("T"));
  bool Found = false;
  for (const Variable &V : P.variables())
    if (P.names().text(V.Name) == "x") {
      EXPECT_EQ(V.DeclaredType, T);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

TEST(ValidatorTest, AcceptsAllTestPrograms) {
  for (const char *Src :
       {dynsum::testing::kFigure2Source, dynsum::testing::kStraightLineSource,
        dynsum::testing::kLocalFieldSource, dynsum::testing::kIdentitySource,
        dynsum::testing::kGlobalSource, dynsum::testing::kRecursionSource,
        dynsum::testing::kListSource, dynsum::testing::kVirtualSource}) {
    ParseResult R = parseProgram(Src);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_TRUE(validate(*R.Prog).empty()) << Src;
  }
}

TEST(ValidatorTest, FlagsArgCountMismatch) {
  ProgramBuilder B;
  B.method("callee", {{"a", ""}, {"b", ""}});
  MethodId M = B.method("m");
  // Bypass the builder's niceties and write a bad call directly.
  Statement S;
  S.Kind = StmtKind::Call;
  S.Callee = 0;
  S.Call = B.program().createCallSite(M, kNone);
  S.Args.push_back(B.var(M, "x"));
  B.program().addStatement(M, std::move(S));
  std::vector<std::string> Problems = validate(B.program());
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("passes 1 args, expects 2"), std::string::npos);
}

TEST(ValidatorTest, FlagsCrossMethodLocalUse) {
  ProgramBuilder B;
  MethodId M1 = B.method("m1");
  MethodId M2 = B.method("m2");
  VarId Foreign = B.var(M1, "x");
  Statement S;
  S.Kind = StmtKind::Assign;
  S.Dst = B.var(M2, "y");
  S.Src = Foreign;
  B.program().addStatement(M2, std::move(S));
  std::vector<std::string> Problems = validate(B.program());
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("belongs to another method"), std::string::npos);
}

TEST(ValidatorTest, FlagsVirtualCallWithoutTargets) {
  ProgramBuilder B;
  B.cls("Lonely");
  MethodId M = B.method("m");
  B.declareLocal(M, "recv", "Lonely");
  B.vcall(M, "r", "recv", "nothingHere", {});
  std::vector<std::string> Problems = validate(B.program());
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("no CHA target"), std::string::npos);
}
