//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the four analyses on hand-written programs,
/// centered on the paper's Figure 2 motivating example.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "analysis/StaSum.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Parses, validates, builds the PAG, and exposes lookup helpers.
class Fixture {
public:
  explicit Fixture(const char *Source) {
    ir::ParseResult R = ir::parseProgram(Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  ir::Program &program() { return *Prog; }
  const pag::PAG &graph() const { return *Built.Graph; }

  /// PAG node of local \p VarName in method \p QualifiedMethod.
  pag::NodeId varNode(const std::string &QualifiedMethod,
                      const std::string &VarName) const {
    ir::MethodId M = findMethod(QualifiedMethod);
    EXPECT_NE(M, ir::kNone) << "no method " << QualifiedMethod;
    Symbol Name = Prog->names().lookup(VarName);
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal && V.Owner == M && V.Name == Name)
        return Built.Graph->nodeOfVar(V.Id);
    ADD_FAILURE() << "no variable " << VarName << " in " << QualifiedMethod;
    return 0;
  }

  /// Allocation site labelled \p Label (e.g. "o26").
  ir::AllocId allocByLabel(const std::string &Label) const {
    Symbol L = Prog->names().lookup(Label);
    for (const ir::AllocSite &A : Prog->allocs())
      if (A.Label == L)
        return A.Id;
    ADD_FAILURE() << "no allocation labelled " << Label;
    return ir::kNone;
  }

  ir::MethodId findMethod(const std::string &Qualified) const {
    size_t Dot = Qualified.find('.');
    if (Dot == std::string::npos)
      return Prog->findFreeMethod(Prog->names().lookup(Qualified));
    ir::TypeId Owner =
        Prog->findClass(Prog->names().lookup(Qualified.substr(0, Dot)));
    if (Owner == ir::kNone)
      return ir::kNone;
    return Prog->findMethod(Owner,
                            Prog->names().lookup(Qualified.substr(Dot + 1)));
  }

private:
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

std::vector<ir::AllocId> sites(const QueryResult &R) {
  return R.allocSites();
}

//===----------------------------------------------------------------------===//
// Figure 2: the motivating example
//===----------------------------------------------------------------------===//

class Figure2Test : public ::testing::Test {
protected:
  Figure2Test() : F(dynsum::testing::kFigure2Source) {}
  Fixture F;
  AnalysisOptions Opts;
};

TEST_F(Figure2Test, DynSumResolvesS1AndS2Precisely) {
  DynSumAnalysis A(F.graph(), Opts);
  QueryResult S1 = A.query(F.varNode("Main.main", "s1"));
  QueryResult S2 = A.query(F.varNode("Main.main", "s2"));
  EXPECT_FALSE(S1.BudgetExceeded);
  EXPECT_FALSE(S2.BudgetExceeded);
  EXPECT_EQ(sites(S1), std::vector<ir::AllocId>{F.allocByLabel("o26")});
  EXPECT_EQ(sites(S2), std::vector<ir::AllocId>{F.allocByLabel("o29")});
}

TEST_F(Figure2Test, NoRefineMatchesDynSum) {
  RefinePtsAnalysis A(F.graph(), Opts, /*Refinement=*/false);
  QueryResult S1 = A.query(F.varNode("Main.main", "s1"));
  QueryResult S2 = A.query(F.varNode("Main.main", "s2"));
  EXPECT_EQ(sites(S1), std::vector<ir::AllocId>{F.allocByLabel("o26")});
  EXPECT_EQ(sites(S2), std::vector<ir::AllocId>{F.allocByLabel("o29")});
}

TEST_F(Figure2Test, RefinePtsConvergesToSameAnswer) {
  RefinePtsAnalysis A(F.graph(), Opts, /*Refinement=*/true);
  QueryResult S1 = A.query(F.varNode("Main.main", "s1"));
  EXPECT_EQ(sites(S1), std::vector<ir::AllocId>{F.allocByLabel("o26")});
  // The paper's walkthrough needs four refinement iterations for s1.
  EXPECT_GE(A.lastIterations(), 2u);
  QueryResult S2 = A.query(F.varNode("Main.main", "s2"));
  EXPECT_EQ(sites(S2), std::vector<ir::AllocId>{F.allocByLabel("o29")});
}

TEST_F(Figure2Test, RefinementFirstPassIsFieldBasedAndImprecise) {
  // With a client that is satisfied by anything, REFINEPTS answers from
  // its first, field-based pass, which conflates o26 and o29 through
  // the shared Vector.arr match edge (Section 3.4's first iteration).
  RefinePtsAnalysis A(F.graph(), Opts, /*Refinement=*/true);
  QueryResult S1 = A.query(F.varNode("Main.main", "s1"),
                           [](const QueryResult &) { return true; });
  EXPECT_EQ(A.lastIterations(), 1u);
  EXPECT_TRUE(S1.contains(F.allocByLabel("o26")));
  EXPECT_TRUE(S1.contains(F.allocByLabel("o29")));
}

TEST_F(Figure2Test, AndersenOverApproximatesBothQueries) {
  AndersenAnalysis A(F.graph());
  A.solve();
  // Context-insensitive analysis conflates the two vectors' contents.
  auto S1 = A.allocSites(F.varNode("Main.main", "s1"));
  EXPECT_TRUE(std::find(S1.begin(), S1.end(), F.allocByLabel("o26")) !=
              S1.end());
  EXPECT_TRUE(std::find(S1.begin(), S1.end(), F.allocByLabel("o29")) !=
              S1.end());
}

TEST_F(Figure2Test, PptaSummaryOfRetGetMatchesPaper) {
  // Section 4.1: ppta(ret_get, [], S1) = {(this_get, [arr, elems], S1)}
  // — i.e. ret_get's points-to set must include this_get.elems.arr.
  DynSumAnalysis A(F.graph(), Opts);
  PptaEngine Engine(F.graph(), A.fieldStacks(), Opts.MaxFieldDepth);
  Budget B(Opts.BudgetPerQuery);
  PptaSummary Summary;
  ASSERT_TRUE(Engine.compute(F.varNode("Vector.get", "ret"),
                             StackPool::empty(), RsmState::S1, B, Summary));
  EXPECT_TRUE(Summary.Objects.empty());
  ASSERT_EQ(Summary.Tuples.size(), 1u);
  const PptaTuple &T = Summary.Tuples[0];
  EXPECT_EQ(T.Node, F.varNode("Vector.get", "this"));
  EXPECT_EQ(T.State, RsmState::S1);
  // Field stack bottom-to-top: [arr, elems]... the traversal pushes arr
  // first, then elems, so elems is on top.  Both entries are load-bar
  // pushes (pending reads awaiting their matching stores).
  std::vector<uint32_t> Fields = A.fieldStacks().elements(T.Fields);
  ASSERT_EQ(Fields.size(), 2u);
  ir::FieldId Arr = F.program().getOrCreateField(F.program().name("arr"));
  ir::FieldId Elems =
      F.program().getOrCreateField(F.program().name("elems"));
  EXPECT_EQ(Fields[0], encodeLoadBarField(Arr));
  EXPECT_EQ(Fields[1], encodeLoadBarField(Elems));
  EXPECT_EQ(decodeField(Fields[0]), Arr);
}

TEST_F(Figure2Test, DynSumReusesSummariesAcrossQueries) {
  // Querying s1 warms the cache; s2 must then need fewer traversal
  // steps than it would on a cold analysis (Table 1: 23 vs 15 steps).
  DynSumAnalysis Warm(F.graph(), Opts);
  QueryResult WarmS1 = Warm.query(F.varNode("Main.main", "s1"));
  size_t CacheAfterS1 = Warm.cacheSize();
  QueryResult WarmS2 = Warm.query(F.varNode("Main.main", "s2"));
  EXPECT_GT(CacheAfterS1, 0u);

  DynSumAnalysis Cold(F.graph(), Opts);
  QueryResult ColdS2 = Cold.query(F.varNode("Main.main", "s2"));

  EXPECT_EQ(sites(WarmS2), sites(ColdS2));
  EXPECT_LT(WarmS2.Steps, ColdS2.Steps);
  EXPECT_GT(Warm.stats().get("dynsum.cacheHits"), 0u);
  (void)WarmS1;
}

TEST_F(Figure2Test, CacheDisabledStillPrecise) {
  AnalysisOptions NoCache = Opts;
  NoCache.EnableCache = false;
  DynSumAnalysis A(F.graph(), NoCache);
  QueryResult S1 = A.query(F.varNode("Main.main", "s1"));
  EXPECT_EQ(sites(S1), std::vector<ir::AllocId>{F.allocByLabel("o26")});
  EXPECT_EQ(A.cacheSize(), 0u);
}

TEST_F(Figure2Test, InvalidateMethodDropsOnlyThatMethod) {
  DynSumAnalysis A(F.graph(), Opts);
  (void)A.query(F.varNode("Main.main", "s1"));
  size_t Before = A.cacheSize();
  ASSERT_GT(Before, 0u);
  A.invalidateMethod(F.findMethod("Vector.get"));
  size_t After = A.cacheSize();
  EXPECT_LT(After, Before);
  EXPECT_GT(After, 0u);
  // Re-querying still gives the precise answer.
  QueryResult S1 = A.query(F.varNode("Main.main", "s1"));
  EXPECT_EQ(sites(S1), std::vector<ir::AllocId>{F.allocByLabel("o26")});
}

TEST_F(Figure2Test, StaSumComputesMoreSummariesThanDynSumNeeds) {
  StaSumResult Static = computeStaSum(F.graph());
  EXPECT_FALSE(Static.Capped);
  DynSumAnalysis A(F.graph(), Opts);
  (void)A.query(F.varNode("Main.main", "s1"));
  (void)A.query(F.varNode("Main.main", "s2"));
  EXPECT_GT(Static.NumSummaries, 0u);
  EXPECT_LE(A.cacheSize(), Static.NumSummaries);
}

//===----------------------------------------------------------------------===//
// Small focused programs
//===----------------------------------------------------------------------===//

TEST(StraightLineTest, AllAnalysesAgree) {
  Fixture F(dynsum::testing::kStraightLineSource);
  AnalysisOptions Opts;
  ir::AllocId O1 = F.allocByLabel("o1");
  ir::AllocId O2 = F.allocByLabel("o2");

  DynSumAnalysis Dyn(F.graph(), Opts);
  RefinePtsAnalysis Ref(F.graph(), Opts, true);
  RefinePtsAnalysis NoRef(F.graph(), Opts, false);

  for (DemandAnalysis *A :
       std::initializer_list<DemandAnalysis *>{&Dyn, &Ref, &NoRef}) {
    EXPECT_EQ(sites(A->query(F.varNode("main", "x"))),
              std::vector<ir::AllocId>{O1})
        << A->name();
    EXPECT_EQ(sites(A->query(F.varNode("main", "y"))),
              std::vector<ir::AllocId>{O1})
        << A->name();
    EXPECT_EQ(sites(A->query(F.varNode("main", "z"))),
              std::vector<ir::AllocId>{O2})
        << A->name();
  }
}

TEST(LocalFieldTest, FieldSensitiveLoadResolves) {
  Fixture F(dynsum::testing::kLocalFieldSource);
  AnalysisOptions Opts;
  DynSumAnalysis Dyn(F.graph(), Opts);
  QueryResult P = Dyn.query(F.varNode("main", "p"));
  EXPECT_EQ(sites(P), std::vector<ir::AllocId>{F.allocByLabel("oa")});

  RefinePtsAnalysis NoRef(F.graph(), Opts, false);
  EXPECT_EQ(sites(NoRef.query(F.varNode("main", "p"))),
            std::vector<ir::AllocId>{F.allocByLabel("oa")});
}

TEST(IdentityTest, ContextSensitivityKeepsCallersApart) {
  Fixture F(dynsum::testing::kIdentitySource);
  AnalysisOptions Opts;
  ir::AllocId OA = F.allocByLabel("oa");
  ir::AllocId OB = F.allocByLabel("ob");

  DynSumAnalysis Dyn(F.graph(), Opts);
  EXPECT_EQ(sites(Dyn.query(F.varNode("main", "x"))),
            std::vector<ir::AllocId>{OA});
  EXPECT_EQ(sites(Dyn.query(F.varNode("main", "y"))),
            std::vector<ir::AllocId>{OB});

  RefinePtsAnalysis Ref(F.graph(), Opts, true);
  EXPECT_EQ(sites(Ref.query(F.varNode("main", "x"))),
            std::vector<ir::AllocId>{OA});
  EXPECT_EQ(sites(Ref.query(F.varNode("main", "y"))),
            std::vector<ir::AllocId>{OB});

  // Andersen, context-insensitive, conflates them.
  AndersenAnalysis And(F.graph());
  And.solve();
  EXPECT_EQ(And.allocSites(F.varNode("main", "x")).size(), 2u);
}

TEST(GlobalTest, GlobalsAreContextInsensitive) {
  Fixture F(dynsum::testing::kGlobalSource);
  AnalysisOptions Opts;
  DynSumAnalysis Dyn(F.graph(), Opts);
  QueryResult X = Dyn.query(F.varNode("main", "x"));
  // Both objects flow through the static 'cache'; a sound analysis must
  // report both regardless of context sensitivity.
  EXPECT_TRUE(X.contains(F.allocByLabel("oa")));
  EXPECT_TRUE(X.contains(F.allocByLabel("ob")));

  RefinePtsAnalysis NoRef(F.graph(), Opts, false);
  QueryResult X2 = NoRef.query(F.varNode("main", "x"));
  EXPECT_TRUE(X2.contains(F.allocByLabel("oa")));
  EXPECT_TRUE(X2.contains(F.allocByLabel("ob")));
}

TEST(RecursionTest, CollapsedCyclesTerminateAndAnswer) {
  Fixture F(dynsum::testing::kRecursionSource);
  AnalysisOptions Opts;
  DynSumAnalysis Dyn(F.graph(), Opts);
  QueryResult X = Dyn.query(F.varNode("main", "x"));
  EXPECT_FALSE(X.BudgetExceeded);
  EXPECT_TRUE(X.contains(F.allocByLabel("oa")));

  RefinePtsAnalysis NoRef(F.graph(), Opts, false);
  QueryResult X2 = NoRef.query(F.varNode("main", "x"));
  EXPECT_TRUE(X2.contains(F.allocByLabel("oa")));
}

TEST(ListTest, CyclicFieldsStayWithinBudget) {
  Fixture F(dynsum::testing::kListSource);
  AnalysisOptions Opts;
  DynSumAnalysis Dyn(F.graph(), Opts);
  QueryResult X = Dyn.query(F.varNode("main", "x"));
  EXPECT_TRUE(X.contains(F.allocByLabel("ov")));
}

TEST(BudgetTest, TinyBudgetAbortsConservatively) {
  Fixture F(dynsum::testing::kFigure2Source);
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = 3;
  DynSumAnalysis Dyn(F.graph(), Opts);
  QueryResult S1 = Dyn.query(F.varNode("Main.main", "s1"));
  EXPECT_TRUE(S1.BudgetExceeded);

  RefinePtsAnalysis Ref(F.graph(), Opts, true);
  QueryResult R1 = Ref.query(F.varNode("Main.main", "s1"));
  EXPECT_TRUE(R1.BudgetExceeded);
}

TEST(VirtualTest, AndersenRefinedCallGraphIsSmallerThanCHA) {
  ir::ParseResult R = ir::parseProgram(dynsum::testing::kVirtualSource);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::unique_ptr<ir::Program> Prog = std::move(R.Prog);

  pag::BuiltPAG Cha = pag::buildPAG(*Prog);
  pag::BuiltPAG Refined = buildPAGWithAndersenCallGraph(*Prog);

  // The vcall site is site index of the statement labelled @1.
  ir::CallSiteId Site = ir::kNone;
  for (const ir::CallSite &CS : Prog->callSites())
    if (CS.Label == 1)
      Site = CS.Id;
  ASSERT_NE(Site, ir::kNone);
  EXPECT_EQ(Cha.Calls.targets(Site).size(), 2u);
  EXPECT_EQ(Refined.Calls.targets(Site).size(), 1u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Demand alias queries
//===----------------------------------------------------------------------===//

TEST(AliasTest, AliasAndNonAliasOnFigure2) {
  Fixture F(dynsum::testing::kFigure2Source);
  AnalysisOptions Opts;
  DynSumAnalysis A(F.graph(), Opts);
  pag::NodeId S1 = F.varNode("Main.main", "s1");
  pag::NodeId S2 = F.varNode("Main.main", "s2");
  pag::NodeId Tmp1 = F.varNode("Main.main", "tmp1");
  // s1 holds o26 (as does tmp1); s2 holds o29 only.
  EXPECT_TRUE(A.mayAlias(S1, Tmp1));
  EXPECT_FALSE(A.mayAlias(S1, S2));
  EXPECT_TRUE(A.mayAlias(S1, S1));
}

TEST(AliasTest, BudgetExhaustionIsConservative) {
  Fixture F(dynsum::testing::kFigure2Source);
  AnalysisOptions Opts;
  Opts.BudgetPerQuery = 1;
  DynSumAnalysis A(F.graph(), Opts);
  EXPECT_TRUE(A.mayAlias(F.varNode("Main.main", "s1"),
                         F.varNode("Main.main", "s2")));
}
