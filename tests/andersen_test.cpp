//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the exhaustive Andersen solver.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

struct Solved {
  explicit Solved(const char *Src) {
    ir::ParseResult R = ir::parseProgram(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
    Andersen = std::make_unique<AndersenAnalysis>(*Built.Graph);
    Andersen->solve();
  }

  pag::NodeId node(const char *Var) const {
    for (const ir::Variable &V : Prog->variables())
      if (Prog->names().text(V.Name) == std::string_view(Var))
        return Built.Graph->nodeOfVar(V.Id);
    ADD_FAILURE() << "no variable " << Var;
    return 0;
  }

  ir::AllocId alloc(const char *Label) const {
    Symbol L = Prog->names().lookup(Label);
    for (const ir::AllocSite &A : Prog->allocs())
      if (A.Label == L)
        return A.Id;
    return ir::kNone;
  }

  std::vector<ir::AllocId> pts(const char *Var) const {
    return Andersen->allocSites(node(Var));
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::unique_ptr<AndersenAnalysis> Andersen;
};

} // namespace

TEST(AndersenTest, CopyChain) {
  Solved S("class A {} method m() { a = new A @o1  b = a  c = b }");
  EXPECT_EQ(S.pts("c"), std::vector<ir::AllocId>{S.alloc("o1")});
}

TEST(AndersenTest, AssignCycleConverges) {
  Solved S(R"(
class A {}
method m() {
  a = new A @o1
  x = a
  y = x
  x = y
  z = y
}
)");
  EXPECT_EQ(S.pts("z"), std::vector<ir::AllocId>{S.alloc("o1")});
  EXPECT_EQ(S.pts("x"), S.pts("y"));
}

TEST(AndersenTest, FieldFlowThroughAliases) {
  Solved S(R"(
class A {}
class Box { fields f }
method m() {
  v = new A @ov
  b1 = new Box @ob
  b2 = b1
  b1.f = v
  r = b2.f
}
)");
  EXPECT_EQ(S.pts("r"), std::vector<ir::AllocId>{S.alloc("ov")});
}

TEST(AndersenTest, DistinctObjectsKeepDistinctFields) {
  Solved S(R"(
class A {}
class B {}
class Box { fields f }
method m() {
  x = new A @ox
  y = new B @oy
  b1 = new Box @ob1
  b2 = new Box @ob2
  b1.f = x
  b2.f = y
  r1 = b1.f
  r2 = b2.f
}
)");
  EXPECT_EQ(S.pts("r1"), std::vector<ir::AllocId>{S.alloc("ox")});
  EXPECT_EQ(S.pts("r2"), std::vector<ir::AllocId>{S.alloc("oy")});
}

TEST(AndersenTest, FieldAllocSitesExposesTheHeap) {
  Solved S(R"(
class A {}
class Box { fields f }
method m() {
  x = new A @ox
  b = new Box @ob
  b.f = x
}
)");
  ir::FieldId F = S.Prog->getOrCreateField(S.Prog->names().lookup("f"));
  EXPECT_EQ(S.Andersen->fieldAllocSites(S.alloc("ob"), F),
            std::vector<ir::AllocId>{S.alloc("ox")});
  // Untouched (object, field) pairs are empty, not an error.
  EXPECT_TRUE(S.Andersen->fieldAllocSites(S.alloc("ox"), F).empty());
}

TEST(AndersenTest, CallsAreContextInsensitive) {
  Solved S(R"(
class A {}
class B {}
method id(p) { return p }
method m() {
  a = new A @oa
  b = new B @ob
  x = call @1 id(a)
  y = call @2 id(b)
}
)");
  // Entry/exit edges are plain copies for Andersen: both results merge.
  EXPECT_EQ(S.pts("x").size(), 2u);
  EXPECT_EQ(S.pts("x"), S.pts("y"));
}

TEST(AndersenTest, GlobalsFlowEverywhere) {
  Solved S(R"(
class A {}
global g
method m() {
  a = new A @oa
  g = a
  r = g
}
)");
  EXPECT_EQ(S.pts("r"), std::vector<ir::AllocId>{S.alloc("oa")});
}

TEST(AndersenTest, NullSitesParticipate) {
  Solved S("class A {} method m() { x = null  y = x }");
  std::vector<ir::AllocId> Y = S.pts("y");
  ASSERT_EQ(Y.size(), 1u);
  EXPECT_TRUE(S.Prog->alloc(Y[0]).IsNull);
}

TEST(AndersenTest, SolveIsIdempotent) {
  Solved S("class A {} method m() { a = new A @o1  b = a }");
  uint64_t First = S.Andersen->propagationCount();
  S.Andersen->solve();
  EXPECT_EQ(S.Andersen->propagationCount(), First);
}

TEST(AndersenTest, PointsToPredicate) {
  Solved S("class A {} method m() { a = new A @o1  b = new A @o2 }");
  EXPECT_TRUE(S.Andersen->pointsTo(S.node("a"), S.alloc("o1")));
  EXPECT_FALSE(S.Andersen->pointsTo(S.node("a"), S.alloc("o2")));
}

TEST(AndersenTest, LoadBeforeStoreStillConverges) {
  // The load is discovered before any object reaches the base; dynamic
  // copy edges must still fire once the store lands.
  Solved S(R"(
class A {}
class Box { fields f }
method m() {
  r = b.f
  b = new Box @ob
  v = new A @ov
  b.f = v
}
)");
  EXPECT_EQ(S.pts("r"), std::vector<ir::AllocId>{S.alloc("ov")});
}
