//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the incremental EditSession: edits take effect, untouched
/// summaries survive, and warm (incremental) answers always equal cold
/// (from-scratch) answers — including the boundary-flag-flip case that
/// naive per-method invalidation would get wrong.
///
//===----------------------------------------------------------------------===//

#include "incremental/EditSession.h"

#include "ir/Parser.h"
#include "ir/Validator.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::incremental;
using analysis::AnalysisOptions;
using analysis::QueryResult;

namespace {

std::unique_ptr<ir::Program> parse(const char *Source) {
  ir::ParseResult R = ir::parseProgram(Source);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.Prog);
}

ir::VarId varOf(const ir::Program &P, std::string_view Method,
                std::string_view Name) {
  ir::MethodId M = P.findFreeMethod(P.names().lookup(Method));
  EXPECT_NE(M, ir::kNone) << "no free method " << Method;
  Symbol N = P.names().lookup(Name);
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M && V.Name == N)
      return V.Id;
  ADD_FAILURE() << "no variable " << Name << " in " << Method;
  return ir::kNone;
}

ir::AllocId allocOf(const ir::Program &P, std::string_view Label) {
  Symbol L = P.names().lookup(Label);
  for (const ir::AllocSite &A : P.allocs())
    if (A.Label == L)
      return A.Id;
  ADD_FAILURE() << "no alloc " << Label;
  return ir::kNone;
}

const char *kTwoMethodSource = R"(
class A {}
class Box { fields f }
method helper(b) {
  t = b.f
  return t
}
method main() {
  box = new Box @obox
  a = new A @oa
  box.f = a
  r = call helper(box)
  other = new A @oother
}
)";

TEST(EditSessionTest, AddedAllocationVisibleAfterCommit) {
  auto P = parse(kTwoMethodSource);
  ir::Program &Prog = *P;
  ir::MethodId Main = Prog.findFreeMethod(Prog.names().lookup("main"));
  ir::VarId Other = varOf(Prog, "main", "other");

  EditSession S(std::move(P), AnalysisOptions());
  QueryResult R0 = S.queryVar(Other);
  EXPECT_EQ(R0.Targets.size(), 1u);

  // other = new A @onew
  ir::Statement New;
  New.Kind = ir::StmtKind::Alloc;
  New.Dst = Other;
  New.Type = S.program().findClass(S.program().names().lookup("A"));
  New.Alloc = S.program().createAllocSite(New.Type, Main,
                                          S.program().name("onew"));
  S.addStatement(Main, std::move(New));

  QueryResult R1 = S.queryVar(Other);
  EXPECT_EQ(R1.Targets.size(), 2u);
  EXPECT_TRUE(R1.contains(allocOf(S.program(), "onew")));
}

TEST(EditSessionTest, RemovedStoreShrinksPointsTo) {
  auto P = parse(kTwoMethodSource);
  ir::Program &Prog = *P;
  ir::MethodId Main = Prog.findFreeMethod(Prog.names().lookup("main"));
  ir::VarId R = varOf(Prog, "main", "r");

  EditSession S(std::move(P), AnalysisOptions());
  EXPECT_EQ(S.queryVar(R).Targets.size(), 1u);

  size_t Removed = S.removeStatements(Main, [](const ir::Statement &St) {
    return St.Kind == ir::StmtKind::Store;
  });
  EXPECT_EQ(Removed, 1u);
  EXPECT_TRUE(S.queryVar(R).Targets.empty())
      << "without the store, helper finds nothing in box.f";
}

TEST(EditSessionTest, UntouchedMethodSummariesSurvive) {
  auto P = parse(kTwoMethodSource);
  ir::Program &Prog = *P;
  ir::MethodId Main = Prog.findFreeMethod(Prog.names().lookup("main"));
  ir::VarId R = varOf(Prog, "main", "r");

  EditSession S(std::move(P), AnalysisOptions());
  S.queryVar(R); // warm the cache through helper()
  size_t Warm = S.analysis().cacheSize();
  ASSERT_GT(Warm, 0u);

  // Edit main only; helper's summaries must survive.
  ir::Statement New;
  New.Kind = ir::StmtKind::Alloc;
  New.Dst = varOf(S.program(), "main", "other");
  New.Type = S.program().findClass(S.program().names().lookup("A"));
  New.Alloc =
      S.program().createAllocSite(New.Type, Main, S.program().name("onew"));
  S.addStatement(Main, std::move(New));
  CommitStats Stats = S.commit();

  EXPECT_LT(Stats.SummariesDropped, Warm)
      << "per-method invalidation must not clear everything";
  // Only the edited method's segment is re-lowered.
  EXPECT_EQ(Stats.MethodsRelowered, 1u);
}

TEST(EditSessionTest, AddingAVariableKeepsNodeIdsStable) {
  auto P = parse(kTwoMethodSource);
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));
  ir::VarId R = varOf(*P, "main", "r");

  EditSession S(std::move(P), AnalysisOptions());
  QueryResult Before = S.queryVar(R);
  ASSERT_GT(S.analysis().cacheSize(), 0u);

  // Record every pre-edit node id; the delta build must not move any.
  std::vector<pag::NodeId> VarNodes, AllocNodes;
  for (const ir::Variable &V : S.program().variables())
    VarNodes.push_back(S.graph().nodeOfVar(V.Id));
  for (const ir::AllocSite &A : S.program().allocs())
    AllocNodes.push_back(S.graph().nodeOfAlloc(A.Id));

  // A new local + alloc: both append fresh node ids at the end.
  ir::Program &Q = S.program();
  ir::VarId Fresh = Q.createLocal(Q.name("fresh"), Main, ir::kObjectType);
  ir::Statement New;
  New.Kind = ir::StmtKind::Alloc;
  New.Dst = Fresh;
  New.Type = Q.findClass(Q.names().lookup("A"));
  New.Alloc = Q.createAllocSite(New.Type, Main, Q.name("ofresh"));
  S.addStatement(Main, std::move(New));
  CommitStats Stats = S.commit();
  EXPECT_EQ(Stats.MethodsRelowered, 1u);

  for (size_t I = 0; I < VarNodes.size(); ++I)
    EXPECT_EQ(S.graph().nodeOfVar(ir::VarId(I)), VarNodes[I])
        << "variable node id moved";
  for (size_t I = 0; I < AllocNodes.size(); ++I)
    EXPECT_EQ(S.graph().nodeOfAlloc(ir::AllocId(I)), AllocNodes[I])
        << "object node id moved";
  EXPECT_GE(S.graph().nodeOfVar(Fresh), VarNodes.size() + AllocNodes.size())
      << "new nodes append after every existing id";

  // Warm summaries keep answering correctly over the patched graph.
  QueryResult After = S.queryVar(R);
  EXPECT_EQ(Before.allocSites(), After.allocSites());
  QueryResult FreshR = S.queryVar(Fresh);
  ASSERT_EQ(FreshR.Targets.size(), 1u);
  EXPECT_TRUE(FreshR.contains(allocOf(S.program(), "ofresh")));
}

TEST(EditSessionTest, ClearAllPolicyDropsEverything) {
  auto P = parse(kTwoMethodSource);
  ir::VarId R = varOf(*P, "main", "r");
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));

  EditSession S(std::move(P), AnalysisOptions(), InvalidationPolicy::ClearAll);
  S.queryVar(R);
  ASSERT_GT(S.analysis().cacheSize(), 0u);

  S.markDirty(Main);
  CommitStats Stats = S.commit();
  EXPECT_EQ(Stats.SummariesDropped, Stats.SummariesBefore);
  EXPECT_EQ(S.analysis().cacheSize(), 0u);
}

/// The boundary-flag regression: helper() starts out *uncalled*; its
/// formal has no incoming entry edge, so the summary for t records no
/// boundary tuple.  Adding the first call must invalidate helper's
/// summaries even though helper itself was never edited.
TEST(EditSessionTest, FirstCallToAMethodInvalidatesItsSummaries) {
  auto P = parse(R"(
    class A {}
    class Box { fields f }
    method helper(b) {
      t = b.f
      return t
    }
    method main() {
      box = new Box @obox
      a = new A @oa
      box.f = a
    }
  )");
  ir::Program &Prog = *P;
  ir::MethodId Main = Prog.findFreeMethod(Prog.names().lookup("main"));
  ir::MethodId Helper = Prog.findFreeMethod(Prog.names().lookup("helper"));
  ir::VarId T = varOf(Prog, "helper", "t");
  ir::VarId Box = varOf(Prog, "main", "box");

  EditSession S(std::move(P), AnalysisOptions());
  // Query t while helper has no callers: nothing can flow into b.
  EXPECT_TRUE(S.queryVar(T).Targets.empty());

  // Add "r = call helper(box)" to main.
  ir::Program &Q = S.program();
  ir::VarId R = Q.createLocal(Q.name("r"), Main, ir::kObjectType);
  ir::Statement Call;
  Call.Kind = ir::StmtKind::Call;
  Call.Dst = R;
  Call.Callee = Helper;
  Call.Call = Q.createCallSite(Main, 99);
  Call.Args.push_back(Box);
  S.addStatement(Main, std::move(Call));

  // The warm query must now see oa flowing through the new call; a
  // stale summary (no boundary tuple at b) would keep it empty.
  QueryResult RT = S.queryVar(T);
  EXPECT_EQ(RT.Targets.size(), 1u);
  EXPECT_TRUE(RT.contains(allocOf(S.program(), "oa")));
  QueryResult RR = S.queryVar(R);
  EXPECT_TRUE(RR.contains(allocOf(S.program(), "oa")));
}

/// Removing the only call is the mirror image: flows must disappear and
/// the callee's summaries must be refreshed.
TEST(EditSessionTest, RemovingTheOnlyCallSeversFlows) {
  auto P = parse(kTwoMethodSource);
  ir::Program &Prog = *P;
  ir::MethodId Main = Prog.findFreeMethod(Prog.names().lookup("main"));
  ir::VarId T = varOf(Prog, "helper", "t");

  EditSession S(std::move(P), AnalysisOptions());
  EXPECT_EQ(S.queryVar(T).Targets.size(), 1u);

  size_t Removed = S.removeStatements(Main, [](const ir::Statement &St) {
    return St.Kind == ir::StmtKind::Call;
  });
  ASSERT_EQ(Removed, 1u);
  EXPECT_TRUE(S.queryVar(T).Targets.empty());
}

TEST(EditSessionTest, CommitIsIdempotentWhenClean) {
  auto P = parse(kTwoMethodSource);
  EditSession S(std::move(P), AnalysisOptions());
  CommitStats Stats = S.commit();
  EXPECT_EQ(Stats.SummariesBefore, 0u);
  EXPECT_EQ(Stats.SummariesDropped, 0u);
  EXPECT_FALSE(S.dirty());
}

TEST(EditSessionTest, ValidatorStaysGreenAcrossEdits) {
  auto P = parse(kTwoMethodSource);
  ir::MethodId Main = P->findFreeMethod(P->names().lookup("main"));
  EditSession S(std::move(P), AnalysisOptions());

  ir::Statement New;
  New.Kind = ir::StmtKind::Null;
  New.Dst = varOf(S.program(), "main", "other");
  New.Alloc = S.program().createNullAlloc(Main);
  S.addStatement(Main, std::move(New));
  S.commit();

  EXPECT_TRUE(ir::validate(S.program()).empty());
}

//===----------------------------------------------------------------------===//
// Warm == cold property over generated programs
//===----------------------------------------------------------------------===//

/// Runs a random edit/query script through an EditSession and checks
/// every warm answer against a cold DYNSUM built from scratch on an
/// identical program.
class WarmColdTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmColdTest, WarmAnswersEqualColdAnswers) {
  workload::GenOptions Gen;
  Gen.Scale = 1.0 / 256;
  Gen.Seed = GetParam();
  const workload::BenchmarkSpec &Spec = workload::paperSuite()[0]; // jack
  auto P = generateProgram(Spec, Gen);
  ASSERT_TRUE(ir::validate(*P).empty());

  AnalysisOptions Opts;
  EditSession S(std::move(P), AnalysisOptions());

  // Deterministic query set: every variable with at least one new edge
  // plus some load destinations, strided down to keep the test fast.
  std::vector<ir::VarId> Queries;
  for (const ir::Variable &V : S.program().variables())
    if (!V.IsGlobal && V.Id % 97 == 0)
      Queries.push_back(V.Id);
  ASSERT_GT(Queries.size(), 4u);

  // Warm the cache.
  for (ir::VarId V : Queries)
    S.queryVar(V);

  // Scripted edits: add an allocation and an assignment chain to a few
  // methods spread over the program.
  ir::Program &Q = S.program();
  ir::TypeId SomeClass = Q.classes().back().Id;
  for (size_t I = 1; I < Q.methods().size(); I += 31) {
    ir::MethodId M = Q.methods()[I].Id;
    ir::VarId Fresh =
        Q.createLocal(Q.name("edit" + std::to_string(I)), M, SomeClass);
    ir::Statement New;
    New.Kind = ir::StmtKind::Alloc;
    New.Dst = Fresh;
    New.Type = SomeClass;
    New.Alloc = Q.createAllocSite(SomeClass, M, Symbol{});
    S.addStatement(M, std::move(New));
    if (!Q.method(M).Stmts.empty()) {
      const ir::Statement &First = Q.method(M).Stmts.front();
      if (First.Kind == ir::StmtKind::Alloc) {
        ir::Statement Copy;
        Copy.Kind = ir::StmtKind::Assign;
        Copy.Src = Fresh;
        Copy.Dst = First.Dst;
        S.addStatement(M, std::move(Copy));
      }
    }
  }

  // Cold reference: fresh PAG + fresh DYNSUM over the same program.
  pag::BuiltPAG Cold = pag::buildPAG(S.program());
  analysis::DynSumAnalysis ColdDynSum(*Cold.Graph, Opts);

  for (ir::VarId V : Queries) {
    QueryResult Warm = S.queryVar(V);
    QueryResult ColdR = ColdDynSum.query(Cold.Graph->nodeOfVar(V));
    EXPECT_EQ(Warm.allocSites(), ColdR.allocSites())
        << "stale summary for variable " << S.program().describeVar(V);
    EXPECT_EQ(Warm.BudgetExceeded, ColdR.BudgetExceeded);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmColdTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

} // namespace
