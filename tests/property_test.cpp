//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests over generated programs, parameterized across
/// the nine benchmark shapes and several seeds:
///
///   * soundness     — every demand-driven answer (that stayed within
///                     budget) is a subset of Andersen's;
///   * precision     — DYNSUM, NOREFINE and fully-refined REFINEPTS
///                     agree on allocation sites ("without any precision
///                     loss", the paper's central correctness claim);
///   * cache safety  — cached and uncached DYNSUM agree; invalidation
///                     and re-query agree; repeated queries agree;
///   * reuse         — a warmed DYNSUM never takes more steps than a
///                     cold one on the same query stream.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "analysis/StaSum.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::workload;

namespace {

struct Params {
  const char *Benchmark;
  uint64_t Seed;
};

void PrintTo(const Params &P, std::ostream *OS) {
  *OS << P.Benchmark << "/seed" << P.Seed;
}

class GeneratedProgramTest : public ::testing::TestWithParam<Params> {
protected:
  void SetUp() override {
    GenOptions GO;
    GO.Scale = 1.0 / 256;
    GO.Seed = GetParam().Seed;
    Prog = generateProgram(specByName(GetParam().Benchmark), GO);
    ASSERT_TRUE(ir::validate(*Prog).empty());
    Built = pag::buildPAG(*Prog);
    Opts.BudgetPerQuery = 200000; // generous: most queries complete
  }

  /// A deterministic spread of local-variable query nodes.
  std::vector<pag::NodeId> sampleNodes(size_t Stride) const {
    std::vector<pag::NodeId> Out;
    for (size_t I = 0; I < Prog->variables().size(); I += Stride)
      if (!Prog->variables()[I].IsGlobal)
        Out.push_back(Built.Graph->nodeOfVar(ir::VarId(I)));
    return Out;
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  AnalysisOptions Opts;
};

} // namespace

TEST_P(GeneratedProgramTest, DemandAnswersAreSubsetsOfAndersen) {
  AndersenAnalysis Exhaustive(*Built.Graph);
  Exhaustive.solve();
  DynSumAnalysis Dyn(*Built.Graph, Opts);
  RefinePtsAnalysis NoRef(*Built.Graph, Opts, /*Refinement=*/false);

  for (pag::NodeId N : sampleNodes(41)) {
    std::vector<ir::AllocId> Truth = Exhaustive.allocSites(N);
    for (DemandAnalysis *A :
         std::initializer_list<DemandAnalysis *>{&Dyn, &NoRef}) {
      QueryResult R = A->query(N);
      if (R.BudgetExceeded)
        continue; // no claim on aborted queries
      for (ir::AllocId Site : R.allocSites())
        EXPECT_TRUE(std::binary_search(Truth.begin(), Truth.end(), Site))
            << A->name() << " found " << Prog->describeAlloc(Site)
            << " at " << Built.Graph->describe(N)
            << " that Andersen does not";
    }
  }
}

TEST_P(GeneratedProgramTest, DynSumMatchesNoRefinePrecision) {
  DynSumAnalysis Dyn(*Built.Graph, Opts);
  RefinePtsAnalysis NoRef(*Built.Graph, Opts, /*Refinement=*/false);
  for (pag::NodeId N : sampleNodes(67)) {
    QueryResult RD = Dyn.query(N);
    QueryResult RN = NoRef.query(N);
    if (RD.BudgetExceeded || RN.BudgetExceeded)
      continue;
    EXPECT_EQ(RD.allocSites(), RN.allocSites())
        << "at " << Built.Graph->describe(N);
  }
}

TEST_P(GeneratedProgramTest, RefinePtsConvergesToDynSumPrecision) {
  DynSumAnalysis Dyn(*Built.Graph, Opts);
  RefinePtsAnalysis Refine(*Built.Graph, Opts, /*Refinement=*/true);
  for (pag::NodeId N : sampleNodes(97)) {
    QueryResult RD = Dyn.query(N);
    QueryResult RR = Refine.query(N); // no client: refine to the end
    if (RD.BudgetExceeded || RR.BudgetExceeded)
      continue;
    EXPECT_EQ(RD.allocSites(), RR.allocSites())
        << "at " << Built.Graph->describe(N);
  }
}

TEST_P(GeneratedProgramTest, CachedAndUncachedDynSumAgree) {
  AnalysisOptions NoCache = Opts;
  NoCache.EnableCache = false;
  DynSumAnalysis Cached(*Built.Graph, Opts);
  DynSumAnalysis Uncached(*Built.Graph, NoCache);
  for (pag::NodeId N : sampleNodes(83)) {
    QueryResult RC = Cached.query(N);
    QueryResult RU = Uncached.query(N);
    if (RC.BudgetExceeded || RU.BudgetExceeded)
      continue;
    EXPECT_EQ(RC.allocSites(), RU.allocSites())
        << "at " << Built.Graph->describe(N);
  }
}

TEST_P(GeneratedProgramTest, RepeatedQueriesAreStable) {
  DynSumAnalysis Dyn(*Built.Graph, Opts);
  for (pag::NodeId N : sampleNodes(131)) {
    QueryResult First = Dyn.query(N);
    QueryResult Second = Dyn.query(N);
    EXPECT_EQ(First.allocSites(), Second.allocSites());
    // The repeat must not be more expensive: everything is cached.
    EXPECT_LE(Second.Steps, First.Steps + 1);
  }
}

TEST_P(GeneratedProgramTest, InvalidationPreservesAnswers) {
  DynSumAnalysis Dyn(*Built.Graph, Opts);
  std::vector<pag::NodeId> Nodes = sampleNodes(113);
  std::vector<std::vector<ir::AllocId>> Before;
  for (pag::NodeId N : Nodes)
    Before.push_back(Dyn.query(N).allocSites());
  // Invalidate every method's summaries (an edit touching everything).
  for (ir::MethodId M = 0; M < Prog->methods().size(); ++M)
    Dyn.invalidateMethod(M);
  EXPECT_EQ(Dyn.cacheSize(), 0u);
  for (size_t I = 0; I < Nodes.size(); ++I)
    EXPECT_EQ(Dyn.query(Nodes[I]).allocSites(), Before[I]);
}

TEST_P(GeneratedProgramTest, WarmCacheNeverCostsMoreSteps) {
  std::vector<pag::NodeId> Nodes = sampleNodes(73);
  DynSumAnalysis Cold(*Built.Graph, Opts);
  uint64_t ColdSteps = 0;
  for (pag::NodeId N : Nodes)
    ColdSteps += Cold.query(N).Steps;
  // Same stream again on the warmed instance.
  uint64_t WarmSteps = 0;
  for (pag::NodeId N : Nodes)
    WarmSteps += Cold.query(N).Steps;
  EXPECT_LE(WarmSteps, ColdSteps);
}

TEST_P(GeneratedProgramTest, StaSumDominatesDynSumCache) {
  StaSumOptions SO;
  SO.MaxSummaries = 500000;
  StaSumResult Static = computeStaSum(*Built.Graph, SO);
  DynSumAnalysis Dyn(*Built.Graph, Opts);
  for (pag::NodeId N : sampleNodes(59))
    (void)Dyn.query(N);
  if (!Static.Capped) {
    EXPECT_LE(Dyn.cacheSize(), Static.NumSummaries);
  }
  EXPECT_GT(Static.NumSummaries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperBenchmarks, GeneratedProgramTest,
    ::testing::Values(Params{"jack", 0}, Params{"javac", 0},
                      Params{"soot-c", 0}, Params{"bloat", 0},
                      Params{"jython", 0}, Params{"avrora", 0},
                      Params{"batik", 0}, Params{"luindex", 0},
                      Params{"xalan", 0}, Params{"soot-c", 7},
                      Params{"soot-c", 21}, Params{"xalan", 7}),
    [](const ::testing::TestParamInfo<Params> &Info) {
      std::string Name = Info.param.Benchmark;
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name + "_seed" + std::to_string(Info.param.Seed);
    });
