//===----------------------------------------------------------------------===//
///
/// \file
/// Random well-typed MiniJava program generation.
///
//===----------------------------------------------------------------------===//

#include "MiniJavaFuzzer.h"

using namespace dynsum;
using namespace dynsum::testing;

void MiniJavaFuzzer::emitClasses() {
  unsigned NumClasses = 3 + pick(4);
  for (unsigned I = 0; I < NumClasses; ++I) {
    ClassModel C;
    C.Name = "C" + std::to_string(I);
    // Subclass an earlier class half the time (keeps the hierarchy a
    // forest rooted at Object).
    if (I > 0 && chance(50))
      C.Super = int(pick(I));
    // Field names carry the class index: field hiding is a sema error.
    unsigned NumFields = pick(3);
    for (unsigned F = 0; F < NumFields; ++F) {
      C.FieldNames.push_back("f" + std::to_string(I) + "_" +
                             std::to_string(F));
      C.FieldTypes.push_back(int(pick(NumClasses)));
    }
    if (chance(40)) {
      C.HasCtor = true;
      C.CtorParamType = int(pick(NumClasses));
    }
    unsigned NumMethods = 1 + pick(2);
    for (unsigned M = 0; M < NumMethods; ++M) {
      C.MethodNames.push_back("m" + std::to_string(I) + "_" +
                              std::to_string(M));
      C.MethodParamTypes.push_back(int(pick(NumClasses)));
    }
    // Often override one inherited method (same name, same signature —
    // sema requires exact matches) so virtual dispatch has real targets.
    if (C.Super != -1 && chance(60)) {
      std::vector<std::pair<std::string, int>> Inherited;
      for (int A = C.Super; A != -1; A = Classes[A].Super)
        for (size_t M = 0; M < Classes[A].MethodNames.size(); ++M)
          Inherited.push_back({Classes[A].MethodNames[M],
                               Classes[A].MethodParamTypes[M]});
      if (!Inherited.empty()) {
        auto [Name, ParamType] = Inherited[pick(unsigned(Inherited.size()))];
        bool Duplicate = false;
        for (const std::string &Existing : C.MethodNames)
          if (Existing == Name)
            Duplicate = true;
        if (!Duplicate) {
          C.MethodNames.push_back(Name);
          C.MethodParamTypes.push_back(ParamType);
        }
      }
    }
    Classes.push_back(std::move(C));
  }
}

std::string MiniJavaFuzzer::exprOf(std::string &Out, int Type,
                                   std::vector<Local> &Locals,
                                   unsigned ExprDepth) {
  // Prefer an existing fitting local; at the depth bound it is the only
  // non-null option (constructor chains can cycle: C0's ctor may take a
  // C1 whose ctor takes a C0, so recursion must be cut explicitly).
  std::vector<const Local *> Fits;
  for (const Local &L : Locals)
    if (isSubclass(L.Type, Type))
      Fits.push_back(&L);
  if (!Fits.empty() && (chance(70) || ExprDepth >= 3))
    return Fits[pick(unsigned(Fits.size()))]->Name;
  if (ExprDepth >= 3)
    return "null";

  // Past depth 1, prefer a constructor-less subclass so allocation
  // chains stay shallow.
  int Alloc = subclassOf(Type);
  if (ExprDepth >= 1 && Classes[Alloc].HasCtor)
    for (int C = 0; C < int(Classes.size()); ++C)
      if (isSubclass(C, Type) && !Classes[C].HasCtor) {
        Alloc = C;
        break;
      }
  const ClassModel &C = Classes[Alloc];
  if (!C.HasCtor)
    return "new " + C.Name + "()";
  // The constructor needs an argument; synthesize one recursively into
  // a helper local first.
  std::string ArgName = "h" + std::to_string(NextLocal++);
  std::string ArgInit = exprOf(Out, C.CtorParamType, Locals, ExprDepth + 1);
  Out += Classes[C.CtorParamType].Name + " " + ArgName + " = " + ArgInit +
         ";\n";
  Locals.push_back({ArgName, C.CtorParamType});
  return "new " + C.Name + "(" + ArgName + ")";
}

void MiniJavaFuzzer::emitStmt(std::string &Out, int SelfClass,
                              std::vector<Local> &Locals, unsigned Depth) {
  if (StmtBudget == 0)
    return;
  --StmtBudget;

  enum {
    Decl,
    Copy,
    FieldStore,
    FieldLoad,
    CallMethod,
    NullAssign,
    IfBlock,
    Cast,
    NumKinds
  };
  unsigned Kind = pick(NumKinds);

  switch (Kind) {
  case Decl: {
    int Type = int(pick(unsigned(Classes.size())));
    std::string Pre;
    std::string Init = exprOf(Pre, Type, Locals);
    for (char Ch : Pre) { // re-indent helper lines
      if (!Out.empty() && Out.back() == '\n' && Ch != '\n')
        indent(Out, Depth);
      Out += Ch;
    }
    std::string Name = "v" + std::to_string(NextLocal++);
    indent(Out, Depth);
    Out += Classes[Type].Name + " " + Name + " = " + Init + ";\n";
    Locals.push_back({Name, Type});
    return;
  }

  case Copy: {
    // Pick a destination local, then a source that fits its type.  The
    // local is copied out: exprOf may grow Locals and invalidate
    // references into it.
    if (Locals.empty())
      return;
    Local Dst = Locals[pick(unsigned(Locals.size()))];
    std::string Pre;
    std::string Src = exprOf(Pre, Dst.Type, Locals);
    for (char Ch : Pre) {
      if (!Out.empty() && Out.back() == '\n' && Ch != '\n')
        indent(Out, Depth);
      Out += Ch;
    }
    indent(Out, Depth);
    Out += Dst.Name + " = " + Src + ";\n";
    return;
  }

  case FieldStore:
  case FieldLoad: {
    // Find a local whose class (or a superclass) declares a field.
    std::vector<std::pair<const Local *, std::pair<int, int>>> Cands;
    for (const Local &L : Locals)
      for (int C = L.Type; C != -1; C = Classes[C].Super)
        for (size_t F = 0; F < Classes[C].FieldNames.size(); ++F)
          Cands.push_back({&L, {C, int(F)}});
    if (Cands.empty())
      return;
    auto [L, CF] = Cands[pick(unsigned(Cands.size()))];
    std::string Base = L->Name; // copy before exprOf can grow Locals
    const ClassModel &C = Classes[CF.first];
    int FieldType = C.FieldTypes[CF.second];
    const std::string &FieldName = C.FieldNames[CF.second];
    if (Kind == FieldStore) {
      std::string Pre;
      std::string Src = exprOf(Pre, FieldType, Locals);
      for (char Ch : Pre) {
        if (!Out.empty() && Out.back() == '\n' && Ch != '\n')
          indent(Out, Depth);
        Out += Ch;
      }
      indent(Out, Depth);
      Out += Base + "." + FieldName + " = " + Src + ";\n";
    } else {
      std::string Name = "v" + std::to_string(NextLocal++);
      indent(Out, Depth);
      Out += Classes[FieldType].Name + " " + Name + " = " + Base + "." +
             FieldName + ";\n";
      Locals.push_back({Name, FieldType});
    }
    return;
  }

  case CallMethod: {
    // Virtual call on a local receiver.
    std::vector<std::pair<const Local *, std::pair<int, int>>> Cands;
    for (const Local &L : Locals)
      for (int C = L.Type; C != -1; C = Classes[C].Super)
        for (size_t M = 0; M < Classes[C].MethodNames.size(); ++M)
          Cands.push_back({&L, {C, int(M)}});
    if (Cands.empty())
      return;
    auto [L, CM] = Cands[pick(unsigned(Cands.size()))];
    std::string Recv = L->Name; // copy before exprOf can grow Locals
    const ClassModel &C = Classes[CM.first];
    std::string Pre;
    std::string Arg = exprOf(Pre, C.MethodParamTypes[CM.second], Locals);
    for (char Ch : Pre) {
      if (!Out.empty() && Out.back() == '\n' && Ch != '\n')
        indent(Out, Depth);
      Out += Ch;
    }
    std::string Name = "v" + std::to_string(NextLocal++);
    indent(Out, Depth);
    Out += "Object " + Name + " = " + Recv + "." +
           C.MethodNames[CM.second] + "(" + Arg + ");\n";
    return;
  }

  case NullAssign: {
    if (Locals.empty())
      return;
    Local &Dst = Locals[pick(unsigned(Locals.size()))];
    indent(Out, Depth);
    Out += Dst.Name + " = null;\n";
    return;
  }

  case IfBlock: {
    if (Depth >= 4)
      return;
    indent(Out, Depth);
    Out += "if (true) {\n";
    unsigned Inner = 1 + pick(3);
    std::vector<Local> Scoped = Locals; // block scope: copies may shadow
    for (unsigned I = 0; I < Inner; ++I)
      emitStmt(Out, SelfClass, Scoped, Depth + 1);
    indent(Out, Depth);
    Out += "}\n";
    return;
  }

  case Cast: {
    // Downcast an Object-typed expression to a random class.
    if (Locals.empty())
      return;
    const Local &Src = Locals[pick(unsigned(Locals.size()))];
    int Target = subclassOf(Src.Type); // a downcast within the hierarchy
    std::string Name = "v" + std::to_string(NextLocal++);
    indent(Out, Depth);
    Out += Classes[Target].Name + " " + Name + " = (" +
           Classes[Target].Name + ") " + Src.Name + ";\n";
    Locals.push_back({Name, Target});
    return;
  }

  default:
    return;
  }
}

void MiniJavaFuzzer::emitBody(std::string &Out, int SelfClass,
                              std::vector<Local> Locals, unsigned Depth) {
  unsigned NumStmts = 2 + pick(5);
  for (unsigned I = 0; I < NumStmts; ++I)
    emitStmt(Out, SelfClass, Locals, Depth);
}

std::string MiniJavaFuzzer::generate() {
  Classes.clear();
  Source.clear();
  NextLocal = 0;
  StmtBudget = 120; // global cap keeps programs small and fast

  emitClasses();

  for (int I = 0; I < int(Classes.size()); ++I) {
    const ClassModel &C = Classes[I];
    Source += "class " + C.Name;
    if (C.Super != -1)
      Source += " extends " + Classes[C.Super].Name;
    Source += " {\n";
    for (size_t F = 0; F < C.FieldNames.size(); ++F)
      Source += "  " + Classes[C.FieldTypes[F]].Name + " " +
                C.FieldNames[F] + ";\n";
    if (C.HasCtor) {
      Source += "  " + C.Name + "(" + Classes[C.CtorParamType].Name +
                " p) {\n";
      std::vector<Local> Locals = {{"p", C.CtorParamType}};
      // Constructors commonly store their argument into a field.
      for (size_t F = 0; F < C.FieldNames.size(); ++F)
        if (isSubclass(C.CtorParamType, C.FieldTypes[F])) {
          Source += "    this." + C.FieldNames[F] + " = p;\n";
          break;
        }
      emitBody(Source, I, Locals, 2);
      Source += "  }\n";
    }
    for (size_t M = 0; M < C.MethodNames.size(); ++M) {
      int ParamType = C.MethodParamTypes[M];
      Source += "  Object " + C.MethodNames[M] + "(" +
                Classes[ParamType].Name + " p) {\n";
      std::vector<Local> Locals = {{"p", ParamType}};
      emitBody(Source, I, Locals, 2);
      // Return something type-correct; p is always in scope.
      Source += "    return p;\n";
      Source += "  }\n";
    }
    Source += "}\n";
  }

  // The driver class ties everything together.
  Source += "class Driver {\n  static void main() {\n";
  std::vector<Local> Locals;
  StmtBudget += 40;
  emitBody(Source, -1, Locals, 2);
  Source += "  }\n}\n";
  return Source;
}
