//===----------------------------------------------------------------------===//
///
/// \file
/// Torture tests of the tiered summary store.
///
/// The hot tier's contract is that striping is INVISIBLE except in the
/// counters: any interleaving of fetch/publish/invalidate/
/// beginGeneration must answer exactly like the single-threaded
/// reference store fed the same operation log.  The suite locks that
/// down three ways:
///
///   * an oracle-equivalence replay: a fuzzed op log (pinned and
///     unpinned fetches and publishes, generation bumps with real
///     invalidation plans, clears) runs against the striped store at
///     stripe counts 1/4/16 and against a plain map oracle; every
///     probe must agree hit-for-miss and byte-for-byte, every counter
///     must land on the oracle's exact count — including
///     LockContended == 0, the exact-contention-accounting fix;
///
///   * a reader/writer/committer hammer whose every successful fetch
///     must be bit-identical to the deterministic per-key summary the
///     writers publish (runs under the CI TSan job);
///
///   * disk-tier semantics: promotion, per-method invalidation since
///     attach, detach on clear, fingerprint rejection, and corrupt
///     records degrading to misses — never to crashes or damaged
///     summaries.
///
//===----------------------------------------------------------------------===//

#include "engine/TieredStore.h"

#include "analysis/DynSum.h"
#include "analysis/SummaryIO.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"

#include "TestPrograms.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <random>
#include <thread>

using namespace dynsum;
using namespace dynsum::engine;
using analysis::AnalysisOptions;
using analysis::PortableSummary;
using analysis::RsmState;
using incremental::InvalidationPlan;

namespace {

//===----------------------------------------------------------------------===//
// Fixture and deterministic key/summary universe
//===----------------------------------------------------------------------===//

struct Fixture {
  Fixture() {
    ir::ParseResult R = ir::parseProgram(dynsum::testing::kFigure2Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  const pag::PAG &graph() const { return *Built.Graph; }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

/// One summary key.  The universe is every graph node crossed with a
/// few field stacks and both states — enough keys to populate every
/// stripe at 16 stripes.
struct Key {
  pag::NodeId Node;
  std::vector<uint32_t> Fields;
  RsmState State;
};

std::vector<Key> keyUniverse(const pag::PAG &G) {
  const std::vector<std::vector<uint32_t>> Stacks = {{}, {1}, {2, 7}};
  std::vector<Key> Keys;
  for (uint32_t N = 0; N < G.numNodes(); ++N)
    for (const std::vector<uint32_t> &F : Stacks)
      for (RsmState S : {RsmState::S1, RsmState::S2})
        Keys.push_back(Key{pag::NodeId(N), F, S});
  return Keys;
}

/// The deterministic summary every publisher computes for a key: the
/// store's append-only contract assumes all writers agree, and the
/// readers below verify fetched bytes against exactly this function.
PortableSummary summaryFor(const pag::PAG &G, const Key &K) {
  uint64_t H = summaryKeyDigest(K.Node, K.Fields, K.State);
  PortableSummary S;
  size_t NumAllocs = G.program().allocs().size();
  S.Objects.push_back(ir::AllocId(H % NumAllocs));
  if (H & 4)
    S.Objects.push_back(ir::AllocId((H >> 7) % NumAllocs));
  for (unsigned I = 0; I < (H & 3); ++I) {
    PortableSummary::Tuple T;
    T.Node = pag::NodeId((H >> (8 * I + 3)) % G.numNodes());
    T.State = (H >> I) & 1 ? RsmState::S2 : RsmState::S1;
    T.FieldsLen = 0;
    S.Tuples.push_back(T);
  }
  return S;
}

bool sameSummary(const PortableSummary &A, const PortableSummary &B) {
  if (A.Objects != B.Objects || A.FieldData != B.FieldData ||
      A.Tuples.size() != B.Tuples.size())
    return false;
  for (size_t I = 0; I < A.Tuples.size(); ++I)
    if (A.Tuples[I].Node != B.Tuples[I].Node ||
        A.Tuples[I].State != B.Tuples[I].State ||
        A.Tuples[I].FieldsLen != B.Tuples[I].FieldsLen)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// The single-threaded reference store
//===----------------------------------------------------------------------===//

/// The oracle: the store's documented semantics in their plainest
/// possible form.  One flat map, one generation counter, no locks, no
/// stripes, no tiers.
struct OracleStore {
  using MapKey = std::tuple<uint32_t, int, std::vector<uint32_t>>;

  static MapKey keyOf(const Key &K) {
    return {K.Node, int(K.State), K.Fields};
  }

  bool fetchAt(uint64_t AtGen, const Key &K, PortableSummary &Out) {
    if (AtGen != Gen)
      return false;
    auto It = Map.find(keyOf(K));
    if (It == Map.end())
      return false;
    Out = It->second;
    return true;
  }

  /// Returns whether the summary was actually inserted (first writer
  /// wins).
  bool publishAt(uint64_t AtGen, const Key &K, PortableSummary Summary) {
    if (AtGen != Gen)
      return false;
    return Map.emplace(keyOf(K), std::move(Summary)).second;
  }

  size_t beginGeneration(const pag::PAG &G, const InvalidationPlan &Plan) {
    size_t Dropped = 0;
    for (auto It = Map.begin(); It != Map.end();) {
      pag::NodeId N = std::get<0>(It->first);
      if (N >= G.numNodes() ||
          Plan.Methods.count(G.node(N).Method) != 0) {
        It = Map.erase(It);
        ++Dropped;
      } else {
        ++It;
      }
    }
    ++Gen;
    return Dropped;
  }

  size_t clear() {
    size_t Dropped = Map.size();
    Map.clear();
    ++Gen;
    return Dropped;
  }

  uint64_t Gen = 0;
  std::map<MapKey, PortableSummary> Map;
};

} // namespace

//===----------------------------------------------------------------------===//
// Oracle equivalence with exact counters, at 1 / 4 / 16 stripes
//===----------------------------------------------------------------------===//

TEST(TieredStoreOracleTest, FuzzedOpLogMatchesOracleExactly) {
  Fixture F;
  std::vector<Key> Keys = keyUniverse(F.graph());
  ASSERT_GT(Keys.size(), 100u);
  std::vector<ir::MethodId> Methods;
  for (const ir::Method &M : F.Prog->methods())
    Methods.push_back(M.Id);

  for (unsigned Stripes : {1u, 4u, 16u}) {
    TieredSummaryStore Store(Stripes);
    ASSERT_EQ(Store.numStripes(), Stripes);
    OracleStore Oracle;
    StoreCounters Exp; // the oracle's exact expected counter values

    // Same seed for every stripe count: striping must be invisible.
    std::mt19937_64 Rng(0xd15c0);
    for (unsigned Op = 0; Op < 6000; ++Op) {
      unsigned Roll = Rng() % 100;
      const Key &K = Keys[Rng() % Keys.size()];
      // Mostly the current generation; sometimes a stale epoch, which
      // must miss / drop and count as exactly one Stale*.
      uint64_t AtGen = Oracle.Gen;
      bool Stale = Oracle.Gen > 0 && Rng() % 8 == 0;
      if (Stale)
        AtGen = Oracle.Gen - 1 - Rng() % Oracle.Gen;

      if (Roll < 45) { // pinned fetch
        PortableSummary Got, Want;
        bool GotHit = Store.fetchAt(AtGen, K.Node, K.Fields, K.State, Got);
        bool WantHit = Oracle.fetchAt(AtGen, K, Want);
        ASSERT_EQ(GotHit, WantHit) << "op " << Op;
        if (GotHit) {
          EXPECT_TRUE(sameSummary(Got, Want)) << "op " << Op;
          EXPECT_TRUE(sameSummary(Got, summaryFor(F.graph(), K)));
        }
        ++Exp.Fetches;
        if (AtGen != Oracle.Gen)
          ++Exp.StaleFetches;
        else if (WantHit)
          ++Exp.Hits;
      } else if (Roll < 55) { // unpinned fetch
        PortableSummary Got, Want;
        bool GotHit = Store.fetch(K.Node, K.Fields, K.State, Got);
        bool WantHit = Oracle.fetchAt(Oracle.Gen, K, Want);
        ASSERT_EQ(GotHit, WantHit) << "op " << Op;
        if (GotHit) {
          EXPECT_TRUE(sameSummary(Got, Want)) << "op " << Op;
        }
        ++Exp.Fetches;
        if (WantHit)
          ++Exp.Hits;
      } else if (Roll < 85) { // pinned publish
        Store.publishAt(AtGen, K.Node, K.Fields, K.State,
                        summaryFor(F.graph(), K));
        bool Inserted =
            Oracle.publishAt(AtGen, K, summaryFor(F.graph(), K));
        if (AtGen != Oracle.Gen)
          ++Exp.StalePublishes;
        else if (Inserted)
          ++Exp.Publishes;
      } else if (Roll < 93) { // unpinned publish
        Store.publish(K.Node, K.Fields, K.State, summaryFor(F.graph(), K));
        if (Oracle.publishAt(Oracle.Gen, K, summaryFor(F.graph(), K)))
          ++Exp.Publishes;
      } else if (Roll < 98) { // commit: invalidate 0-2 methods
        InvalidationPlan Plan;
        for (unsigned I = Rng() % 3; I > 0; --I)
          Plan.Methods.insert(Methods[Rng() % Methods.size()]);
        size_t Got = Store.beginGeneration(F.graph(), Plan);
        size_t Want = Oracle.beginGeneration(F.graph(), Plan);
        ASSERT_EQ(Got, Want) << "op " << Op;
        Exp.Invalidated += Want;
      } else { // clear
        Exp.Invalidated += Oracle.clear();
        Store.clear();
      }
      ASSERT_EQ(Store.generation(), Oracle.Gen) << "op " << Op;
      if (Op % 512 == 0) {
        ASSERT_EQ(Store.size(), Oracle.Map.size()) << "op " << Op;
      }
    }

    EXPECT_EQ(Store.size(), Oracle.Map.size());

    // Counters are EXACT, not approximate: every probe, publish, drop
    // and stale refusal lands on the oracle's count — and nothing in a
    // single-threaded run may ever report lock contention (the old
    // store's direct-lock paths silently undercounted; the striped
    // map's counting helpers are the only way in).
    StoreCounters C = Store.counters();
    EXPECT_EQ(C.Fetches, Exp.Fetches) << Stripes << " stripes";
    EXPECT_EQ(C.Hits, Exp.Hits) << Stripes << " stripes";
    EXPECT_EQ(C.StaleFetches, Exp.StaleFetches) << Stripes << " stripes";
    EXPECT_EQ(C.Publishes, Exp.Publishes) << Stripes << " stripes";
    EXPECT_EQ(C.StalePublishes, Exp.StalePublishes) << Stripes << " stripes";
    EXPECT_EQ(C.Invalidated, Exp.Invalidated) << Stripes << " stripes";
    EXPECT_EQ(C.LockContended, 0u)
        << "single-threaded runs must never report contention";
    EXPECT_EQ(C.DiskProbes, 0u) << "no disk tier was attached";

    // Per-stripe counters must sum to the aggregate view.
    StoreCounters Sum;
    for (unsigned I = 0; I < Store.numStripes(); ++I) {
      StoreCounters SC = Store.stripeCounters(I);
      Sum.Fetches += SC.Fetches;
      Sum.Hits += SC.Hits;
      Sum.Publishes += SC.Publishes;
      Sum.Invalidated += SC.Invalidated;
    }
    EXPECT_EQ(Sum.Fetches, C.Fetches);
    EXPECT_EQ(Sum.Hits, C.Hits);
    EXPECT_EQ(Sum.Publishes, C.Publishes);
    EXPECT_EQ(Sum.Invalidated, C.Invalidated);
  }
}

//===----------------------------------------------------------------------===//
// Stripe isolation
//===----------------------------------------------------------------------===//

TEST(TieredStoreStripeTest, OperationsLandOnExactlyTheirKeysStripe) {
  Fixture F;
  TieredSummaryStore Store(16);
  std::vector<Key> Keys = keyUniverse(F.graph());

  // Publish one key, fetch it twice: its stripe sees exactly those
  // three operations, every other stripe stays at zero.
  const Key &K = Keys[7];
  unsigned SI = Store.stripeOf(K.Node, K.Fields, K.State);
  Store.publish(K.Node, K.Fields, K.State, summaryFor(F.graph(), K));
  PortableSummary Out;
  EXPECT_TRUE(Store.fetch(K.Node, K.Fields, K.State, Out));
  EXPECT_TRUE(Store.fetch(K.Node, K.Fields, K.State, Out));

  for (unsigned I = 0; I < Store.numStripes(); ++I) {
    StoreCounters C = Store.stripeCounters(I);
    if (I == SI) {
      EXPECT_EQ(C.Publishes, 1u);
      EXPECT_EQ(C.Fetches, 2u);
      EXPECT_EQ(C.Hits, 2u);
    } else {
      EXPECT_EQ(C.Publishes, 0u) << "stripe " << I;
      EXPECT_EQ(C.Fetches, 0u) << "stripe " << I;
    }
  }

  // The universe spreads: with 16 stripes and a few hundred keys, far
  // more than one stripe must be populated (top-bit selection).
  std::vector<bool> Touched(Store.numStripes(), false);
  for (const Key &U : Keys)
    Touched[Store.stripeOf(U.Node, U.Fields, U.State)] = true;
  unsigned Populated = 0;
  for (bool T : Touched)
    Populated += T;
  EXPECT_GT(Populated, Store.numStripes() / 2)
      << "digest top bits must spread keys across stripes";
}

//===----------------------------------------------------------------------===//
// Concurrency hammer: readers verify bit-identical summaries while
// writers publish and a committer bumps generations (TSan-checked)
//===----------------------------------------------------------------------===//

TEST(TieredStoreTortureTest, ConcurrentFetchPublishCommitStaysExact) {
  Fixture F;
  std::vector<Key> Keys = keyUniverse(F.graph());
  std::vector<ir::MethodId> Methods;
  for (const ir::Method &M : F.Prog->methods())
    Methods.push_back(M.Id);

  constexpr unsigned kWriters = 3;
  constexpr unsigned kReaders = 3;
  constexpr unsigned kOpsPerThread = 4000;
  constexpr unsigned kCommits = 40;

  TieredSummaryStore Store(4); // fewer stripes than threads: contention
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> BadSummaries{0};

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < kWriters; ++W) {
    Threads.emplace_back([&, W] {
      std::mt19937_64 Rng(1000 + W);
      for (unsigned I = 0; I < kOpsPerThread; ++I) {
        const Key &K = Keys[Rng() % Keys.size()];
        if (Rng() & 1) {
          Store.publish(K.Node, K.Fields, K.State,
                        summaryFor(F.graph(), K));
        } else {
          // Epoch-pinned writer: snapshot the generation like a batch
          // would; the publish must either land in that generation or
          // be dropped as stale — never migrate into a newer one.
          uint64_t Gen = Store.generation();
          Store.publishAt(Gen, K.Node, K.Fields, K.State,
                          summaryFor(F.graph(), K));
        }
      }
    });
  }
  for (unsigned R = 0; R < kReaders; ++R) {
    Threads.emplace_back([&, R] {
      std::mt19937_64 Rng(2000 + R);
      PortableSummary Out;
      for (unsigned I = 0; I < kOpsPerThread; ++I) {
        const Key &K = Keys[Rng() % Keys.size()];
        bool Hit = (Rng() & 1)
                       ? Store.fetch(K.Node, K.Fields, K.State, Out)
                       : Store.fetchAt(Store.generation(), K.Node, K.Fields,
                                       K.State, Out);
        // Whatever interleaving happened, a hit is only ever the
        // deterministic value for the key — never a torn or foreign
        // summary.
        if (Hit && !sameSummary(Out, summaryFor(F.graph(), K)))
          BadSummaries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread Committer([&] {
    std::mt19937_64 Rng(3000);
    for (unsigned I = 0; I < kCommits && !Stop.load(); ++I) {
      InvalidationPlan Plan;
      if (Rng() % 3 == 0)
        Plan.Methods.insert(Methods[Rng() % Methods.size()]);
      Store.beginGeneration(F.graph(), Plan);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (std::thread &T : Threads)
    T.join();
  Stop.store(true);
  Committer.join();

  EXPECT_EQ(BadSummaries.load(), 0u)
      << "a fetched summary differed from the single-threaded value";

  // Quiescent counter consistency: every probe either hit, was refused
  // stale, or missed; sizes add up across stripes.
  StoreCounters C = Store.counters();
  EXPECT_EQ(C.Fetches, uint64_t(kReaders) * kOpsPerThread);
  EXPECT_GE(C.Fetches, C.Hits + C.StaleFetches);
  EXPECT_GT(C.Publishes, 0u);
  EXPECT_LE(Store.size(), Keys.size());

  // Post-quiescence the store still answers exactly: drain every key.
  PortableSummary Out;
  uint64_t Gen = Store.generation();
  for (const Key &K : Keys) {
    if (Store.fetchAt(Gen, K.Node, K.Fields, K.State, Out)) {
      EXPECT_TRUE(sameSummary(Out, summaryFor(F.graph(), K)));
    }
  }
}

//===----------------------------------------------------------------------===//
// Disk tier: promotion, invalidation-since-attach, detach-on-clear
//===----------------------------------------------------------------------===//

namespace {

/// Warm a DYNSUM instance over Figure 2 with every Main.main variable,
/// save it, and return the decoded (key -> summary) list for probing.
struct DiskFixture {
  explicit DiskFixture(const std::string &Path) {
    ir::ParseResult R = ir::parseProgram(dynsum::testing::kFigure2Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
    analysis::DynSumAnalysis A(*Built.Graph, AnalysisOptions());
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal)
        A.query(Built.Graph->nodeOfVar(V.Id));
    EXPECT_GT(A.cacheSize(), 10u);
    EXPECT_TRUE(analysis::saveSummariesFile(A, Path));

    // Decode every cached key (packSummaryKey layout: bit 0 = state,
    // bits 1..32 = node, bits 33..63 = field-stack id) so the store
    // can be probed record-for-record.
    const StackPool &Stacks = A.fieldStacks();
    for (const auto &[Packed, Summary] : A.summaryCache()) {
      Key K;
      K.Node = pag::NodeId((Packed >> 1) & 0xffffffffu);
      K.State = (Packed & 1) == 0 ? RsmState::S1 : RsmState::S2;
      K.Fields = Stacks.elements(StackId{uint32_t(Packed >> 33)});
      Saved.emplace_back(K, A.exportSummary(Summary));
    }
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::vector<std::pair<Key, PortableSummary>> Saved;
};

} // namespace

TEST(TieredStoreDiskTest, ProbesPromoteAndSecondFetchHitsHot) {
  std::string Path = ::testing::TempDir() + "/tiered_disk_basic.dsum";
  DiskFixture F(Path);

  TieredSummaryStore Store;
  TieredSummaryStore::DiskTierStatus St =
      Store.attachDiskTier(Path, *F.Built.Graph);
  ASSERT_TRUE(St.Attached) << St.Error;
  EXPECT_EQ(St.Records, F.Saved.size());
  EXPECT_TRUE(St.Indexed) << "the writer appends a digest index";
  EXPECT_TRUE(Store.hasDiskTier());
  EXPECT_EQ(Store.size(), 0u) << "attach must not eagerly load anything";

  // Every saved record is served from disk, byte-identical, and
  // promoted; the second pass hits the hot tier without re-probing.
  PortableSummary Out;
  for (const auto &[K, Want] : F.Saved) {
    ASSERT_TRUE(Store.fetch(K.Node, K.Fields, K.State, Out));
    EXPECT_TRUE(sameSummary(Out, Want));
  }
  StoreCounters AfterCold = Store.counters();
  EXPECT_EQ(AfterCold.DiskProbes, F.Saved.size());
  EXPECT_EQ(AfterCold.DiskHits, F.Saved.size());
  EXPECT_EQ(AfterCold.Promoted, F.Saved.size());
  EXPECT_EQ(AfterCold.Hits, 0u);
  EXPECT_EQ(Store.size(), F.Saved.size());

  for (const auto &[K, Want] : F.Saved) {
    ASSERT_TRUE(Store.fetch(K.Node, K.Fields, K.State, Out));
    EXPECT_TRUE(sameSummary(Out, Want));
  }
  StoreCounters AfterWarm = Store.counters();
  EXPECT_EQ(AfterWarm.DiskProbes, AfterCold.DiskProbes)
      << "promoted entries must not re-probe the disk";
  EXPECT_EQ(AfterWarm.Hits, F.Saved.size());

  // A key that was never saved misses both tiers.
  EXPECT_FALSE(
      Store.fetch(F.Saved[0].first.Node, {9, 9, 9}, RsmState::S1, Out));
  EXPECT_EQ(Store.counters().DiskCorrupt, 0u);
}

TEST(TieredStoreDiskTest, InvalidatedMethodsAreRefusedFromDiskForever) {
  std::string Path = ::testing::TempDir() + "/tiered_disk_inval.dsum";
  DiskFixture F(Path);

  TieredSummaryStore Store;
  ASSERT_TRUE(Store.attachDiskTier(Path, *F.Built.Graph).Attached);

  // Pick a method with at least one saved record.
  ir::MethodId Victim = ir::kNone;
  for (const auto &[K, S] : F.Saved) {
    (void)S;
    ir::MethodId M = F.Built.Graph->node(K.Node).Method;
    if (M != ir::kNone) {
      Victim = M;
      break;
    }
  }
  ASSERT_NE(Victim, ir::kNone);

  InvalidationPlan Plan;
  Plan.Methods.insert(Victim);
  Store.beginGeneration(*F.Built.Graph, Plan);
  EXPECT_TRUE(Store.hasDiskTier())
      << "per-method invalidation keeps the tier, unlike clear()";

  PortableSummary Out;
  size_t Refused = 0, Served = 0;
  for (const auto &[K, Want] : F.Saved) {
    bool Hit = Store.fetch(K.Node, K.Fields, K.State, Out);
    bool VictimKey = F.Built.Graph->node(K.Node).Method == Victim;
    if (VictimKey) {
      EXPECT_FALSE(Hit) << "invalidated method served from disk";
      ++Refused;
    } else if (Hit) {
      EXPECT_TRUE(sameSummary(Out, Want));
      ++Served;
    }
  }
  EXPECT_GT(Refused, 0u);
  EXPECT_GT(Served, 0u);

  // The refusal is cumulative: a later no-op commit must not
  // resurrect the invalidated method's records.
  Store.beginGeneration(*F.Built.Graph, InvalidationPlan());
  for (const auto &[K, Want] : F.Saved) {
    (void)Want;
    if (F.Built.Graph->node(K.Node).Method == Victim) {
      EXPECT_FALSE(Store.fetch(K.Node, K.Fields, K.State, Out));
    }
  }
}

TEST(TieredStoreDiskTest, ClearDetachesAndMismatchedProgramRefuses) {
  std::string Path = ::testing::TempDir() + "/tiered_disk_detach.dsum";
  DiskFixture F(Path);

  TieredSummaryStore Store;
  ASSERT_TRUE(Store.attachDiskTier(Path, *F.Built.Graph).Attached);
  Store.clear();
  EXPECT_FALSE(Store.hasDiskTier())
      << "clear() branches the lineage; the tier must go";
  PortableSummary Out;
  const Key &K = F.Saved[0].first;
  EXPECT_FALSE(Store.fetch(K.Node, K.Fields, K.State, Out));
  EXPECT_EQ(Store.counters().DiskProbes, 0u);

  // A different program's graph must refuse the attach outright.
  ir::ParseResult R =
      ir::parseProgram(dynsum::testing::kStraightLineSource);
  ASSERT_TRUE(R.ok());
  pag::BuiltPAG Other = pag::buildPAG(*R.Prog);
  TieredSummaryStore Fresh;
  TieredSummaryStore::DiskTierStatus St =
      Fresh.attachDiskTier(Path, *Other.Graph);
  EXPECT_FALSE(St.Attached);
  EXPECT_NE(St.Error.find("fingerprint"), std::string::npos) << St.Error;
  EXPECT_FALSE(Fresh.hasDiskTier());
}

TEST(TieredStoreDiskTest, CorruptRecordsAreMissesNeverCrashes) {
  std::string Path = ::testing::TempDir() + "/tiered_disk_corrupt.dsum";
  DiskFixture F(Path);

  // Flip one byte inside EVERY record's payload, walking the v3
  // frames; the footer index stays intact, so lookups resolve and the
  // per-record CRC is the only line of defense.
  std::ifstream In(Path, std::ios::binary);
  std::string Buf((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Buf.size(), 44u);
  auto Get32 = [&](size_t Pos) {
    return uint32_t(uint8_t(Buf[Pos])) | uint32_t(uint8_t(Buf[Pos + 1])) << 8 |
           uint32_t(uint8_t(Buf[Pos + 2])) << 16 |
           uint32_t(uint8_t(Buf[Pos + 3])) << 24;
  };
  size_t Pos = 32;
  size_t Records = 0;
  while (Records < F.Saved.size()) {
    uint32_t Len = Get32(Pos);
    Buf[Pos + 12] = char(Buf[Pos + 12] ^ 0x5a);
    Pos += 12 + Len;
    ++Records;
  }
  std::ofstream OutF(Path, std::ios::binary | std::ios::trunc);
  OutF.write(Buf.data(), std::streamsize(Buf.size()));
  OutF.close();

  TieredSummaryStore Store;
  TieredSummaryStore::DiskTierStatus St =
      Store.attachDiskTier(Path, *F.Built.Graph);
  ASSERT_TRUE(St.Attached) << St.Error
                           << " (payload damage must not refuse the attach)";

  // Every probe must degrade to a miss — no crash, no damaged bytes
  // handed out — and the corruption must be visible in the counters.
  PortableSummary Out;
  for (const auto &[K, Want] : F.Saved) {
    (void)Want;
    EXPECT_FALSE(Store.fetch(K.Node, K.Fields, K.State, Out));
  }
  StoreCounters C = Store.counters();
  EXPECT_EQ(C.DiskProbes, F.Saved.size());
  EXPECT_EQ(C.DiskHits, 0u);
  EXPECT_EQ(C.DiskCorrupt, F.Saved.size());
  EXPECT_EQ(Store.size(), 0u);

  // Corruption is counted once per record, not once per probe.
  for (const auto &[K, Want] : F.Saved) {
    (void)Want;
    EXPECT_FALSE(Store.fetch(K.Node, K.Fields, K.State, Out));
  }
  EXPECT_EQ(Store.counters().DiskCorrupt, F.Saved.size());
  std::remove(Path.c_str());
}

TEST(TieredStoreDiskTest, ConcurrentColdProbesPromoteOnceAndStayExact) {
  std::string Path = ::testing::TempDir() + "/tiered_disk_conc.dsum";
  DiskFixture F(Path);

  TieredSummaryStore Store;
  ASSERT_TRUE(Store.attachDiskTier(Path, *F.Built.Graph).Attached);

  constexpr unsigned kThreads = 6;
  std::atomic<uint64_t> Bad{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      std::mt19937_64 Rng(500 + T);
      PortableSummary Out;
      // Every thread sweeps all keys in a different order: the first
      // toucher of a key races others through probe + promote, and
      // every one of them must still see the exact bytes.
      std::vector<size_t> Order(F.Saved.size());
      for (size_t I = 0; I < Order.size(); ++I)
        Order[I] = I;
      std::shuffle(Order.begin(), Order.end(), Rng);
      for (size_t I : Order) {
        const auto &[K, Want] = F.Saved[I];
        if (!Store.fetch(K.Node, K.Fields, K.State, Out) ||
            !sameSummary(Out, Want))
          Bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Bad.load(), 0u);
  StoreCounters C = Store.counters();
  // Each of the kThreads * records fetches either hit hot or came off
  // disk; exactly one promotion per record made it into the hot tier.
  EXPECT_EQ(C.Hits + C.DiskHits, uint64_t(kThreads) * F.Saved.size());
  EXPECT_EQ(C.Promoted, F.Saved.size());
  EXPECT_EQ(C.DiskCorrupt, 0u);
  EXPECT_EQ(Store.size(), F.Saved.size());
  std::remove(Path.c_str());
}
