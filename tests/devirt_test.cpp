//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the Devirt client: proving virtual call sites monomorphic
/// from demand points-to answers (the JIT inlining use case motivating
/// the paper's low-budget setting).
///
//===----------------------------------------------------------------------===//

#include "clients/Client.h"

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "frontend/Frontend.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::clients;

namespace {

/// A hierarchy where CHA sees two overrides of work() but each call
/// site's receiver is points-to-monomorphic.
const char *kMonomorphicSource = R"(
  class Task { Object work() { return null; } }
  class Fast extends Task { Object work() { return null; } }
  class Slow extends Task { Object work() { return null; } }
  class Main {
    static void main() {
      Task f = new Fast();
      Object a = f.work();
      Task s = new Slow();
      Object b = s.work();
    }
  }
)";

/// A receiver that really is polymorphic (both allocations flow in).
const char *kPolymorphicSource = R"(
  class Task { Object work() { return null; } }
  class Fast extends Task { Object work() { return null; } }
  class Slow extends Task { Object work() { return null; } }
  class Main {
    static Task pick(Task x, Task y) {
      if (true) { return x; }
      return y;
    }
    static void main() {
      Task t = Main.pick(new Fast(), new Slow());
      Object r = t.work();
    }
  }
)";

class DevirtFixture {
public:
  explicit DevirtFixture(const char *Source) {
    frontend::CompileResult R = frontend::compileMiniJava(Source);
    EXPECT_TRUE(R.ok()) << R.Diags.str();
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  const pag::PAG &graph() const { return *Built.Graph; }

  /// Runs the client against DYNSUM and returns the per-query verdicts
  /// in query order.
  std::vector<Verdict> verdicts(uint64_t Budget = 75000) {
    analysis::AnalysisOptions Opts;
    Opts.BudgetPerQuery = Budget;
    analysis::DynSumAnalysis DynSum(graph(), Opts);
    DevirtClient Client;
    std::vector<Verdict> Out;
    for (const ClientQuery &Q : Client.makeQueries(graph(), 0))
      Out.push_back(Client.judge(graph(), Q, DynSum.query(Q.Node)));
    return Out;
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

TEST(DevirtTest, ChaPolymorphicButPointsToMonomorphicIsProven) {
  DevirtFixture F(kMonomorphicSource);
  std::vector<Verdict> V = F.verdicts();
  ASSERT_EQ(V.size(), 2u) << "both work() sites are CHA-polymorphic";
  EXPECT_EQ(V[0], Verdict::Proven);
  EXPECT_EQ(V[1], Verdict::Proven);
}

TEST(DevirtTest, TrulyPolymorphicReceiverIsRefuted) {
  DevirtFixture F(kPolymorphicSource);
  std::vector<Verdict> V = F.verdicts();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], Verdict::Refuted);
}

TEST(DevirtTest, ChaMonomorphicSitesAreNotQueried) {
  DevirtFixture F(R"(
    class Only { Object m() { return null; } }
    class Main {
      static void main() {
        Only o = new Only();
        Object r = o.m();
      }
    }
  )");
  DevirtClient Client;
  EXPECT_TRUE(Client.makeQueries(F.graph(), 0).empty())
      << "single-implementation calls devirtualize without points-to";
}

TEST(DevirtTest, InheritedMethodCountsAsBaseTarget) {
  // Fast does not override work(): a receiver set {Fast, Task} still
  // dispatches to the single Task.work implementation.
  DevirtFixture F(R"(
    class Task { Object work() { return null; } }
    class Fast extends Task { }
    class Slow extends Task { Object work() { return null; } }
    class Main {
      static Task pick(Task x, Task y) {
        if (true) { return x; }
        return y;
      }
      static void main() {
        Task t = Main.pick(new Fast(), new Task());
        Object r = t.work();
      }
    }
  )");
  std::vector<Verdict> V = F.verdicts();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], Verdict::Proven)
      << "both receiver classes dispatch to Task.work";
}

TEST(DevirtTest, NullReceiversDispatchNowhere) {
  DevirtFixture F(R"(
    class Task { Object work() { return null; } }
    class Fast extends Task { Object work() { return null; } }
    class Main {
      static void main() {
        Task t = new Fast();
        if (true) { t = null; }
        Object r = t.work();
      }
    }
  )");
  std::vector<Verdict> V = F.verdicts();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], Verdict::Proven)
      << "the null branch throws; only Fast.work remains";
}

TEST(DevirtTest, BudgetExhaustionYieldsUnknown) {
  DevirtFixture F(kPolymorphicSource);
  std::vector<Verdict> V = F.verdicts(/*Budget=*/1);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], Verdict::Unknown);
}

TEST(DevirtTest, VerdictsAgreeAcrossAnalyses) {
  DevirtFixture F(kMonomorphicSource);
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);
  analysis::RefinePtsAnalysis Refine(F.graph(), Opts);
  DevirtClient Client;
  for (const ClientQuery &Q : Client.makeQueries(F.graph(), 0)) {
    Verdict A = Client.judge(F.graph(), Q, DynSum.query(Q.Node));
    Verdict B = Client.judge(
        F.graph(), Q, Refine.query(Q.Node, Client.predicate(F.graph(), Q)));
    EXPECT_EQ(A, B);
  }
}

TEST(DevirtTest, RunClientAggregatesReports) {
  DevirtFixture F(kMonomorphicSource);
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);
  DevirtClient Client;
  auto Queries = Client.makeQueries(F.graph(), 0);
  ClientReport Report = runClient(Client, DynSum, Queries);
  EXPECT_EQ(Report.NumQueries, 2u);
  EXPECT_EQ(Report.Proven, 2u);
  EXPECT_EQ(Report.Refuted, 0u);
  EXPECT_GT(Report.TotalSteps, 0u);
}

TEST(DevirtTest, MakeAllClientsIncludesDevirt) {
  auto Clients = makeAllClients();
  ASSERT_EQ(Clients.size(), 4u);
  EXPECT_STREQ(Clients.back()->name(), "Devirt");
}

} // namespace
