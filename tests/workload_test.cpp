//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Table 3 specs and the synthetic program generator.
///
//===----------------------------------------------------------------------===//

#include "clients/Client.h"
#include "ir/Printer.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"
#include "analysis/Andersen.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::workload;

TEST(BenchmarkSpecTest, NineBenchmarksInPaperOrder) {
  const auto &Suite = paperSuite();
  ASSERT_EQ(Suite.size(), 9u);
  EXPECT_EQ(Suite.front().Name, "jack");
  EXPECT_EQ(Suite.back().Name, "xalan");
}

TEST(BenchmarkSpecTest, PrintedLocalityMatchesEdgeColumns) {
  // Table 3's locality column must be consistent with its own edge
  // columns (a transcription check on our data entry).
  for (const BenchmarkSpec &S : paperSuite())
    EXPECT_NEAR(S.computedLocality(), S.LocalityPct, 0.15) << S.Name;
}

TEST(BenchmarkSpecTest, LookupByName) {
  EXPECT_EQ(specByName("jython").Name, "jython");
  EXPECT_EQ(specByName("xalan").QueryNullDeref, 10872u);
}

TEST(GeneratorTest, AllSpecsProduceValidPrograms) {
  GenOptions GO;
  GO.Scale = 1.0 / 256;
  for (const BenchmarkSpec &S : paperSuite()) {
    std::unique_ptr<ir::Program> P = generateProgram(S, GO);
    std::vector<std::string> Problems = ir::validate(*P);
    EXPECT_TRUE(Problems.empty())
        << S.Name << ": " << (Problems.empty() ? "" : Problems[0]);
    EXPECT_GT(P->methods().size(), 10u) << S.Name;
    EXPECT_GT(P->allocs().size(), 10u) << S.Name;
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GenOptions GO;
  GO.Scale = 1.0 / 256;
  std::unique_ptr<ir::Program> A =
      generateProgram(specByName("bloat"), GO);
  std::unique_ptr<ir::Program> B =
      generateProgram(specByName("bloat"), GO);
  EXPECT_EQ(ir::programToString(*A), ir::programToString(*B));
}

TEST(GeneratorTest, SeedChangesTheProgram) {
  GenOptions A, B;
  A.Scale = B.Scale = 1.0 / 256;
  B.Seed = 99;
  EXPECT_NE(ir::programToString(*generateProgram(specByName("bloat"), A)),
            ir::programToString(*generateProgram(specByName("bloat"), B)));
}

TEST(GeneratorTest, DistinctBenchmarksDiffer) {
  GenOptions GO;
  GO.Scale = 1.0 / 256;
  EXPECT_NE(ir::programToString(*generateProgram(specByName("jack"), GO)),
            ir::programToString(*generateProgram(specByName("xalan"), GO)));
}

TEST(GeneratorTest, LocalityLandsInThePaperBand) {
  GenOptions GO;
  GO.Scale = 1.0 / 32; // the harness's default bench scale
  for (const char *Name : {"jack", "soot-c"}) {
    std::unique_ptr<ir::Program> P = generateProgram(specByName(Name), GO);
    // The harness always narrows virtual dispatch with Andersen (the
    // paper's Spark-style call graph); plain CHA inflates entry edges.
    pag::BuiltPAG Built = analysis::buildPAGWithAndersenCallGraph(*P);
    double Locality = 100.0 * Built.Graph->stats().locality();
    EXPECT_GT(Locality, 55.0) << Name;
    EXPECT_LT(Locality, 97.0) << Name;
  }
  // Low-assign programs (xalan) carry proportionally more mandatory
  // cross-method machinery at small scales; the band is wider.
  std::unique_ptr<ir::Program> P = generateProgram(specByName("xalan"), GO);
  pag::BuiltPAG Built = analysis::buildPAGWithAndersenCallGraph(*P);
  double Locality = 100.0 * Built.Graph->stats().locality();
  EXPECT_GT(Locality, 35.0);
  EXPECT_LT(Locality, 97.0);
}

TEST(GeneratorTest, ScaleGrowsTheProgram) {
  GenOptions Small, Large;
  Small.Scale = 1.0 / 256;
  Large.Scale = 1.0 / 64;
  const BenchmarkSpec &S = specByName("javac");
  std::unique_ptr<ir::Program> PS = generateProgram(S, Small);
  std::unique_ptr<ir::Program> PL = generateProgram(S, Large);
  EXPECT_LT(PS->variables().size(), PL->variables().size());
  EXPECT_LT(PS->allocs().size(), PL->allocs().size());
}

TEST(GeneratorTest, EveryClientFindsQueries) {
  GenOptions GO;
  GO.Scale = 1.0 / 128;
  std::unique_ptr<ir::Program> P = generateProgram(specByName("batik"), GO);
  pag::BuiltPAG Built = pag::buildPAG(*P);
  for (const auto &C : clients::makePaperClients())
    EXPECT_GT(C->makeQueries(*Built.Graph, 0).size(), 0u) << C->name();
}

TEST(GeneratorTest, RecursionCyclesExist) {
  GenOptions GO;
  GO.Scale = 1.0 / 64;
  std::unique_ptr<ir::Program> P = generateProgram(specByName("jython"), GO);
  pag::BuiltPAG Built = pag::buildPAG(*P);
  size_t Recursive = 0;
  for (ir::MethodId M = 0; M < P->methods().size(); ++M)
    Recursive += Built.Calls.isRecursive(M);
  EXPECT_GT(Recursive, 0u);
}

TEST(GeneratorTest, ScaledQueryCountsFollowTable3) {
  const BenchmarkSpec &S = specByName("xalan");
  EXPECT_EQ(scaledQueryCount(S, 0, 1.0), 4090u);
  EXPECT_EQ(scaledQueryCount(S, 1, 0.5), 5436u);
  EXPECT_EQ(scaledQueryCount(S, 2, 1.0), 1290u);
  // Tiny scales floor at a usable minimum.
  EXPECT_GE(scaledQueryCount(S, 0, 1e-9), 8u);
}

TEST(GeneratorTest, NullsArePresentForNullDeref) {
  GenOptions GO;
  GO.Scale = 1.0 / 64;
  std::unique_ptr<ir::Program> P = generateProgram(specByName("avrora"), GO);
  size_t Nulls = 0;
  for (const ir::AllocSite &A : P->allocs())
    Nulls += A.IsNull;
  EXPECT_GT(Nulls, 0u);
}
