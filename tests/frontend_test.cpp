//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the MiniJava frontend: lexer, parser, sema diagnostics,
/// lowering to the pointer IR, and end-to-end integration with the
/// PAG and the demand-driven analyses.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "frontend/Lexer.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dynsum;
using namespace dynsum::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<TokenKind> kindsOf(std::string_view Source) {
  Lexer L(Source);
  std::vector<TokenKind> Kinds;
  for (const Token &T : L.lexAll())
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Kinds = kindsOf("class extends void classy thisx this");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{
                       TokenKind::KwClass, TokenKind::KwExtends,
                       TokenKind::KwVoid, TokenKind::Identifier,
                       TokenKind::Identifier, TokenKind::KwThis,
                       TokenKind::Eof}));
}

TEST(LexerTest, OperatorsIncludingTwoCharacter) {
  auto Kinds = kindsOf("= == ! != && || < > + - * /");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{
                       TokenKind::Assign, TokenKind::EqEq, TokenKind::Not,
                       TokenKind::NotEq, TokenKind::AndAnd, TokenKind::OrOr,
                       TokenKind::Less, TokenKind::Greater, TokenKind::Plus,
                       TokenKind::Minus, TokenKind::Star, TokenKind::Slash,
                       TokenKind::Eof}));
}

TEST(LexerTest, IntAndStringLiterals) {
  Lexer L("42 \"hi there\" 0");
  std::vector<Token> Toks = L.lexAll();
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[0].Text, "42");
  EXPECT_EQ(Toks[1].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[1].Text, "\"hi there\"");
  EXPECT_EQ(Toks[2].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, CommentsAreTrivia) {
  auto Kinds = kindsOf("a // line comment\n b /* block\n comment */ c");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{
                       TokenKind::Identifier, TokenKind::Identifier,
                       TokenKind::Identifier, TokenKind::Eof}));
}

TEST(LexerTest, SourceLocationsTrackLinesAndColumns) {
  Lexer L("a\n  bb\n");
  std::vector<Token> Toks = L.lexAll();
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(LexerTest, InvalidCharacterYieldsErrorToken) {
  auto Kinds = kindsOf("a @ b");
  ASSERT_GE(Kinds.size(), 2u);
  EXPECT_EQ(Kinds[1], TokenKind::Error);
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  auto Kinds = kindsOf("\"oops");
  EXPECT_EQ(Kinds.front(), TokenKind::Error);
}

TEST(LexerTest, LoneAmpersandIsAnError) {
  auto Kinds = kindsOf("a & b");
  ASSERT_GE(Kinds.size(), 2u);
  EXPECT_EQ(Kinds[1], TokenKind::Error);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

CompilationUnit parseOk(std::string_view Source) {
  DiagnosticEngine Diags;
  CompilationUnit Unit = parseUnit(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Unit;
}

std::string firstParseError(std::string_view Source) {
  DiagnosticEngine Diags;
  parseUnit(Source, Diags);
  if (!Diags.hasErrors())
    return "";
  return Diags.all().front().Message;
}

std::string dumped(const CompilationUnit &Unit) {
  StringOStream OS;
  dumpAst(Unit, OS);
  return OS.str();
}

TEST(ParserTest, ClassWithExtendsAndMembers) {
  CompilationUnit Unit = parseOk(R"(
    class Shape {}
    class Circle extends Shape {
      int radius;
      static Circle unit;
      Shape[] parts;
      Circle(int r) { }
      int area() { return radius * radius * 3; }
      static Circle makeUnit() { return new Circle(1); }
    }
  )");
  ASSERT_EQ(Unit.Classes.size(), 2u);
  const ClassDecl &Circle = Unit.Classes[1];
  EXPECT_EQ(Circle.SuperName, "Shape");
  ASSERT_EQ(Circle.Fields.size(), 3u);
  EXPECT_FALSE(Circle.Fields[0].IsStatic);
  EXPECT_TRUE(Circle.Fields[1].IsStatic);
  EXPECT_TRUE(Circle.Fields[2].Type.IsArray);
  ASSERT_EQ(Circle.Methods.size(), 3u);
  EXPECT_TRUE(Circle.Methods[0].IsCtor);
  EXPECT_FALSE(Circle.Methods[1].IsStatic);
  EXPECT_TRUE(Circle.Methods[2].IsStatic);
}

TEST(ParserTest, PrecedenceInDump) {
  CompilationUnit Unit = parseOk(R"(
    class C { int f(int a, int b, int c) { return a + b * c; } }
  )");
  EXPECT_NE(dumped(Unit).find("return (a + (b * c));"), std::string::npos);
}

TEST(ParserTest, LogicalPrecedenceBelowComparison) {
  CompilationUnit Unit = parseOk(R"(
    class C { boolean f(int a, int b) { return a < b && b < a || true; } }
  )");
  EXPECT_NE(dumped(Unit).find("return (((a < b) && (b < a)) || true);"),
            std::string::npos);
}

TEST(ParserTest, CastVersusGrouping) {
  CompilationUnit Unit = parseOk(R"(
    class A {}
    class C {
      Object g(Object o, int x) {
        A a = (A) o;        // cast
        int y = (x) + 1;    // grouping
        A[] arr = (A[]) o;  // array cast
        return a;
      }
    }
  )");
  std::string Dump = dumped(Unit);
  EXPECT_NE(Dump.find("A a = (A) o;"), std::string::npos);
  EXPECT_NE(Dump.find("int y = (x + 1);"), std::string::npos);
  EXPECT_NE(Dump.find("A[] arr = (A[]) o;"), std::string::npos);
}

TEST(ParserTest, PostfixChains) {
  CompilationUnit Unit = parseOk(R"(
    class C {
      C next;
      C[] kids;
      C walk(int i) { return this.next.kids[i].walk(i); }
    }
  )");
  EXPECT_NE(dumped(Unit).find("return this.next.kids[i].walk(i);"),
            std::string::npos);
}

TEST(ParserTest, NewObjectAndNewArray) {
  CompilationUnit Unit = parseOk(R"(
    class C {
      void f() {
        C c = new C();
        C[] cs = new C[10];
        int[] xs = new int[3 + 4];
      }
    }
  )");
  std::string Dump = dumped(Unit);
  EXPECT_NE(Dump.find("new C()"), std::string::npos);
  EXPECT_NE(Dump.find("new C[10]"), std::string::npos);
  EXPECT_NE(Dump.find("new int[(3 + 4)]"), std::string::npos);
}

TEST(ParserTest, IfElseAndWhile) {
  CompilationUnit Unit = parseOk(R"(
    class C {
      int f(int n) {
        int acc = 0;
        while (n > 0) {
          if (n > 10) acc = acc + 2; else acc = acc + 1;
          n = n - 1;
        }
        return acc;
      }
    }
  )");
  const MethodDecl &M = Unit.Classes[0].Methods[0];
  ASSERT_EQ(M.Body->Body.size(), 3u);
  EXPECT_EQ(M.Body->Body[1]->Kind, StmtKind::While);
  EXPECT_EQ(M.Body->Body[1]->Then->Body[0]->Kind, StmtKind::If);
}

TEST(ParserTest, UnqualifiedAndQualifiedCalls) {
  CompilationUnit Unit = parseOk(R"(
    class C {
      void a() { b(); this.b(); C.s(); }
      void b() { }
      static void s() { }
    }
  )");
  std::string Dump = dumped(Unit);
  EXPECT_NE(Dump.find("b();"), std::string::npos);
  EXPECT_NE(Dump.find("this.b();"), std::string::npos);
  EXPECT_NE(Dump.find("C.s();"), std::string::npos);
}

TEST(ParserTest, MissingSemicolonIsReported) {
  EXPECT_NE(firstParseError("class C { void f() { int x = 1 } }"), "");
}

TEST(ParserTest, JunkAtTopLevelIsReported) {
  EXPECT_NE(firstParseError("int x;"), "");
}

TEST(ParserTest, BadAssignmentTargetIsReported) {
  std::string Error =
      firstParseError("class C { void f() { f() = null; } }");
  EXPECT_NE(Error.find("left-hand side"), std::string::npos);
}

TEST(ParserTest, RecoveryProducesSingleErrorPerStatement) {
  DiagnosticEngine Diags;
  parseUnit(R"(
    class C {
      void f() {
        int x = ;
        int y = 2;
      }
    }
  )",
            Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The second statement must still parse (recovery on ';').
  EXPECT_LE(Diags.all().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Sema diagnostics
//===----------------------------------------------------------------------===//

/// Compiles and returns the first diagnostic message; "" when clean.
std::string firstError(std::string_view Source) {
  CompileResult R = compileMiniJava(Source);
  if (!R.Diags.hasErrors())
    return "";
  return R.Diags.all().front().Message;
}

void expectClean(std::string_view Source) {
  CompileResult R = compileMiniJava(Source);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
}

TEST(SemaTest, DuplicateClass) {
  EXPECT_NE(firstError("class A {} class A {}").find("duplicate class"),
            std::string::npos);
}

TEST(SemaTest, ObjectIsReserved) {
  EXPECT_NE(firstError("class Object {}").find("reserved"),
            std::string::npos);
}

TEST(SemaTest, UnknownSuperclass) {
  EXPECT_NE(firstError("class A extends Missing {}").find("unknown superclass"),
            std::string::npos);
}

TEST(SemaTest, InheritanceCycle) {
  EXPECT_NE(
      firstError("class A extends B {} class B extends A {}").find("cycle"),
      std::string::npos);
}

TEST(SemaTest, DuplicateField) {
  EXPECT_NE(firstError("class A { A f; A f; }").find("duplicate field"),
            std::string::npos);
}

TEST(SemaTest, StaticAndInstanceFieldMayShareAName) {
  expectClean("class A { A f; static A f; }");
}

TEST(SemaTest, OverloadingRejected) {
  EXPECT_NE(firstError("class A { void f() {} void f(int x) {} }")
                .find("overloading"),
            std::string::npos);
}

TEST(SemaTest, OverrideMustMatchSignature) {
  EXPECT_NE(firstError(R"(
    class A { void f(int x) {} }
    class B extends A { void f(boolean x) {} }
  )")
                .find("exact signature"),
            std::string::npos);
}

TEST(SemaTest, OverrideReturnTypeMustMatch) {
  EXPECT_NE(firstError(R"(
    class A { Object f() { return null; } }
    class B extends A { int f() { return 1; } }
  )")
                .find("exact signature"),
            std::string::npos);
}

TEST(SemaTest, StaticInstanceConflictAcrossHierarchy) {
  EXPECT_NE(firstError(R"(
    class A { static void f() {} }
    class B extends A { void f() {} }
  )")
                .find("conflicts"),
            std::string::npos);
}

TEST(SemaTest, ValidOverrideAccepted) {
  expectClean(R"(
    class A { Object f(A x) { return x; } }
    class B extends A { Object f(A x) { return null; } }
  )");
}

TEST(SemaTest, UndeclaredVariable) {
  EXPECT_NE(firstError("class A { void f() { g = null; } }")
                .find("undeclared variable"),
            std::string::npos);
}

TEST(SemaTest, ClassNameAsValue) {
  EXPECT_NE(firstError("class A { void f() { Object o = A; } }")
                .find("used as a value"),
            std::string::npos);
}

TEST(SemaTest, RedeclarationInSameScope) {
  EXPECT_NE(firstError("class A { void f() { A x; A x; } }")
                .find("redeclaration"),
            std::string::npos);
}

TEST(SemaTest, ShadowingInNestedScopeAllowed) {
  expectClean(R"(
    class A {
      void f() {
        A x = new A();
        if (true) { A x = new A(); x = null; }
        x = null;
      }
    }
  )");
}

TEST(SemaTest, ThisInStaticMethod) {
  EXPECT_NE(firstError("class A { static void f() { A x = this; } }")
                .find("'this'"),
            std::string::npos);
}

TEST(SemaTest, ConditionMustBeBoolean) {
  EXPECT_NE(firstError("class A { void f() { if (1) { } } }")
                .find("condition must be boolean"),
            std::string::npos);
}

TEST(SemaTest, ArithmeticRequiresInts) {
  EXPECT_NE(firstError("class A { void f() { int x = true + 1; } }")
                .find("arithmetic operand"),
            std::string::npos);
}

TEST(SemaTest, AssignmentSubtyping) {
  expectClean(R"(
    class A {}
    class B extends A {}
    class C { void f() { A a = new B(); a = null; } }
  )");
  EXPECT_NE(firstError(R"(
    class A {}
    class B extends A {}
    class C { void f() { B b = new A(); } }
  )")
                .find("cannot use A as B"),
            std::string::npos);
}

TEST(SemaTest, ArraysAreInvariantButObjectAssignable) {
  EXPECT_NE(firstError(R"(
    class A {}
    class B extends A {}
    class C { void f() { A[] a = new B[1]; } }
  )")
                .find("cannot use"),
            std::string::npos);
  expectClean("class A { void f() { Object o = new A[1]; } }");
}

TEST(SemaTest, UnknownFieldAndPrimitiveBase) {
  EXPECT_NE(firstError("class A { void f(A a) { Object o = a.g; } }")
                .find("no field 'g'"),
            std::string::npos);
  EXPECT_NE(firstError("class A { void f(int x) { Object o = x.g; } }")
                .find("non-object"),
            std::string::npos);
}

TEST(SemaTest, ArrayLengthReadsButNeverWrites) {
  expectClean("class A { int f(A[] a) { return a.length; } }");
  EXPECT_NE(firstError("class A { void f(A[] a) { a.length = 3; } }")
                .find("read-only"),
            std::string::npos);
}

TEST(SemaTest, FieldHidingRejected) {
  // The IR keys fields by name program-wide; hiding would make two
  // different fields indistinguishable, so sema forbids it.
  EXPECT_NE(firstError(R"(
    class A { Object data; }
    class B extends A { Object data; }
  )")
                .find("hides an inherited field"),
            std::string::npos);
}

TEST(SemaTest, InheritedFieldsVisible) {
  expectClean(R"(
    class A { Object data; }
    class B extends A { Object get() { return this.data; } }
  )");
}

TEST(SemaTest, CallArityAndTypes) {
  EXPECT_NE(firstError(R"(
    class A { void f(A x) {} void g() { f(); } }
  )")
                .find("expected 1"),
            std::string::npos);
  EXPECT_NE(firstError(R"(
    class A { void f(A x) {} void g() { f(1); } }
  )")
                .find("cannot use int as A"),
            std::string::npos);
}

TEST(SemaTest, StaticCallThroughInstanceRejected) {
  EXPECT_NE(firstError(R"(
    class A { static void s() {} void f() { this.s(); } }
  )")
                .find("through its class name"),
            std::string::npos);
}

TEST(SemaTest, InstanceCallFromStaticRejected) {
  EXPECT_NE(firstError(R"(
    class A { void m() {} static void s() { m(); } }
  )")
                .find("from a static method"),
            std::string::npos);
}

TEST(SemaTest, StaticFieldResolution) {
  expectClean(R"(
    class Registry { static Object cache; }
    class User {
      void put(Object o) { Registry.cache = o; }
      Object get() { return Registry.cache; }
    }
  )");
  EXPECT_NE(firstError(R"(
    class Registry { }
    class User { Object get() { return Registry.missing; } }
  )")
                .find("no static field"),
            std::string::npos);
}

TEST(SemaTest, CtorChecks) {
  EXPECT_NE(firstError(R"(
    class A { }
    class C { void f() { A a = new A(1); } }
  )")
                .find("no constructor"),
            std::string::npos);
  EXPECT_NE(firstError(R"(
    class A { A(int x) {} }
    class C { void f() { A a = new A(); } }
  )")
                .find("takes 1 arguments"),
            std::string::npos);
  EXPECT_NE(firstError("class A { A() { return this; } }")
                .find("constructors may not return"),
            std::string::npos);
}

TEST(SemaTest, PrimitiveCastRejected) {
  EXPECT_NE(firstError("class A { void f(int x) { int y = (int) x; } }")
                .find("reference types"),
            std::string::npos);
}

TEST(SemaTest, ReturnChecks) {
  EXPECT_NE(firstError("class A { Object f() { return; } }")
                .find("must return a value"),
            std::string::npos);
  EXPECT_NE(firstError("class A { void f() { return null; } }")
                .find("may not return a value"),
            std::string::npos);
  EXPECT_NE(firstError(R"(
    class A {}
    class B { A f() { return new B(); } }
  )")
                .find("cannot use B as A"),
            std::string::npos);
}

TEST(SemaTest, EqualityOperandRules) {
  expectClean("class A { boolean f(A a, A b) { return a == b; } }");
  expectClean("class A { boolean f(A a) { return a != null; } }");
  EXPECT_NE(firstError("class A { boolean f(A a) { return a == 1; } }")
                .find("'=='"),
            std::string::npos);
}

TEST(SemaTest, UserDeclaredStringClassWins) {
  expectClean(R"(
    class String { String concat(String other) { return other; } }
    class C { String f() { return "hi".concat("there"); } }
  )");
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

/// Compiles \p Source, expecting success, and validates the IR.
std::unique_ptr<ir::Program> lowerOk(std::string_view Source) {
  CompileResult R = compileMiniJava(Source);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  if (!R.ok())
    return nullptr;
  std::vector<std::string> Problems = ir::validate(*R.Prog);
  EXPECT_TRUE(Problems.empty())
      << "IR validation failed: " << Problems.front();
  return std::move(R.Prog);
}

ir::MethodId methodOf(const ir::Program &P, std::string_view Cls,
                      std::string_view Name) {
  ir::TypeId T = P.findClass(P.names().lookup(Cls));
  EXPECT_NE(T, ir::kNone);
  ir::MethodId M = P.findMethod(T, P.names().lookup(Name));
  EXPECT_NE(M, ir::kNone);
  return M;
}

/// Number of statements of \p K in \p M.
size_t countStmts(const ir::Program &P, ir::MethodId M, ir::StmtKind K) {
  size_t N = 0;
  for (const ir::Statement &S : P.method(M).Stmts)
    if (S.Kind == K)
      ++N;
  return N;
}

TEST(LowerTest, StraightLineAllocAndAssign) {
  auto P = lowerOk(R"(
    class A {}
    class Main { static void main() { A x = new A(); A y = x; } }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "main");
  EXPECT_EQ(countStmts(*P, M, ir::StmtKind::Alloc), 1u);
  // y = x plus the temp copy x = $t0.
  EXPECT_EQ(countStmts(*P, M, ir::StmtKind::Assign), 2u);
}

TEST(LowerTest, ConstructorBecomesAllocPlusDirectInitCall) {
  auto P = lowerOk(R"(
    class Box { Object v; Box(Object o) { this.v = o; } }
    class Main { static void main() { Box b = new Box(null); } }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "main");
  EXPECT_EQ(countStmts(*P, M, ir::StmtKind::Alloc), 1u);
  ASSERT_EQ(countStmts(*P, M, ir::StmtKind::Call), 1u);
  for (const ir::Statement &S : P->method(M).Stmts)
    if (S.Kind == ir::StmtKind::Call) {
      EXPECT_FALSE(S.IsVirtual);
      ASSERT_NE(S.Callee, ir::kNone);
      EXPECT_EQ(P->names().text(P->method(S.Callee).Name), "<init>");
      ASSERT_EQ(S.Args.size(), 2u) << "receiver + 1 pointer arg";
    }
}

TEST(LowerTest, VirtualCallCarriesReceiverFirst) {
  auto P = lowerOk(R"(
    class A { Object id(Object o) { return o; } }
    class Main { static void main() { A a = new A(); Object r = a.id(null); } }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "main");
  bool SawVirtual = false;
  for (const ir::Statement &S : P->method(M).Stmts)
    if (S.Kind == ir::StmtKind::Call && S.IsVirtual) {
      SawVirtual = true;
      EXPECT_EQ(P->names().text(S.VirtualName), "id");
      ASSERT_EQ(S.Args.size(), 2u);
      EXPECT_EQ(S.Args[0], S.Base) << "receiver is the first argument";
      EXPECT_NE(S.Dst, ir::kNone) << "pointer-returning call gets a result";
    }
  EXPECT_TRUE(SawVirtual);
}

TEST(LowerTest, StaticFieldBecomesDottedGlobal) {
  auto P = lowerOk(R"(
    class Registry { static Object cache; }
    class Main { static void main() { Registry.cache = new Main(); } }
  )");
  ASSERT_TRUE(P);
  ir::VarId G = P->findGlobal(P->names().lookup("Registry.cache"));
  ASSERT_NE(G, ir::kNone);
  EXPECT_TRUE(P->variable(G).IsGlobal);
}

TEST(LowerTest, ArraysCollapseOntoArrField) {
  auto P = lowerOk(R"(
    class A {}
    class Main {
      static void main() {
        A[] xs = new A[4];
        xs[0] = new A();
        A head = xs[1];
      }
    }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "main");
  Symbol Arr = P->names().lookup("arr");
  size_t ArrStores = 0, ArrLoads = 0;
  for (const ir::Statement &S : P->method(M).Stmts) {
    if (S.Kind == ir::StmtKind::Store &&
        P->fields()[S.FieldLabel].Name == Arr)
      ++ArrStores;
    if (S.Kind == ir::StmtKind::Load && P->fields()[S.FieldLabel].Name == Arr)
      ++ArrLoads;
  }
  EXPECT_EQ(ArrStores, 1u);
  EXPECT_EQ(ArrLoads, 1u);
  EXPECT_NE(P->findClass(P->names().lookup("A[]")), ir::kNone)
      << "array class synthesized";
}

TEST(LowerTest, PrimitiveComputationVanishes) {
  auto P = lowerOk(R"(
    class Main {
      static int f(int a, int b) { return a * b + a / b - 1; }
    }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "f");
  EXPECT_TRUE(P->method(M).Stmts.empty());
  EXPECT_TRUE(P->method(M).Params.empty()) << "IR signature is pointers-only";
}

TEST(LowerTest, CallsInsideArithmeticKeepTheirEffects) {
  auto P = lowerOk(R"(
    class Main {
      static int g() { return 1; }
      static int f() { return Main.g() + Main.g(); }
    }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "f");
  EXPECT_EQ(countStmts(*P, M, ir::StmtKind::Call), 2u);
}

TEST(LowerTest, EveryNullGetsItsOwnSite) {
  auto P = lowerOk(R"(
    class Main { static void main() { Object a = null; Object b = null; } }
  )");
  ASSERT_TRUE(P);
  size_t NullSites = 0;
  for (const ir::AllocSite &A : P->allocs())
    if (A.IsNull)
      ++NullSites;
  EXPECT_EQ(NullSites, 2u);
}

TEST(LowerTest, CastsRecordSites) {
  auto P = lowerOk(R"(
    class A {}
    class B extends A {}
    class Main {
      static void main() {
        A a = new B();
        B down = (B) a;   // downcast: the interesting site
        A up = (A) down;  // upcast: still recorded; clients filter
      }
    }
  )");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->castSites().size(), 2u);
}

TEST(LowerTest, StringLiteralAllocatesString) {
  auto P = lowerOk(R"(
    class Main { static Object f() { return "hello"; } }
  )");
  ASSERT_TRUE(P);
  ir::TypeId StringTy = P->findClass(P->names().lookup("String"));
  ASSERT_NE(StringTy, ir::kNone);
  bool SawStringAlloc = false;
  for (const ir::AllocSite &A : P->allocs())
    if (A.Type == StringTy)
      SawStringAlloc = true;
  EXPECT_TRUE(SawStringAlloc);
}

TEST(LowerTest, BranchesLowerFlowInsensitively) {
  auto P = lowerOk(R"(
    class A {}
    class Main {
      static void main(boolean c) {
        A x;
        if (c) { x = new A(); } else { x = new A(); }
        while (c) { x = new A(); }
      }
    }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "main");
  EXPECT_EQ(countStmts(*P, M, ir::StmtKind::Alloc), 3u)
      << "all branches and the loop body lower";
}

TEST(LowerTest, ShadowedLocalsGetDistinctIrVariables) {
  auto P = lowerOk(R"(
    class A {}
    class Main {
      static void main() {
        A x = new A();
        if (true) { A x = new A(); x = x; }
      }
    }
  )");
  ASSERT_TRUE(P);
  ir::MethodId M = methodOf(*P, "Main", "main");
  size_t NamedX = 0;
  for (const ir::Variable &V : P->variables())
    if (!V.IsGlobal && V.Owner == M) {
      std::string_view Name = P->names().text(V.Name);
      if (Name == "x" || Name == "x#1")
        ++NamedX;
    }
  EXPECT_EQ(NamedX, 2u);
}

//===----------------------------------------------------------------------===//
// End-to-end integration with the analyses
//===----------------------------------------------------------------------===//

/// The paper's Figure 2 program, written in MiniJava instead of the
/// textual IR.  The Integer/String objects added to the two vectors are
/// the paper's o26/o29.
const char *kFigure2MiniJava = R"(
  class Integer {}
  class Vector {
    Object[] elems;
    int count;
    Vector() {
      Object[] t = new Object[8];
      this.elems = t;
    }
    void add(Object p) {
      Object[] t = this.elems;
      t[this.count] = p;
    }
    Object get(int i) {
      Object[] t = this.elems;
      return t[i];
    }
  }
  class Client {
    Vector vec;
    Client() {}
    void set(Vector v) { this.vec = v; }
    Object retrieve() {
      Vector t = this.vec;
      return t.get(0);
    }
  }
  class Main {
    static void main() {
      Vector v1 = new Vector();
      v1.add(new Integer());
      Client c1 = new Client();
      c1.set(v1);
      Vector v2 = new Vector();
      v2.add("marker");
      Client c2 = new Client();
      c2.set(v2);
      Object s1 = c1.retrieve();
      Object s2 = c2.retrieve();
    }
  }
)";

/// Fixture compiling MiniJava down to a PAG.
class MiniJavaFixture {
public:
  explicit MiniJavaFixture(std::string_view Source) {
    CompileResult R = compileMiniJava(Source);
    EXPECT_TRUE(R.ok()) << R.Diags.str();
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
  }

  const ir::Program &program() const { return *Prog; }
  const pag::PAG &graph() const { return *Built.Graph; }

  /// PAG node of the IR local holding source variable \p Name in
  /// \p Cls.\p Method (lowered names are unchanged for unshadowed vars).
  pag::NodeId varNode(std::string_view Cls, std::string_view Method,
                      std::string_view Name) const {
    ir::TypeId T = Prog->findClass(Prog->names().lookup(Cls));
    ir::MethodId M = Prog->findMethod(T, Prog->names().lookup(Method));
    EXPECT_NE(M, ir::kNone);
    Symbol N = Prog->names().lookup(Name);
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal && V.Owner == M && V.Name == N)
        return Built.Graph->nodeOfVar(V.Id);
    ADD_FAILURE() << "no variable " << Name;
    return 0;
  }

  /// Names of the classes of the allocation sites in \p Sites, sorted.
  std::vector<std::string> typeNames(const std::vector<ir::AllocId> &Sites) {
    std::vector<std::string> Names;
    for (ir::AllocId A : Sites) {
      const ir::AllocSite &Site = Prog->alloc(A);
      Names.push_back(Site.IsNull
                          ? "null"
                          : std::string(Prog->names().text(
                                Prog->classOf(Site.Type).Name)));
    }
    std::sort(Names.begin(), Names.end());
    return Names;
  }

private:
  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
};

TEST(FrontendIntegrationTest, Figure2PointsToSetsAreContextSensitive) {
  MiniJavaFixture F(kFigure2MiniJava);
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);

  auto S1 = DynSum.query(F.varNode("Main", "main", "s1"));
  auto S2 = DynSum.query(F.varNode("Main", "main", "s2"));
  EXPECT_FALSE(S1.BudgetExceeded);
  EXPECT_FALSE(S2.BudgetExceeded);
  EXPECT_EQ(F.typeNames(S1.allocSites()),
            (std::vector<std::string>{"Integer"}));
  EXPECT_EQ(F.typeNames(S2.allocSites()),
            (std::vector<std::string>{"String"}));
}

TEST(FrontendIntegrationTest, AllDemandAnalysesAgreeOnFigure2) {
  MiniJavaFixture F(kFigure2MiniJava);
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);
  analysis::RefinePtsAnalysis Refine(F.graph(), Opts);
  analysis::RefinePtsAnalysis NoRefine(F.graph(), Opts, /*Refinement=*/false);

  for (const char *Var : {"s1", "s2", "v1", "v2", "c1", "c2"}) {
    pag::NodeId N = F.varNode("Main", "main", Var);
    auto A = DynSum.query(N).allocSites();
    auto B = Refine.query(N).allocSites();
    auto C = NoRefine.query(N).allocSites();
    EXPECT_EQ(A, B) << "DYNSUM vs REFINEPTS on " << Var;
    EXPECT_EQ(A, C) << "DYNSUM vs NOREFINE on " << Var;
  }
}

TEST(FrontendIntegrationTest, DemandResultsAreSubsetOfAndersen) {
  MiniJavaFixture F(kFigure2MiniJava);
  analysis::AndersenAnalysis Andersen(F.graph());
  Andersen.solve();
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);

  for (const char *Var : {"s1", "s2", "v1", "v2", "c1", "c2"}) {
    pag::NodeId N = F.varNode("Main", "main", Var);
    auto Demand = DynSum.query(N).allocSites();
    auto Exhaustive = Andersen.allocSites(N);
    EXPECT_TRUE(std::includes(Exhaustive.begin(), Exhaustive.end(),
                              Demand.begin(), Demand.end()))
        << "context-sensitive result must refine Andersen for " << Var;
  }
}

TEST(FrontendIntegrationTest, VirtualDispatchRespectsReceiverSets) {
  MiniJavaFixture F(R"(
    class Animal { Object noise() { return null; } }
    class Dog extends Animal {
      Object bark;
      Dog(Object b) { this.bark = b; }
      Object noise() { return this.bark; }
    }
    class Cat extends Animal {
      Object meow;
      Cat(Object m) { this.meow = m; }
      Object noise() { return this.meow; }
    }
    class Main {
      static void main() {
        Object woof = new Object();
        Object miaow = new Object();
        Animal d = new Dog(woof);
        Animal c = new Cat(miaow);
        Object fromDog = d.noise();
        Object fromCat = c.noise();
      }
    }
  )");
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);

  // CHA wires both targets at each call site, but field-sensitive
  // points-to keeps the stored barks/meows apart.
  auto FromDog = DynSum.query(F.varNode("Main", "main", "fromDog"));
  auto FromCat = DynSum.query(F.varNode("Main", "main", "fromCat"));
  ASSERT_FALSE(FromDog.BudgetExceeded);
  ASSERT_FALSE(FromCat.BudgetExceeded);

  auto WoofSites = DynSum.query(F.varNode("Main", "main", "woof"));
  ASSERT_EQ(WoofSites.Targets.size(), 1u);
  ir::AllocId Woof = WoofSites.Targets[0].Alloc;

  EXPECT_TRUE(FromDog.contains(Woof));
  EXPECT_FALSE(FromCat.contains(Woof))
      << "cat noise must not include the dog's bark";
}

TEST(FrontendIntegrationTest, StaticFieldsFlowContextInsensitively) {
  MiniJavaFixture F(R"(
    class Registry { static Object cache; }
    class Writer { void put(Object o) { Registry.cache = o; } }
    class Reader { Object get() { return Registry.cache; } }
    class Main {
      static void main() {
        Writer w = new Writer();
        w.put(new Main());
        Reader r = new Reader();
        Object got = r.get();
      }
    }
  )");
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);
  auto Got = DynSum.query(F.varNode("Main", "main", "got"));
  ASSERT_FALSE(Got.BudgetExceeded);
  ASSERT_EQ(Got.Targets.size(), 1u);
  EXPECT_EQ(F.typeNames(Got.allocSites()),
            (std::vector<std::string>{"Main"}));
}

TEST(FrontendIntegrationTest, RecursionTerminates) {
  MiniJavaFixture F(R"(
    class Node {
      Node next;
      Node(Node n) { this.next = n; }
      Node last() {
        Node n = this.next;
        if (n == null) { return this; }
        return n.last();
      }
    }
    class Main {
      static void main() {
        Node tail = new Node(null);
        Node head = new Node(tail);
        Node l = head.last();
      }
    }
  )");
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(F.graph(), Opts);
  auto L = DynSum.query(F.varNode("Main", "main", "l"));
  // Recursive SCC edges are context-free; the query must terminate and
  // include both nodes conservatively.
  EXPECT_GE(L.Targets.size(), 1u);
}

} // namespace
