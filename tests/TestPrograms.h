//===----------------------------------------------------------------------===//
///
/// \file
/// Shared IR sources used across test suites, most importantly the
/// paper's Figure 2 Vector/Client program.
///
//===----------------------------------------------------------------------===//

#ifndef DYNSUM_TESTS_TESTPROGRAMS_H
#define DYNSUM_TESTS_TESTPROGRAMS_H

#include "workload/PaperExample.h"

namespace dynsum {
namespace testing {

/// The motivating example of the paper (Figure 2).  Allocation labels
/// and call-site labels match the paper's line numbers, so the expected
/// results are: pts(s1) = {o26}, pts(s2) = {o29}.
inline const char *kFigure2Source = ::dynsum::workload::figure2Source();

/// A tiny single-method program: x and y point to o1, z to o2.
inline const char *kStraightLineSource = R"(
class A {}
method main() {
  x = new A @o1
  y = x
  z = new A @o2
}
)";

/// Field store/load within one method: p = b.f where b.f = a, a = new.
inline const char *kLocalFieldSource = R"(
class A {}
class Box { fields f }
method main() {
  a = new A @oa
  b = new Box @ob
  b.f = a
  p = b.f
}
)";

/// The classic context-sensitivity litmus: an identity method called
/// from two sites must not conflate its callers.
inline const char *kIdentitySource = R"(
class A {}
class B {}
method id(p) {
  return p
}
method main() {
  a = new A @oa
  b = new B @ob
  x = call @1 id(a)
  y = call @2 id(b)
}
)";

/// Globals are context-insensitive: values meet in a static variable.
inline const char *kGlobalSource = R"(
class A {}
class B {}
global cache
method put(v) {
  cache = v
}
method take() {
  r = cache
  return r
}
method main() {
  a = new A @oa
  b = new B @ob
  call @1 put(a)
  call @2 put(b)
  x = call @3 take()
}
)";

/// Direct recursion: the recursive cycle must be collapsed, and the
/// query must still terminate with the right answer.
inline const char *kRecursionSource = R"(
class A {}
method rec(p, n) {
  q = p
  r = call @7 rec(q, n)
  return p
}
method main() {
  a = new A @oa
  x = call @9 rec(a, a)
}
)";

/// Field-recursive list traversal; exercises the field-depth cap.
inline const char *kListSource = R"(
class Node { fields next, val }
class A {}
method main() {
  n1 = new Node @on1
  n2 = new Node @on2
  v = new A @ov
  n1.next = n2
  n2.next = n1
  n2.val = v
  t1 = n1.next
  t2 = t1.next
  t3 = t2.next
  x = t3.val
}
)";

/// Virtual dispatch with a two-class hierarchy; CHA must see both
/// targets, Andersen-refined dispatch only the allocated one.
inline const char *kVirtualSource = R"(
class Shape {}
class Circle extends Shape {}
class Square extends Shape {}

method Circle.make(this : Circle) {
  o = new Circle @oc
  return o
}
method Square.make(this : Square) {
  o = new Square @os
  return o
}
method main() {
  s = new Circle @orecv
  var s : Shape
  r = vcall @1 s.make()
}
)";

} // namespace testing
} // namespace dynsum

#endif // DYNSUM_TESTS_TESTPROGRAMS_H
