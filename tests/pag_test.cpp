//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for PAG construction, the call graph and recursion
/// collapsing.
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "pag/GraphViz.h"
#include "support/OStream.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

using namespace dynsum;
using namespace dynsum::pag;

namespace {

std::unique_ptr<ir::Program> parse(const char *Src) {
  ir::ParseResult R = ir::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.Prog);
}

/// Counts edges of \p Kind in \p G.
size_t countEdges(const PAG &G, EdgeKind Kind) {
  size_t N = 0;
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    N += G.edge(E).Kind == Kind;
  return N;
}

} // namespace

TEST(PAGTest, Figure2EdgeKindCounts) {
  auto Prog = parse(dynsum::testing::kFigure2Source);
  BuiltPAG Built = buildPAG(*Prog);
  const PAG &G = *Built.Graph;

  // One new edge per allocation statement: o5 plus the six in main.
  EXPECT_EQ(countEdges(G, EdgeKind::New), Prog->allocs().size());
  EXPECT_EQ(countEdges(G, EdgeKind::New), 7u);
  // Loads: Vector.add (1), Vector.get (2), Client.retrieve (1).
  EXPECT_EQ(countEdges(G, EdgeKind::Load), 4u);
  // Stores: Vector.<init>, Vector.add, Client.<init>, Client.set.
  EXPECT_EQ(countEdges(G, EdgeKind::Store), 4u);
  // No globals in Figure 2.
  EXPECT_EQ(countEdges(G, EdgeKind::AssignGlobal), 0u);
  EXPECT_GT(countEdges(G, EdgeKind::Entry), 0u);
  EXPECT_GT(countEdges(G, EdgeKind::Exit), 0u);
}

TEST(PAGTest, EdgeOrientationFollowsValueFlow) {
  auto Prog = parse(dynsum::testing::kLocalFieldSource);
  BuiltPAG Built = buildPAG(*Prog);
  const PAG &G = *Built.Graph;
  // b.f = a  =>  a --store(f)--> b ; p = b.f  =>  b --load(f)--> p.
  bool SawStore = false, SawLoad = false;
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    const Edge &Ed = G.edge(E);
    if (Ed.Kind == EdgeKind::Store) {
      EXPECT_EQ(G.describe(Ed.Src), "a@main");
      EXPECT_EQ(G.describe(Ed.Dst), "b@main");
      SawStore = true;
    }
    if (Ed.Kind == EdgeKind::Load) {
      EXPECT_EQ(G.describe(Ed.Src), "b@main");
      EXPECT_EQ(G.describe(Ed.Dst), "p@main");
      SawLoad = true;
    }
  }
  EXPECT_TRUE(SawStore);
  EXPECT_TRUE(SawLoad);
}

TEST(PAGTest, BoundaryFlagsMarkGlobalEdges) {
  auto Prog = parse(dynsum::testing::kIdentitySource);
  BuiltPAG Built = buildPAG(*Prog);
  const PAG &G = *Built.Graph;
  // The formal parameter p of id() receives entry edges.
  bool Checked = false;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (G.describe(N) == "p@id") {
      EXPECT_TRUE(G.node(N).HasGlobalIn);
      Checked = true;
    }
  }
  EXPECT_TRUE(Checked);
}

TEST(PAGTest, FieldIndexesListStoresAndLoads) {
  auto Prog = parse(dynsum::testing::kLocalFieldSource);
  BuiltPAG Built = buildPAG(*Prog);
  const PAG &G = *Built.Graph;
  ir::FieldId F = Prog->getOrCreateField(Prog->names().lookup("f"));
  EXPECT_EQ(G.storesOfField(F).size(), 1u);
  EXPECT_EQ(G.loadsOfField(F).size(), 1u);
}

TEST(PAGTest, StatsLocality) {
  auto Prog = parse(dynsum::testing::kFigure2Source);
  BuiltPAG Built = buildPAG(*Prog);
  PAGStats S = Built.Graph->stats();
  EXPECT_EQ(S.NumObjects, 7u);
  EXPECT_EQ(S.NumGlobals, 0u);
  EXPECT_GT(S.locality(), 0.2);
  EXPECT_LT(S.locality(), 1.0);
  EXPECT_EQ(S.totalEdges(), Built.Graph->numEdges());
}

TEST(CallGraphTest, DirectAndVirtualTargets) {
  auto Prog = parse(dynsum::testing::kFigure2Source);
  pag::CallGraph CG = buildCallGraph(*Prog);
  // Every call site in Figure 2 resolves to exactly one target (the
  // virtual receivers have precise declared types).
  for (const ir::CallSite &CS : Prog->callSites())
    EXPECT_EQ(CG.targets(CS.Id).size(), 1u)
        << "site " << CS.Id << " label " << CS.Label;
}

TEST(CallGraphTest, RecursionIsDetectedAndCollapsed) {
  auto Prog = parse(dynsum::testing::kRecursionSource);
  BuiltPAG Built = buildPAG(*Prog);
  const pag::CallGraph &CG = Built.Calls;

  ir::MethodId Rec = Prog->findFreeMethod(Prog->names().lookup("rec"));
  ir::MethodId Main = Prog->findFreeMethod(Prog->names().lookup("main"));
  EXPECT_TRUE(CG.isRecursive(Rec));
  EXPECT_FALSE(CG.isRecursive(Main));
  EXPECT_TRUE(CG.inSameRecursion(Rec, Rec));
  EXPECT_FALSE(CG.inSameRecursion(Main, Rec));

  // The self-call's entry/exit edges are context-free; main's call to
  // rec keeps its context.
  size_t ContextFree = 0, Contextful = 0;
  for (EdgeId E = 0; E < Built.Graph->numEdges(); ++E) {
    const Edge &Ed = Built.Graph->edge(E);
    if (Ed.Kind != EdgeKind::Entry && Ed.Kind != EdgeKind::Exit)
      continue;
    (Ed.ContextFree ? ContextFree : Contextful) += 1;
  }
  EXPECT_GT(ContextFree, 0u);
  EXPECT_GT(Contextful, 0u);
}

TEST(CallGraphTest, MutualRecursionSharesAnScc) {
  auto Prog = parse(R"(
method ping(p) {
  r = call @1 pong(p)
  return r
}
method pong(p) {
  r = call @2 ping(p)
  return r
}
method main() {
  x = call @3 ping(x)
}
)");
  pag::CallGraph CG = buildCallGraph(*Prog);
  ir::MethodId Ping = Prog->findFreeMethod(Prog->names().lookup("ping"));
  ir::MethodId Pong = Prog->findFreeMethod(Prog->names().lookup("pong"));
  EXPECT_EQ(CG.sccOf(Ping), CG.sccOf(Pong));
  EXPECT_TRUE(CG.inSameRecursion(Ping, Pong));
}

TEST(CallGraphTest, ReachableFromWalksTransitively) {
  auto Prog = parse(dynsum::testing::kGlobalSource);
  pag::CallGraph CG = buildCallGraph(*Prog);
  ir::MethodId Main = Prog->findFreeMethod(Prog->names().lookup("main"));
  std::vector<ir::MethodId> R = CG.reachableFrom(Main);
  EXPECT_EQ(R.size(), 3u); // main, put, take
}

TEST(CallGraphTest, AndersenResolverNarrowsDispatch) {
  auto Prog = parse(dynsum::testing::kVirtualSource);
  BuiltPAG Cha = buildPAG(*Prog);
  analysis::AndersenAnalysis And(*Cha.Graph);
  And.solve();
  analysis::AndersenTargetResolver Resolver(And, *Cha.Graph);
  pag::CallGraph Narrow = buildCallGraph(*Prog, &Resolver);
  for (const ir::CallSite &CS : Prog->callSites()) {
    if (CS.Label != 1)
      continue;
    EXPECT_EQ(Narrow.targets(CS.Id).size(), 1u);
    const ir::Method &M = Prog->method(Narrow.targets(CS.Id)[0]);
    EXPECT_EQ(Prog->names().text(Prog->classOf(M.Owner).Name), "Circle");
  }
}

TEST(PAGTest, DumpMentionsEveryEdgeKind) {
  auto Prog = parse(dynsum::testing::kGlobalSource);
  BuiltPAG Built = buildPAG(*Prog);
  StringOStream OS;
  Built.Graph->dump(OS);
  EXPECT_NE(OS.str().find("assignglobal"), std::string::npos);
  EXPECT_NE(OS.str().find("new"), std::string::npos);
  EXPECT_NE(OS.str().find("entry"), std::string::npos);
}

TEST(GraphVizTest, Figure2DotContainsClustersAndEdges) {
  auto Prog = parse(dynsum::testing::kFigure2Source);
  BuiltPAG Built = buildPAG(*Prog);
  std::string Dot = toGraphViz(*Built.Graph);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_m"), std::string::npos);
  EXPECT_NE(Dot.find("Vector.get"), std::string::npos);
  EXPECT_NE(Dot.find("load(elems)"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos); // global edges
  EXPECT_EQ(Dot.find("style=dashed, style="), std::string::npos);
}

TEST(GraphVizTest, EscapesQuotes) {
  auto Prog = parse(dynsum::testing::kStraightLineSource);
  BuiltPAG Built = buildPAG(*Prog);
  GraphVizOptions Opts;
  Opts.Title = "say \"hi\"";
  std::string Dot = toGraphViz(*Built.Graph, Opts);
  EXPECT_NE(Dot.find("say \\\"hi\\\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Delta rebuild (the EditSession/AnalysisService substrate)
//===----------------------------------------------------------------------===//

TEST(RebuildTest, ForcedFullRelowerReproducesBuildExactly) {
  ir::ParseResult R = ir::parseProgram(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  BuiltPAG Fresh = buildPAG(*R.Prog);

  PAG InPlace(*R.Prog);
  CallGraph Calls;
  buildPAGDelta(InPlace, Calls);
  // Force-re-lower everything: identical graph, same node ids, and the
  // segment slots recycle without leaking.
  buildPAGDelta(InPlace, Calls, nullptr, /*ForceFull=*/true);

  ASSERT_EQ(InPlace.numNodes(), Fresh.Graph->numNodes());
  ASSERT_EQ(InPlace.numEdges(), Fresh.Graph->numEdges());
  for (NodeId N = 0; N < InPlace.numNodes(); ++N) {
    EXPECT_EQ(InPlace.node(N).Kind, Fresh.Graph->node(N).Kind);
    EXPECT_EQ(InPlace.node(N).IrId, Fresh.Graph->node(N).IrId);
    EXPECT_EQ(InPlace.node(N).Method, Fresh.Graph->node(N).Method);
    EXPECT_EQ(InPlace.node(N).HasLocalEdge, Fresh.Graph->node(N).HasLocalEdge);
    EXPECT_EQ(InPlace.node(N).HasGlobalIn, Fresh.Graph->node(N).HasGlobalIn);
    EXPECT_EQ(InPlace.node(N).HasGlobalOut,
              Fresh.Graph->node(N).HasGlobalOut);
  }
  // Same live multiset of edges per (src, dst, kind, aux); slot order
  // may differ after the in-place re-lower.
  auto EdgeKeys = [](const PAG &G) {
    std::vector<std::tuple<NodeId, NodeId, unsigned, uint32_t>> Keys;
    for (EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
      if (!G.edgeAlive(E))
        continue;
      const Edge &Ed = G.edge(E);
      Keys.emplace_back(Ed.Src, Ed.Dst, unsigned(Ed.Kind), Ed.Aux);
    }
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  EXPECT_EQ(EdgeKeys(InPlace), EdgeKeys(*Fresh.Graph));
}

TEST(RebuildTest, VariableNodeIdsEqualVariableIdsOnFirstBuild) {
  // The canonical on-disk summary numbering relies on this contract for
  // fresh builds: variables occupy the node-id prefix in id order,
  // objects follow.  (Delta builds append later ids in creation order.)
  ir::ParseResult R = ir::parseProgram(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  BuiltPAG Built = buildPAG(*R.Prog);
  size_t NumVars = R.Prog->variables().size();
  for (const ir::Variable &V : R.Prog->variables())
    EXPECT_EQ(Built.Graph->nodeOfVar(V.Id), V.Id);
  for (const ir::AllocSite &A : R.Prog->allocs())
    EXPECT_EQ(Built.Graph->nodeOfAlloc(A.Id), NumVars + A.Id);
}

TEST(RebuildTest, DeltaBuildSeesAppendedStatements) {
  ir::ParseResult R = ir::parseProgram(dynsum::testing::kStraightLineSource);
  ASSERT_TRUE(R.ok()) << R.Error;
  ir::Program &P = *R.Prog;
  PAG G(P);
  CallGraph Calls;
  buildPAGDelta(G, Calls);
  size_t EdgesBefore = G.numEdges();

  ir::MethodId Main = P.findFreeMethod(P.names().lookup("main"));
  ir::Statement S;
  S.Kind = ir::StmtKind::Assign;
  S.Dst = P.method(Main).Stmts[0].Dst;
  S.Src = P.method(Main).Stmts[1].Dst;
  P.addStatement(Main, std::move(S));
  pag::DeltaStats DS = buildPAGDelta(G, Calls);
  EXPECT_EQ(G.numEdges(), EdgesBefore + 1);
  EXPECT_EQ(DS.Relowered.size(), 1u);
  EXPECT_EQ(DS.Relowered[0], Main);
}

TEST(RebuildTest, FinalizeIsIdempotentAndGuardsPartialPopulate) {
  // Satellite regression: double-finalize must be a no-op, not a crash
  // or a corrupted CSR.
  ir::ParseResult R = ir::parseProgram(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  BuiltPAG Built = buildPAG(*R.Prog);
  PAG &G = *Built.Graph;
  size_t Nodes = G.numNodes(), Edges = G.numEdges();
  std::vector<size_t> InSizes;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    InSizes.push_back(G.inEdges(N).size());

  G.finalize(); // second finalize: idempotent
  G.finalize(); // and a third
  EXPECT_EQ(G.numNodes(), Nodes);
  EXPECT_EQ(G.numEdges(), Edges);
  for (NodeId N = 0; N < G.numNodes(); ++N)
    EXPECT_EQ(G.inEdges(N).size(), InSizes[N]) << "node " << N;

#ifndef NDEBUG
  // Finalize with an open segment (partial populate) must be rejected.
  G.beginSegment(0);
  EXPECT_DEATH(G.finalize(), "open segment");
  G.endSegment();
  G.finalize();
#endif
}
