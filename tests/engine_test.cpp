//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the parallel batched query engine: multi-threaded batches
/// must project onto exactly the allocation sites the sequential
/// DYNSUM path produces, budget exhaustion must stay confined to the
/// query that hit it, and the shared summary store must round-trip
/// through SummaryIO.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/SummaryIO.h"
#include "clients/Client.h"
#include "engine/QueryScheduler.h"
#include "pag/PAGBuilder.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::engine;

namespace {

/// A generated workload program with a deterministic spread of demand
/// query nodes (every k-th local variable).
struct GenFixture {
  explicit GenFixture(const char *SpecName, double Scale = 1.0 / 64,
                      size_t Stride = 37) {
    workload::GenOptions GO;
    GO.Scale = Scale;
    Prog = workload::generateProgram(workload::specByName(SpecName), GO);
    Built = pag::buildPAG(*Prog);
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal && V.Id % Stride == 0)
        Nodes.push_back(Built.Graph->nodeOfVar(V.Id));
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::vector<pag::NodeId> Nodes;
};

/// Sequential ground truth: one warming DynSumAnalysis, queries in batch
/// order (exactly what the engine replaces).
std::vector<QueryOutcome> runSequential(const pag::PAG &G,
                                        const std::vector<pag::NodeId> &Nodes,
                                        const AnalysisOptions &Opts) {
  DynSumAnalysis A(G, Opts);
  std::vector<QueryOutcome> Out;
  Out.reserve(Nodes.size());
  for (pag::NodeId N : Nodes) {
    QueryResult R = A.query(N);
    Out.push_back(QueryOutcome{R.allocSites(), R.BudgetExceeded, R.Status, R.Steps});
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// (a) Batched multi-thread results equal sequential results
//===----------------------------------------------------------------------===//

TEST(EngineTest, BatchedEqualsSequentialAcrossThreadCounts) {
  for (const char *Spec : {"soot-c", "jython"}) {
    GenFixture F(Spec);
    ASSERT_GT(F.Nodes.size(), 10u) << Spec;

    AnalysisOptions AO;
    std::vector<QueryOutcome> Sequential =
        runSequential(*F.Built.Graph, F.Nodes, AO);

    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      EngineOptions EO;
      EO.NumThreads = Threads;
      QueryScheduler S(*F.Built.Graph, EO);
      BatchResult R = S.run(F.Nodes);

      ASSERT_EQ(R.Outcomes.size(), Sequential.size());
      for (size_t I = 0; I < Sequential.size(); ++I) {
        EXPECT_EQ(R.Outcomes[I].AllocSites, Sequential[I].AllocSites)
            << Spec << " query " << I << " at " << Threads << " threads";
        EXPECT_EQ(R.Outcomes[I].BudgetExceeded, Sequential[I].BudgetExceeded)
            << Spec << " query " << I << " at " << Threads << " threads";
      }
    }
  }
}

TEST(EngineTest, SharingOffStillMatchesSequential) {
  GenFixture F("soot-c");
  AnalysisOptions AO;
  std::vector<QueryOutcome> Sequential =
      runSequential(*F.Built.Graph, F.Nodes, AO);

  EngineOptions EO;
  EO.NumThreads = 4;
  EO.ShareSummaries = false;
  QueryScheduler S(*F.Built.Graph, EO);
  BatchResult R = S.run(F.Nodes);
  ASSERT_EQ(R.Outcomes.size(), Sequential.size());
  for (size_t I = 0; I < Sequential.size(); ++I)
    EXPECT_EQ(R.Outcomes[I].AllocSites, Sequential[I].AllocSites) << I;
  EXPECT_EQ(R.Stats.SharedHits, 0u);
  EXPECT_EQ(S.store().size(), 0u);
}

TEST(EngineTest, SharedStoreIsReusedWithinAndAcrossBatches) {
  GenFixture F("soot-c");
  EngineOptions EO;
  EO.NumThreads = 4;
  QueryScheduler S(*F.Built.Graph, EO);

  BatchResult Cold = S.run(F.Nodes);
  EXPECT_GT(Cold.Stats.SummariesComputed, 0u);
  EXPECT_GT(Cold.Stats.StoreSize, 0u);

  // A second identical batch finds every summary already published.
  BatchResult Warm = S.run(F.Nodes);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u);
  EXPECT_GT(Warm.Stats.SharedHits, 0u);
  EXPECT_LT(Warm.Stats.TotalSteps, Cold.Stats.TotalSteps);
  ASSERT_EQ(Warm.Outcomes.size(), Cold.Outcomes.size());
  for (size_t I = 0; I < Cold.Outcomes.size(); ++I)
    EXPECT_EQ(Warm.Outcomes[I].AllocSites, Cold.Outcomes[I].AllocSites) << I;
}

TEST(EngineTest, ClientVerdictsMatchSequentialPath) {
  GenFixture F("jython");
  AnalysisOptions AO;
  EngineOptions EO;
  EO.NumThreads = 4;
  EO.Analysis = AO;

  for (const auto &C : clients::makeAllClients()) {
    std::vector<clients::ClientQuery> Qs =
        C->makeQueries(*F.Built.Graph, /*MaxQueries=*/64);
    DynSumAnalysis Seq(*F.Built.Graph, AO);
    clients::ClientReport RSeq = clients::runClient(*C, Seq, Qs);

    QueryScheduler S(*F.Built.Graph, EO);
    clients::ClientReport RBat = clients::runClientBatched(*C, S, Qs);

    EXPECT_EQ(RBat.NumQueries, RSeq.NumQueries) << C->name();
    EXPECT_EQ(RBat.Proven, RSeq.Proven) << C->name();
    EXPECT_EQ(RBat.Refuted, RSeq.Refuted) << C->name();
    EXPECT_EQ(RBat.Unknown, RSeq.Unknown) << C->name();
  }
}

//===----------------------------------------------------------------------===//
// (b) Budget exhaustion stays confined to its query
//===----------------------------------------------------------------------===//

TEST(EngineTest, BudgetExhaustionDoesNotPoisonOtherShards) {
  GenFixture F("soot-c");

  // A budget small enough that some queries blow it and some complete.
  AnalysisOptions Tiny;
  Tiny.BudgetPerQuery = 120;

  // Cold per-query ground truth: each query on a fresh analysis, so no
  // cache effects — the worst case any shard can hit.
  std::vector<QueryOutcome> Cold;
  for (pag::NodeId N : F.Nodes) {
    DynSumAnalysis A(*F.Built.Graph, Tiny);
    QueryResult R = A.query(N);
    Cold.push_back(QueryOutcome{R.allocSites(), R.BudgetExceeded, R.Status, R.Steps});
  }
  size_t NumExceeded = 0;
  for (const QueryOutcome &O : Cold)
    NumExceeded += O.BudgetExceeded;
  ASSERT_GT(NumExceeded, 0u) << "budget too large to exercise exhaustion";
  ASSERT_LT(NumExceeded, Cold.size()) << "budget too small: nothing completes";

  EngineOptions EO;
  EO.NumThreads = 4;
  EO.Analysis = Tiny;
  QueryScheduler S(*F.Built.Graph, EO);
  BatchResult R = S.run(F.Nodes);

  ASSERT_EQ(R.Outcomes.size(), Cold.size());
  size_t BatchExceeded = 0;
  for (size_t I = 0; I < Cold.size(); ++I) {
    BatchExceeded += R.Outcomes[I].BudgetExceeded;
    if (!Cold[I].BudgetExceeded) {
      // Summary reuse only removes traversal work, so a query that
      // completes cold must still complete — and a complete query's
      // answer is the full CFL answer, identical however it was reached.
      EXPECT_FALSE(R.Outcomes[I].BudgetExceeded) << "query " << I;
      EXPECT_EQ(R.Outcomes[I].AllocSites, Cold[I].AllocSites) << I;
    }
  }
  // And exhaustion never spreads: at most the cold-exceeded queries may
  // exceed in the batch.
  EXPECT_LE(BatchExceeded, NumExceeded);
}

//===----------------------------------------------------------------------===//
// (c) Warm start round-trips through SummaryIO
//===----------------------------------------------------------------------===//

TEST(EngineTest, WarmStartRoundTripsThroughSummaryIO) {
  GenFixture F("jython");
  EngineOptions EO;
  EO.NumThreads = 4;

  QueryScheduler First(*F.Built.Graph, EO);
  BatchResult Cold = First.run(F.Nodes);
  ASSERT_GT(First.store().size(), 0u);

  std::string Buffer = First.serializeSummaries();
  ASSERT_FALSE(Buffer.empty());

  QueryScheduler Second(*F.Built.Graph, EO);
  ASSERT_TRUE(Second.loadSummariesBuffer(Buffer));
  EXPECT_EQ(Second.store().size(), First.store().size());

  BatchResult Warm = Second.run(F.Nodes);
  EXPECT_EQ(Warm.Stats.SummariesComputed, 0u);
  ASSERT_EQ(Warm.Outcomes.size(), Cold.Outcomes.size());
  for (size_t I = 0; I < Cold.Outcomes.size(); ++I)
    EXPECT_EQ(Warm.Outcomes[I].AllocSites, Cold.Outcomes[I].AllocSites) << I;
}

TEST(EngineTest, WarmStartInteroperatesWithSequentialSummaryIO) {
  GenFixture F("jython");

  // Engine store -> sequential analysis.
  EngineOptions EO;
  EO.NumThreads = 2;
  QueryScheduler S(*F.Built.Graph, EO);
  (void)S.run(F.Nodes);
  std::string FromEngine = S.serializeSummaries();
  DynSumAnalysis Seq(*F.Built.Graph, AnalysisOptions());
  ASSERT_TRUE(deserializeSummaries(Seq, FromEngine));
  EXPECT_EQ(Seq.cacheSize(), S.store().size());

  // Sequential analysis -> engine store.
  DynSumAnalysis Producer(*F.Built.Graph, AnalysisOptions());
  for (pag::NodeId N : F.Nodes)
    (void)Producer.query(N);
  ASSERT_GT(Producer.cacheSize(), 0u);
  QueryScheduler Fresh(*F.Built.Graph, EO);
  ASSERT_TRUE(Fresh.loadSummariesBuffer(serializeSummaries(Producer)));
  EXPECT_EQ(Fresh.store().size(), Producer.cacheSize());
}

TEST(EngineTest, WarmStartRejectsDifferentProgram) {
  GenFixture A("jython");
  GenFixture B("soot-c");

  QueryScheduler SA(*A.Built.Graph, EngineOptions());
  (void)SA.run(A.Nodes);
  std::string Buffer = SA.serializeSummaries();

  QueryScheduler SB(*B.Built.Graph, EngineOptions());
  EXPECT_FALSE(SB.loadSummariesBuffer(Buffer));
  EXPECT_EQ(SB.store().size(), 0u);
}

//===----------------------------------------------------------------------===//
// Engine plumbing
//===----------------------------------------------------------------------===//

TEST(EngineTest, EmptyBatchAndThreadClamping) {
  GenFixture F("soot-c");
  EngineOptions EO;
  EO.NumThreads = 8;
  QueryScheduler S(*F.Built.Graph, EO);

  BatchResult R = S.run(QueryBatch());
  EXPECT_TRUE(R.Outcomes.empty());

  // Never more workers than queries.
  EXPECT_EQ(S.effectiveThreads(3), 3u);
  EXPECT_EQ(S.effectiveThreads(100), 8u);

  QueryBatch One;
  One.add(F.Nodes.front());
  BatchResult R1 = S.run(One);
  ASSERT_EQ(R1.Outcomes.size(), 1u);
  EXPECT_EQ(R1.Stats.ThreadsUsed, 1u);
}
