//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline-wide property tests over fuzzed MiniJava programs.
///
/// For every seed, a random well-typed program must:
///   1. compile without diagnostics,
///   2. lower to IR the validator accepts,
///   3. satisfy the analysis lattice: DYNSUM == NOREFINE == REFINEPTS
///      (projected to allocation sites) and every demand answer is a
///      subset of Andersen's exhaustive one,
///   4. keep summary persistence exact (save + load on a twin program
///      reproduces the answers).
///
//===----------------------------------------------------------------------===//

#include "MiniJavaFuzzer.h"

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "analysis/SummaryIO.h"
#include "frontend/Frontend.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

class FuzzPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipelineTest, CompilesAnalyzesConsistently) {
  dynsum::testing::MiniJavaFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  frontend::CompileResult Compiled = frontend::compileMiniJava(Source);
  ASSERT_TRUE(Compiled.ok()) << "seed " << GetParam() << ":\n"
                             << Compiled.Diags.str() << "\n--- source ---\n"
                             << Source;
  std::vector<std::string> Problems = ir::validate(*Compiled.Prog);
  ASSERT_TRUE(Problems.empty())
      << "seed " << GetParam() << ": " << Problems.front();

  pag::BuiltPAG Built = pag::buildPAG(*Compiled.Prog);
  AnalysisOptions Opts;
  DynSumAnalysis DynSum(*Built.Graph, Opts);
  RefinePtsAnalysis Refine(*Built.Graph, Opts);
  RefinePtsAnalysis NoRefine(*Built.Graph, Opts, /*Refinement=*/false);
  AndersenAnalysis Andersen(*Built.Graph);
  Andersen.solve();

  unsigned Checked = 0;
  for (const ir::Variable &V : Compiled.Prog->variables()) {
    if (V.IsGlobal || V.Id % 7 != 0)
      continue;
    pag::NodeId N = Built.Graph->nodeOfVar(V.Id);
    QueryResult RDyn = DynSum.query(N);
    if (RDyn.BudgetExceeded)
      continue; // conservative answers need not agree exactly
    auto Dyn = RDyn.allocSites();
    auto Ref = Refine.query(N).allocSites();
    auto NoR = NoRefine.query(N).allocSites();
    auto And = Andersen.allocSites(N);

    EXPECT_EQ(Dyn, Ref) << "seed " << GetParam() << " var "
                        << Compiled.Prog->describeVar(V.Id);
    EXPECT_EQ(Dyn, NoR) << "seed " << GetParam() << " var "
                        << Compiled.Prog->describeVar(V.Id);
    EXPECT_TRUE(std::includes(And.begin(), And.end(), Dyn.begin(), Dyn.end()))
        << "seed " << GetParam() << " var "
        << Compiled.Prog->describeVar(V.Id)
        << ": demand answer must refine Andersen";
    ++Checked;
  }
  EXPECT_GT(Checked, 0u) << "fuzzer produced no queryable variables";
}

TEST_P(FuzzPipelineTest, PersistenceRoundTripsOnFuzzedPrograms) {
  dynsum::testing::MiniJavaFuzzer Fuzzer(GetParam());
  std::string Source = Fuzzer.generate();

  frontend::CompileResult C1 = frontend::compileMiniJava(Source);
  frontend::CompileResult C2 = frontend::compileMiniJava(Source);
  ASSERT_TRUE(C1.ok() && C2.ok());
  ASSERT_EQ(programFingerprint(*C1.Prog), programFingerprint(*C2.Prog))
      << "compilation must be deterministic";

  pag::BuiltPAG G1 = pag::buildPAG(*C1.Prog);
  pag::BuiltPAG G2 = pag::buildPAG(*C2.Prog);
  AnalysisOptions Opts;
  DynSumAnalysis A1(*G1.Graph, Opts);
  DynSumAnalysis A2(*G2.Graph, Opts);

  std::vector<ir::VarId> Queries;
  for (const ir::Variable &V : C1.Prog->variables())
    if (!V.IsGlobal && V.Id % 11 == 0)
      Queries.push_back(V.Id);

  for (ir::VarId V : Queries)
    A1.query(G1.Graph->nodeOfVar(V));
  ASSERT_TRUE(deserializeSummaries(A2, serializeSummaries(A1)));

  for (ir::VarId V : Queries) {
    auto R1 = A1.query(G1.Graph->nodeOfVar(V)).allocSites();
    auto R2 = A2.query(G2.Graph->nodeOfVar(V)).allocSites();
    EXPECT_EQ(R1, R2) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

} // namespace
