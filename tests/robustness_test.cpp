//===----------------------------------------------------------------------===//
///
/// \file
/// Production-hardening tests: deadlines and cancellation on the query
/// path, overload shedding, and failure isolation on the commit
/// pipeline (validation gate, worker exceptions, retry, quarantine).
///
/// Fault points are driven through support::FaultInjection — seeded,
/// deterministic, and process-global, so every test clears the
/// registry on both entry and exit.  The TSan CI job runs this binary
/// alongside the service/engine suites.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "ir/Validator.h"
#include "pag/PAGBuilder.h"
#include "service/AnalysisService.h"
#include "support/Deadline.h"
#include "support/FaultInjection.h"

#include "IrEditFuzzer.h"
#include "MiniJavaFuzzer.h"

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <thread>

using namespace dynsum;
using analysis::AnalysisOptions;
using analysis::QueryStatus;
using dynsum::testing::IrEditFuzzer;
using dynsum::testing::sampleVars;
using incremental::CommitOutcome;
using incremental::CommitStats;
using service::AnalysisService;
using service::CommitMode;
using service::ServiceBatchResult;
using service::ServiceOptions;
using support::Deadline;
using support::FaultKind;
using support::FaultSpec;

namespace {

/// Clears the process-global fault registry around every test, pass or
/// fail.
class RobustnessTest : public ::testing::Test {
protected:
  void SetUp() override { support::clearFaults(); }
  void TearDown() override { support::clearFaults(); }
};

std::unique_ptr<ir::Program> fuzzProgram(uint64_t Seed) {
  dynsum::testing::MiniJavaFuzzer Fuzz(Seed);
  frontend::CompileResult R = frontend::compileMiniJava(Fuzz.generate());
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return std::move(R.Prog);
}

/// Arms a one-site fault.
void arm(const char *Site, FaultKind Kind, uint64_t FireEvery = 1,
         uint64_t MaxFires = UINT64_MAX, uint64_t Param = 0) {
  FaultSpec Spec;
  Spec.Kind = Kind;
  Spec.FireEvery = FireEvery;
  Spec.MaxFires = MaxFires;
  Spec.Param = Param;
  support::armFault(Site, Spec);
}

} // namespace

//===----------------------------------------------------------------------===//
// Deadlines and cancellation
//===----------------------------------------------------------------------===//

/// The acceptance bound: against a fault injecting heavy per-summary
/// latency, a deadline-bound query batch must come back — with partial,
/// sound answers marked Timeout — within 2x its deadline.
TEST_F(RobustnessTest, LatencyPinnedQueriesTimeOutWithinTwiceDeadline) {
  auto Prog = fuzzProgram(7);
  ASSERT_TRUE(Prog);
  std::vector<ir::VarId> Probe = sampleVars(*Prog, 5);
  ASSERT_GT(Probe.size(), 4u);

  ServiceOptions SO;
  SO.Engine.NumThreads = 2;
  AnalysisService S(std::move(Prog), SO);

  // 20ms stall per summary computation: a handful of summaries dwarfs
  // the 100ms deadline many times over — a deadline-blind run would
  // take seconds.
  arm("query.summary", FaultKind::Latency, 1, UINT64_MAX, /*us=*/20000);
  constexpr double kDeadlineSec = 0.100;
  auto Start = std::chrono::steady_clock::now();
  ServiceBatchResult R = S.queryVars(Probe, Deadline::in(kDeadlineSec));
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  support::clearFaults();

  EXPECT_LT(Elapsed, 2 * kDeadlineSec)
      << "deadline must bound wall clock even when every summary stalls";
  uint64_t TimedOut = 0;
  for (const engine::QueryOutcome &O : R.Outcomes)
    if (O.Status == QueryStatus::Timeout) {
      ++TimedOut;
      EXPECT_TRUE(O.BudgetExceeded)
          << "a timed-out answer is partial and must say so";
    }
  EXPECT_GT(TimedOut, 0u) << "the latency fault must trip the deadline";
  EXPECT_EQ(S.stats().TimedOutQueries, R.Stats.TimedOut);
  EXPECT_GT(R.Stats.TimedOut, 0u);
}

TEST_F(RobustnessTest, CancelTokenAbortsQueries) {
  auto Prog = fuzzProgram(11);
  ASSERT_TRUE(Prog);
  std::vector<ir::VarId> Probe = sampleVars(*Prog, 9);
  AnalysisService S(std::move(Prog), ServiceOptions());

  support::CancelToken Token;
  Token.cancel(); // cancelled before the batch even starts
  ServiceBatchResult R =
      S.queryVars(Probe, Deadline::unlimited().withCancel(Token));
  uint64_t Cancelled = 0;
  for (const engine::QueryOutcome &O : R.Outcomes)
    if (O.Status == QueryStatus::Cancelled)
      ++Cancelled;
  EXPECT_GT(Cancelled, 0u);
  EXPECT_EQ(S.stats().CancelledQueries, R.Stats.Cancelled);
}

/// A generous deadline must not change any answer: same outcomes as
/// the plain overload, bit for bit.
TEST_F(RobustnessTest, GenerousDeadlineIsAnswerNeutral) {
  auto Prog = fuzzProgram(13);
  ASSERT_TRUE(Prog);
  std::vector<ir::VarId> Probe = sampleVars(*Prog, 7);
  ServiceOptions SO;
  SO.Engine.NumThreads = 1;
  AnalysisService S(std::move(Prog), SO);

  ServiceBatchResult Plain = S.queryVars(Probe);
  ServiceBatchResult Bounded = S.queryVars(Probe, Deadline::in(3600.0));
  ASSERT_EQ(Plain.Outcomes.size(), Bounded.Outcomes.size());
  for (size_t I = 0; I < Plain.Outcomes.size(); ++I) {
    EXPECT_EQ(Bounded.Outcomes[I].Status, QueryStatus::Ok);
    if (Plain.Outcomes[I].BudgetExceeded || Bounded.Outcomes[I].BudgetExceeded)
      continue; // partial answers are compared only for completeness
    EXPECT_EQ(Plain.Outcomes[I].AllocSites, Bounded.Outcomes[I].AllocSites)
        << "probe " << I;
  }
}

//===----------------------------------------------------------------------===//
// Overload shedding
//===----------------------------------------------------------------------===//

/// Above the batch watermark the service sheds: Overloaded status,
/// EMPTY alloc sites (never partial garbage), and automatic resume
/// once the backlog drains.
TEST_F(RobustnessTest, ShedQueriesReturnOverloadedAndNeverGarbage) {
  auto Prog = fuzzProgram(17);
  auto TwinProg = fuzzProgram(17);
  ASSERT_TRUE(Prog && TwinProg);
  std::vector<ir::VarId> Probe = sampleVars(*Prog, 6);

  ServiceOptions SO;
  SO.Engine.NumThreads = 1;
  SO.Overload.MaxActiveBatches = 1;
  AnalysisService S(std::move(Prog), SO);

  // Pin one batch in flight with a per-summary stall, then hammer the
  // service from this thread until admission control trips.
  arm("query.summary", FaultKind::Latency, 1, UINT64_MAX, /*us=*/3000);
  std::thread Pinned([&] { S.queryVars(Probe); });
  // Let the pinned batch enter the service before hammering it: if the
  // first hammer batch wins the race instead, the PINNED batch is the
  // one shed, it drains instantly, and nothing else ever overlaps.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  uint64_t Shed = 0;
  for (unsigned Try = 0; Try < 200 && Shed == 0; ++Try) {
    ServiceBatchResult R = S.queryVars(Probe);
    for (const engine::QueryOutcome &O : R.Outcomes) {
      if (O.Status != QueryStatus::Overloaded)
        continue;
      ++Shed;
      EXPECT_TRUE(O.AllocSites.empty())
          << "shed work must not leak partial garbage";
      EXPECT_TRUE(O.BudgetExceeded);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Pinned.join();
  support::clearFaults();
  EXPECT_GT(Shed, 0u) << "a pinned batch above the watermark must shed";
  EXPECT_GT(S.stats().ShedQueries, 0u);
  EXPECT_GT(S.stats().ShedBatches, 0u);

  // Backlog drained: admission reopens and answers match a never-
  // overloaded twin exactly.
  AnalysisService Twin(std::move(TwinProg), ServiceOptions());
  ServiceBatchResult After = S.queryVars(Probe);
  ServiceBatchResult Ref = Twin.queryVars(Probe);
  for (size_t I = 0; I < Probe.size(); ++I) {
    EXPECT_EQ(After.Outcomes[I].Status, QueryStatus::Ok);
    if (After.Outcomes[I].BudgetExceeded || Ref.Outcomes[I].BudgetExceeded)
      continue;
    EXPECT_EQ(After.Outcomes[I].AllocSites, Ref.Outcomes[I].AllocSites)
        << "probe " << I;
  }
  EXPECT_FALSE(S.stats().Shedding);
}

/// Background commits over the backlog watermark are shed with an
/// explicit outcome; the edits themselves are never lost — the pending
/// commit covers them.
TEST_F(RobustnessTest, CommitBacklogWatermarkShedsRequests) {
  auto Prog = fuzzProgram(19);
  ASSERT_TRUE(Prog);
  ServiceOptions SO;
  SO.Overload.MaxCommitBacklog = 1;
  AnalysisService S(std::move(Prog), SO);

  // Slow every commit so requests pile onto the pending slot.
  arm("commit.snapshot", FaultKind::Latency, 1, UINT64_MAX, /*us=*/20000);
  IrEditFuzzer Edits(23);
  uint64_t ShedSeen = 0;
  std::vector<service::CommitTicket> Tickets;
  for (unsigned I = 0; I < 24; ++I) {
    S.editProgram([&](ir::Program &Q) {
      Edits.apply(Q, 2);
      return std::vector<ir::MethodId>{};
    });
    Tickets.push_back(S.submitCommit({CommitMode::Delta, true}));
  }
  for (service::CommitTicket &T : Tickets)
    if (T.wait().Outcome == CommitOutcome::Shed)
      ++ShedSeen;
  S.waitForCommits();
  support::clearFaults();

  EXPECT_GT(ShedSeen, 0u) << "backlog over watermark must shed requests";
  EXPECT_EQ(S.stats().CommitsShed, ShedSeen);
  EXPECT_FALSE(S.dirty()) << "shedding a REQUEST must never lose EDITS";
}

//===----------------------------------------------------------------------===//
// Commit failure isolation
//===----------------------------------------------------------------------===//

/// A commit whose build pipeline throws leaves the world exactly as it
/// was: same generation, same answers, edits still buffered; once the
/// fault passes the same edits commit cleanly.
TEST_F(RobustnessTest, FailedCommitLeavesGenerationUntouched) {
  auto Prog = fuzzProgram(29);
  auto RefProg = fuzzProgram(29);
  ASSERT_TRUE(Prog && RefProg);
  std::vector<ir::VarId> Probe = sampleVars(*Prog, 8);
  ServiceOptions SO;
  SO.Engine.NumThreads = 1;
  AnalysisService S(std::move(Prog), SO);

  ServiceBatchResult Before = S.queryVars(Probe);
  uint64_t Gen0 = S.generation();

  IrEditFuzzer Edits(31), RefEdits(31);
  S.editProgram([&](ir::Program &Q) {
    Edits.apply(Q, 10);
    return std::vector<ir::MethodId>{};
  });
  RefEdits.apply(*RefProg, 10);

  arm("commit.snapshot", FaultKind::Throw);
  CommitStats Failed = S.submitCommit({CommitMode::Delta, false}).wait();
  EXPECT_EQ(Failed.Outcome, CommitOutcome::BuildFailed);
  EXPECT_NE(Failed.Error.find("injected fault"), std::string::npos)
      << Failed.Error;
  EXPECT_EQ(S.generation(), Gen0) << "a failed commit must not publish";
  EXPECT_TRUE(S.dirty()) << "a failed commit must not eat the edits";
  EXPECT_EQ(S.stats().CommitFailures, 1u);

  // The surviving generation still answers, identically to before.
  ServiceBatchResult During = S.queryVars(Probe);
  for (size_t I = 0; I < Probe.size(); ++I) {
    if (During.Outcomes[I].BudgetExceeded || Before.Outcomes[I].BudgetExceeded)
      continue;
    EXPECT_EQ(During.Outcomes[I].AllocSites, Before.Outcomes[I].AllocSites);
  }

  // Fault gone: the same buffered edits commit and match a cold build
  // of the same edited program.
  support::clearFaults();
  CommitStats Fixed = S.submitCommit({CommitMode::Delta, false}).wait();
  EXPECT_EQ(Fixed.Outcome, CommitOutcome::Committed);
  EXPECT_FALSE(S.dirty());
  pag::BuiltPAG Cold = pag::buildPAG(*RefProg);
  analysis::DynSumAnalysis ColdA(*Cold.Graph, AnalysisOptions());
  ServiceBatchResult After = S.queryVars(Probe);
  for (size_t I = 0; I < Probe.size(); ++I) {
    analysis::QueryResult CR = ColdA.query(Cold.Graph->nodeOfVar(Probe[I]));
    if (After.Outcomes[I].BudgetExceeded || CR.BudgetExceeded)
      continue;
    EXPECT_EQ(After.Outcomes[I].AllocSites, CR.allocSites()) << "probe " << I;
  }
}

/// An exception thrown inside a SHARDED lowering worker surfaces as a
/// BuildFailed outcome on the requesting thread — not std::terminate —
/// at every commit thread count.
TEST_F(RobustnessTest, LoweringWorkerExceptionIsContained) {
  for (unsigned Threads : {1u, 4u}) {
    support::clearFaults();
    auto Prog = fuzzProgram(37);
    ASSERT_TRUE(Prog);
    ServiceOptions SO;
    SO.Commit = Threads;
    AnalysisService S(std::move(Prog), SO);
    uint64_t Gen0 = S.generation();

    IrEditFuzzer Edits(41);
    S.editProgram([&](ir::Program &Q) {
      Edits.apply(Q, 12);
      return std::vector<ir::MethodId>{};
    });
    arm("commit.lower", FaultKind::Throw);
    CommitStats Failed = S.submitCommit({CommitMode::Delta, false}).wait();
    EXPECT_EQ(Failed.Outcome, CommitOutcome::BuildFailed)
        << "threads " << Threads;
    EXPECT_EQ(S.generation(), Gen0);

    support::clearFaults();
    CommitStats Fixed = S.submitCommit({CommitMode::Delta, false}).wait();
    EXPECT_EQ(Fixed.Outcome, CommitOutcome::Committed)
        << "threads " << Threads;
  }
}

/// Simulated allocation failure is just another contained exception.
TEST_F(RobustnessTest, AllocationFailureIsContained) {
  auto Prog = fuzzProgram(43);
  ASSERT_TRUE(Prog);
  AnalysisService S(std::move(Prog), ServiceOptions());
  IrEditFuzzer Edits(47);
  S.editProgram([&](ir::Program &Q) {
    Edits.apply(Q, 6);
    return std::vector<ir::MethodId>{};
  });
  arm("commit.snapshot", FaultKind::BadAlloc);
  CommitStats Failed = S.submitCommit({CommitMode::Delta, false}).wait();
  EXPECT_EQ(Failed.Outcome, CommitOutcome::BuildFailed);
  support::clearFaults();
  EXPECT_EQ(S.submitCommit({CommitMode::Delta, false}).wait().Outcome,
            CommitOutcome::Committed);
}

/// The pre-commit validator gate rejects structurally bad edits before
/// any pipeline work, and the rejection names the problem.
TEST_F(RobustnessTest, ValidationGateRejectsBadEditsBeforeBuilding) {
  auto Prog = fuzzProgram(53);
  ASSERT_TRUE(Prog);
  AnalysisService S(std::move(Prog), ServiceOptions());
  uint64_t Gen0 = S.generation();

  // An assign whose destination variable does not exist.
  ir::MethodId Victim = 0;
  S.editProgram([&](ir::Program &Q) {
    ir::Statement Bad;
    Bad.Kind = ir::StmtKind::Assign;
    Bad.Dst = ir::VarId(Q.variables().size() + 1000);
    Bad.Src = Bad.Dst;
    Q.addStatement(Victim, std::move(Bad));
    return std::vector<ir::MethodId>{};
  });

  CommitStats Rejected = S.submitCommit({CommitMode::Delta, false}).wait();
  EXPECT_EQ(Rejected.Outcome, CommitOutcome::ValidationRejected);
  EXPECT_NE(Rejected.Error.find("out of range"), std::string::npos)
      << Rejected.Error;
  EXPECT_EQ(S.generation(), Gen0);
  EXPECT_EQ(S.stats().CommitValidationRejects, 1u);

  // Repair the edit; the gate reopens.
  size_t NumVars = S.program().variables().size();
  S.removeStatements(Victim, [NumVars](const ir::Statement &St) {
    return St.Kind == ir::StmtKind::Assign && St.Dst >= NumVars;
  });
  EXPECT_EQ(S.submitCommit({CommitMode::Delta, false}).wait().Outcome,
            CommitOutcome::Committed);
}

/// A transient fault on the background committer is retried with
/// backoff and succeeds without the caller doing anything.
TEST_F(RobustnessTest, BackgroundCommitterRetriesTransientFaults) {
  auto Prog = fuzzProgram(59);
  ASSERT_TRUE(Prog);
  ServiceOptions SO;
  SO.BackgroundCommitRetries = 3;
  AnalysisService S(std::move(Prog), SO);

  IrEditFuzzer Edits(61);
  S.editProgram([&](ir::Program &Q) {
    Edits.apply(Q, 8);
    return std::vector<ir::MethodId>{};
  });
  arm("commit.snapshot", FaultKind::Throw, 1, /*MaxFires=*/2);
  CommitStats Stats = S.submitCommit({CommitMode::Delta, true}).wait();
  EXPECT_EQ(Stats.Outcome, CommitOutcome::Committed)
      << "two transient faults, three retries: must converge";
  EXPECT_GE(S.stats().CommitRetries, 2u);
  EXPECT_FALSE(S.dirty());
}

/// Edits that keep failing are quarantined: further background
/// requests fail fast (no rebuild attempts) until the edit set
/// changes, at which point commits resume.
TEST_F(RobustnessTest, PoisonEditsQuarantineUntilChanged) {
  auto Prog = fuzzProgram(67);
  ASSERT_TRUE(Prog);
  AnalysisService S(std::move(Prog), ServiceOptions());

  ir::MethodId Victim = 1;
  S.editProgram([&](ir::Program &Q) {
    ir::Statement Bad;
    Bad.Kind = ir::StmtKind::Assign;
    Bad.Dst = ir::VarId(Q.variables().size() + 7);
    Bad.Src = Bad.Dst;
    Q.addStatement(Victim, std::move(Bad));
    return std::vector<ir::MethodId>{};
  });

  // Deterministic failure (validation) arms the quarantine...
  EXPECT_EQ(S.submitCommit({CommitMode::Delta, true}).wait().Outcome,
            CommitOutcome::ValidationRejected);
  EXPECT_TRUE(S.stats().Quarantined);
  // ...and the next request on the SAME edits fails fast.
  EXPECT_EQ(S.submitCommit({CommitMode::Delta, true}).wait().Outcome,
            CommitOutcome::Quarantined);
  EXPECT_GE(S.stats().CommitsQuarantined, 1u);

  // Changing the edit set lifts it.
  size_t NumVars = S.program().variables().size();
  S.removeStatements(Victim, [NumVars](const ir::Statement &St) {
    return St.Kind == ir::StmtKind::Assign && St.Dst >= NumVars;
  });
  EXPECT_EQ(S.submitCommit({CommitMode::Delta, true}).wait().Outcome,
            CommitOutcome::Committed);
  EXPECT_FALSE(S.stats().Quarantined);
  EXPECT_FALSE(S.dirty());
}
