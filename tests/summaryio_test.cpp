//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of summary-cache persistence: round trips, warm-start step
/// savings, and rejection of mismatched or corrupt inputs.
///
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "workload/Generator.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Builds the Figure 2 program with its PAG and a DYNSUM instance.
struct Instance {
  explicit Instance(const char *Source) {
    ir::ParseResult R = ir::parseProgram(Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
    DynSum = std::make_unique<DynSumAnalysis>(*Built.Graph, AnalysisOptions());
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::unique_ptr<DynSumAnalysis> DynSum;
};

TEST(ProgramFingerprintTest, DeterministicAcrossRebuilds) {
  Instance A(dynsum::testing::kFigure2Source);
  Instance B(dynsum::testing::kFigure2Source);
  EXPECT_EQ(programFingerprint(*A.Prog), programFingerprint(*B.Prog));
}

TEST(ProgramFingerprintTest, SensitiveToStatementEdits) {
  Instance A(dynsum::testing::kFigure2Source);
  Instance B(dynsum::testing::kFigure2Source);
  uint64_t Before = programFingerprint(*B.Prog);
  // Append one assignment to Main.main.
  ir::Program &P = *B.Prog;
  ir::TypeId Main = P.findClass(P.names().lookup("Main"));
  ir::MethodId M = P.findMethod(Main, P.names().lookup("main"));
  ir::Statement S;
  S.Kind = ir::StmtKind::Assign;
  S.Dst = P.method(M).Stmts.front().Dst;
  S.Src = P.method(M).Stmts.front().Dst;
  P.addStatement(M, std::move(S));
  EXPECT_NE(programFingerprint(*B.Prog), Before);
  EXPECT_EQ(programFingerprint(*A.Prog), Before);
}

TEST(SummaryIOTest, EmptyCacheRoundTrips) {
  Instance A(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*A.DynSum);
  Instance B(dynsum::testing::kFigure2Source);
  EXPECT_TRUE(deserializeSummaries(*B.DynSum, Buf));
  EXPECT_EQ(B.DynSum->cacheSize(), 0u);
}

/// The central warm-start property: a fresh instance that loads another
/// instance's summaries answers the same queries with the same results
/// and strictly fewer traversal steps.
TEST(SummaryIOTest, WarmStartMatchesResultsWithFewerSteps) {
  Instance Cold(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = Cold.Prog->findClass(Cold.Prog->names().lookup("Main"));
  ir::MethodId Main =
      Cold.Prog->findMethod(MainCls, Cold.Prog->names().lookup("main"));
  std::vector<pag::NodeId> Queries;
  for (const ir::Variable &V : Cold.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      Queries.push_back(Cold.Built.Graph->nodeOfVar(V.Id));
  ASSERT_GT(Queries.size(), 3u);

  uint64_t ColdSteps = 0;
  std::vector<std::vector<ir::AllocId>> ColdResults;
  for (pag::NodeId N : Queries) {
    QueryResult R = Cold.DynSum->query(N);
    ColdSteps += R.Steps;
    ColdResults.push_back(R.allocSites());
  }
  ASSERT_GT(Cold.DynSum->cacheSize(), 0u);

  std::string Buf = serializeSummaries(*Cold.DynSum);
  Instance Warm(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(deserializeSummaries(*Warm.DynSum, Buf));
  EXPECT_EQ(Warm.DynSum->cacheSize(), Cold.DynSum->cacheSize());

  uint64_t WarmSteps = 0;
  for (size_t I = 0; I < Queries.size(); ++I) {
    QueryResult R = Warm.DynSum->query(Queries[I]);
    WarmSteps += R.Steps;
    EXPECT_EQ(R.allocSites(), ColdResults[I]);
  }
  EXPECT_LT(WarmSteps, ColdSteps)
      << "loaded summaries must replace PPTA traversals";
}

TEST(SummaryIOTest, FingerprintMismatchRejected) {
  Instance Fig2(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*Fig2.DynSum);

  Instance Other(dynsum::testing::kStraightLineSource);
  EXPECT_FALSE(deserializeSummaries(*Other.DynSum, Buf));
  EXPECT_EQ(Other.DynSum->cacheSize(), 0u);
}

TEST(SummaryIOTest, TruncatedBufferRejectedAtomically) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));
  std::string Buf = serializeSummaries(*A.DynSum);
  ASSERT_GT(Buf.size(), 32u);

  Instance B(dynsum::testing::kFigure2Source);
  for (size_t Cut : {Buf.size() - 1, Buf.size() / 2, size_t(9), size_t(3)}) {
    EXPECT_FALSE(
        deserializeSummaries(*B.DynSum, std::string_view(Buf).substr(0, Cut)))
        << "cut at " << Cut;
    EXPECT_EQ(B.DynSum->cacheSize(), 0u) << "rejection must be atomic";
  }
}

TEST(SummaryIOTest, CorruptMagicAndVersionRejected) {
  Instance A(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*A.DynSum);
  Instance B(dynsum::testing::kFigure2Source);

  std::string BadMagic = Buf;
  BadMagic[0] = 'X';
  EXPECT_FALSE(deserializeSummaries(*B.DynSum, BadMagic));

  std::string BadVersion = Buf;
  BadVersion[4] = char(0x7f);
  EXPECT_FALSE(deserializeSummaries(*B.DynSum, BadVersion));

  std::string Trailing = Buf + "junk";
  EXPECT_FALSE(deserializeSummaries(*B.DynSum, Trailing));
}

TEST(SummaryIOTest, FileRoundTrip) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));

  std::string Path = ::testing::TempDir() + "/dynsum_summaries.bin";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  Instance B(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(loadSummariesFile(*B.DynSum, Path));
  EXPECT_EQ(B.DynSum->cacheSize(), A.DynSum->cacheSize());
  std::remove(Path.c_str());
}

TEST(SummaryIOTest, MissingFileRejected) {
  Instance A(dynsum::testing::kFigure2Source);
  EXPECT_FALSE(loadSummariesFile(*A.DynSum, "/nonexistent/dynsum.bin"));
}

/// Round trip over a generated program: every cached summary survives
/// byte-for-byte (queries on the loaded instance produce identical
/// results and the cache never grows past the donor's).
TEST(SummaryIOTest, GeneratedProgramRoundTripIsExact) {
  workload::GenOptions Gen;
  Gen.Scale = 1.0 / 256;
  auto P1 = generateProgram(workload::paperSuite()[0], Gen);
  auto P2 = generateProgram(workload::paperSuite()[0], Gen);
  ASSERT_EQ(programFingerprint(*P1), programFingerprint(*P2))
      << "generator must be deterministic for persistence to apply";

  pag::BuiltPAG G1 = pag::buildPAG(*P1);
  pag::BuiltPAG G2 = pag::buildPAG(*P2);
  DynSumAnalysis A1(*G1.Graph, AnalysisOptions());
  DynSumAnalysis A2(*G2.Graph, AnalysisOptions());

  std::vector<ir::VarId> Queries;
  for (const ir::Variable &V : P1->variables())
    if (!V.IsGlobal && V.Id % 83 == 0)
      Queries.push_back(V.Id);
  for (ir::VarId V : Queries)
    A1.query(G1.Graph->nodeOfVar(V));

  ASSERT_TRUE(deserializeSummaries(A2, serializeSummaries(A1)));
  EXPECT_EQ(A1.cacheSize(), A2.cacheSize());

  for (ir::VarId V : Queries) {
    QueryResult R1 = A1.query(G1.Graph->nodeOfVar(V));
    QueryResult R2 = A2.query(G2.Graph->nodeOfVar(V));
    EXPECT_EQ(R1.allocSites(), R2.allocSites());
  }
  EXPECT_EQ(A1.cacheSize(), A2.cacheSize())
      << "warm queries must not recompute anything";
}

} // namespace
