//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of summary-cache persistence: round trips, warm-start step
/// savings, and rejection of mismatched or corrupt inputs.
///
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/FaultInjection.h"
#include "workload/Generator.h"

#include "TestPrograms.h"

#include <fstream>
#include <gtest/gtest.h>
#include <set>
#include <sstream>
#include <tuple>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Builds the Figure 2 program with its PAG and a DYNSUM instance.
struct Instance {
  explicit Instance(const char *Source) {
    ir::ParseResult R = ir::parseProgram(Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
    DynSum = std::make_unique<DynSumAnalysis>(*Built.Graph, AnalysisOptions());
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::unique_ptr<DynSumAnalysis> DynSum;
};

TEST(ProgramFingerprintTest, DeterministicAcrossRebuilds) {
  Instance A(dynsum::testing::kFigure2Source);
  Instance B(dynsum::testing::kFigure2Source);
  EXPECT_EQ(programFingerprint(*A.Prog), programFingerprint(*B.Prog));
}

TEST(ProgramFingerprintTest, SensitiveToStatementEdits) {
  Instance A(dynsum::testing::kFigure2Source);
  Instance B(dynsum::testing::kFigure2Source);
  uint64_t Before = programFingerprint(*B.Prog);
  // Append one assignment to Main.main.
  ir::Program &P = *B.Prog;
  ir::TypeId Main = P.findClass(P.names().lookup("Main"));
  ir::MethodId M = P.findMethod(Main, P.names().lookup("main"));
  ir::Statement S;
  S.Kind = ir::StmtKind::Assign;
  S.Dst = P.method(M).Stmts.front().Dst;
  S.Src = P.method(M).Stmts.front().Dst;
  P.addStatement(M, std::move(S));
  EXPECT_NE(programFingerprint(*B.Prog), Before);
  EXPECT_EQ(programFingerprint(*A.Prog), Before);
}

TEST(SummaryIOTest, EmptyCacheRoundTrips) {
  Instance A(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*A.DynSum);
  Instance B(dynsum::testing::kFigure2Source);
  EXPECT_TRUE(deserializeSummaries(*B.DynSum, Buf));
  EXPECT_EQ(B.DynSum->cacheSize(), 0u);
}

/// The central warm-start property: a fresh instance that loads another
/// instance's summaries answers the same queries with the same results
/// and strictly fewer traversal steps.
TEST(SummaryIOTest, WarmStartMatchesResultsWithFewerSteps) {
  Instance Cold(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = Cold.Prog->findClass(Cold.Prog->names().lookup("Main"));
  ir::MethodId Main =
      Cold.Prog->findMethod(MainCls, Cold.Prog->names().lookup("main"));
  std::vector<pag::NodeId> Queries;
  for (const ir::Variable &V : Cold.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      Queries.push_back(Cold.Built.Graph->nodeOfVar(V.Id));
  ASSERT_GT(Queries.size(), 3u);

  uint64_t ColdSteps = 0;
  std::vector<std::vector<ir::AllocId>> ColdResults;
  for (pag::NodeId N : Queries) {
    QueryResult R = Cold.DynSum->query(N);
    ColdSteps += R.Steps;
    ColdResults.push_back(R.allocSites());
  }
  ASSERT_GT(Cold.DynSum->cacheSize(), 0u);

  std::string Buf = serializeSummaries(*Cold.DynSum);
  Instance Warm(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(deserializeSummaries(*Warm.DynSum, Buf));
  EXPECT_EQ(Warm.DynSum->cacheSize(), Cold.DynSum->cacheSize());

  uint64_t WarmSteps = 0;
  for (size_t I = 0; I < Queries.size(); ++I) {
    QueryResult R = Warm.DynSum->query(Queries[I]);
    WarmSteps += R.Steps;
    EXPECT_EQ(R.allocSites(), ColdResults[I]);
  }
  EXPECT_LT(WarmSteps, ColdSteps)
      << "loaded summaries must replace PPTA traversals";
}

TEST(SummaryIOTest, FingerprintMismatchRejected) {
  Instance Fig2(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*Fig2.DynSum);

  Instance Other(dynsum::testing::kStraightLineSource);
  EXPECT_FALSE(deserializeSummaries(*Other.DynSum, Buf));
  EXPECT_EQ(Other.DynSum->cacheSize(), 0u);
}

/// v3 framing contract under truncation: a cut inside the header
/// rejects the whole file; a cut inside the record stream loads the
/// intact prefix and reports the tear — never garbage entries.
TEST(SummaryIOTest, TruncationLoadsIntactPrefixOnly) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));
  std::string Buf = serializeSummaries(*A.DynSum);
  ASSERT_GT(Buf.size(), 32u);
  uint64_t Full = A.DynSum->cacheSize();

  // Cuts inside the 32-byte header: hard rejection, nothing loads.
  for (size_t Cut : {size_t(3), size_t(9), size_t(24)}) {
    Instance B(dynsum::testing::kFigure2Source);
    SummaryLoadReport R = deserializeSummariesReport(
        *B.DynSum, std::string_view(Buf).substr(0, Cut));
    EXPECT_FALSE(R.Ok) << "cut at " << Cut;
    EXPECT_FALSE(R.Error.empty());
    EXPECT_EQ(B.DynSum->cacheSize(), 0u);
  }

  // The serialized buffer ends with the digest-index section; the
  // record stream ends where the index starts (the trailing u64
  // locates it).
  size_t RecordsEnd = 0;
  for (int I = 7; I >= 0; --I)
    RecordsEnd = RecordsEnd << 8 | uint8_t(Buf[Buf.size() - 8 + I]);
  ASSERT_GT(RecordsEnd, 32u);
  ASSERT_LT(RecordsEnd, Buf.size());

  // Cuts inside the record stream: the intact prefix loads, the report
  // flags the tear, and no partially decoded entry ever merges.
  for (size_t Cut : {RecordsEnd - 1, RecordsEnd / 2, size_t(40)}) {
    Instance B(dynsum::testing::kFigure2Source);
    SummaryLoadReport R = deserializeSummariesReport(
        *B.DynSum, std::string_view(Buf).substr(0, Cut));
    EXPECT_TRUE(R.Ok) << "cut at " << Cut;
    EXPECT_TRUE(R.Truncated) << "cut at " << Cut;
    EXPECT_LT(R.EntriesLoaded, Full);
    EXPECT_EQ(B.DynSum->cacheSize(), R.EntriesLoaded);
  }

  // Cuts inside the trailing index section lose only the index: the
  // streaming loader reads exactly the header's record count and never
  // sees the damage — every record loads, no tear is reported.
  for (size_t Cut : {Buf.size() - 1, RecordsEnd + 1, RecordsEnd}) {
    Instance B(dynsum::testing::kFigure2Source);
    SummaryLoadReport R = deserializeSummariesReport(
        *B.DynSum, std::string_view(Buf).substr(0, Cut));
    EXPECT_TRUE(R.Ok) << "cut at " << Cut;
    EXPECT_FALSE(R.Truncated) << "cut at " << Cut;
    EXPECT_EQ(R.EntriesLoaded, Full);
  }
}

/// Flipping a byte inside one record's payload drops exactly that
/// record (checksum mismatch) and keeps every other entry.
TEST(SummaryIOTest, CorruptRecordIsSkippedAndReported) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));
  std::string Buf = serializeSummaries(*A.DynSum);
  uint64_t Full = A.DynSum->cacheSize();
  ASSERT_GT(Full, 1u);

  // Byte 44 sits inside the first record's payload (32-byte header +
  // 12-byte frame).
  std::string Corrupt = Buf;
  Corrupt[44] = char(Corrupt[44] ^ 0x5a);
  Instance B(dynsum::testing::kFigure2Source);
  SummaryLoadReport R = deserializeSummariesReport(*B.DynSum, Corrupt);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.RecordsSkipped, 1u);
  EXPECT_EQ(R.EntriesLoaded, Full - 1);
  EXPECT_FALSE(R.Truncated);
  ASSERT_EQ(R.SkippedRecords.size(), 1u);
  EXPECT_NE(R.SkippedRecords[0].find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(B.DynSum->cacheSize(), Full - 1);
}

TEST(SummaryIOTest, CorruptMagicVersionAndHeaderRejected) {
  Instance A(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*A.DynSum);
  Instance B(dynsum::testing::kFigure2Source);

  std::string BadMagic = Buf;
  BadMagic[0] = 'X';
  EXPECT_FALSE(deserializeSummaries(*B.DynSum, BadMagic));

  std::string BadVersion = Buf;
  BadVersion[4] = char(0x7f);
  SummaryLoadReport R = deserializeSummariesReport(*B.DynSum, BadVersion);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unsupported"), std::string::npos);

  // A damaged entry count is caught by the header checksum, not by a
  // garbage record walk.
  std::string BadCount = Buf;
  BadCount[16] = char(BadCount[16] ^ 0xff);
  R = deserializeSummariesReport(*B.DynSum, BadCount);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("checksum"), std::string::npos);
  EXPECT_EQ(B.DynSum->cacheSize(), 0u);
}

TEST(SummaryIOTest, FileRoundTrip) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));

  std::string Path = ::testing::TempDir() + "/dynsum_summaries.bin";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  Instance B(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(loadSummariesFile(*B.DynSum, Path));
  EXPECT_EQ(B.DynSum->cacheSize(), A.DynSum->cacheSize());
  std::remove(Path.c_str());
}

TEST(SummaryIOTest, MissingFileRejected) {
  Instance A(dynsum::testing::kFigure2Source);
  EXPECT_FALSE(loadSummariesFile(*A.DynSum, "/nonexistent/dynsum.bin"));
}

/// An interrupted save must never clobber the previous snapshot: the
/// torn temp file is discarded and the target keeps its old bytes.
TEST(SummaryIOTest, FailedSaveLeavesPreviousFileIntact) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));

  std::string Path = ::testing::TempDir() + "/dynsum_atomic_save.dsum";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  // Arm a torn write at byte 100: the next save truncates mid-stream,
  // fails, and must not touch the published file.
  support::FaultSpec Torn;
  Torn.Kind = support::FaultKind::TornWrite;
  Torn.Param = 100;
  support::armFault("save.write", Torn);
  EXPECT_FALSE(saveSummariesFile(*A.DynSum, Path));
  support::clearFaults();

  Instance B(dynsum::testing::kFigure2Source);
  SummaryLoadReport R = loadSummariesFileReport(*B.DynSum, Path);
  EXPECT_TRUE(R.Ok);
  EXPECT_FALSE(R.Truncated);
  EXPECT_EQ(R.RecordsSkipped, 0u);
  EXPECT_EQ(B.DynSum->cacheSize(), A.DynSum->cacheSize());
  std::remove(Path.c_str());
}

/// Regression corpus: checked-in corrupted/truncated .dsum files (made
/// from tests/golden/dsum_corpus/pristine.dsum by flipping or cutting
/// bytes — see the corpus README) must keep degrading exactly as the
/// v3 format promises, across format and compiler changes.
TEST(SummaryIOTest, GoldenCorruptionCorpusDegradesGracefully) {
  std::string Dir = std::string(DYNSUM_TESTS_DIR) + "/golden/dsum_corpus/";
  std::ifstream ProgIn(Dir + "figure2.ir");
  ASSERT_TRUE(ProgIn.good()) << "missing corpus program";
  std::stringstream Src;
  Src << ProgIn.rdbuf();
  std::string Source = Src.str();
  Instance Pristine(Source.c_str());
  SummaryLoadReport Base =
      loadSummariesFileReport(*Pristine.DynSum, Dir + "pristine.dsum");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.EntriesLoaded, 1u);
  EXPECT_EQ(Base.RecordsSkipped, 0u);
  EXPECT_FALSE(Base.Truncated);

  // Header-level damage: hard rejection, nothing merges.
  for (const char *Name : {"truncated_header.dsum", "bad_magic.dsum",
                           "bad_version.dsum", "bad_header_crc.dsum",
                           "empty.dsum"}) {
    Instance B(Source.c_str());
    SummaryLoadReport R = loadSummariesFileReport(*B.DynSum, Dir + Name);
    EXPECT_FALSE(R.Ok) << Name;
    EXPECT_FALSE(R.Error.empty()) << Name;
    EXPECT_EQ(B.DynSum->cacheSize(), 0u) << Name;
  }

  // One corrupted record: skipped and attributed, everything else
  // loads.
  {
    Instance B(Source.c_str());
    SummaryLoadReport R =
        loadSummariesFileReport(*B.DynSum, Dir + "corrupt_record.dsum");
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.RecordsSkipped, 1u);
    EXPECT_EQ(R.EntriesLoaded, Base.EntriesLoaded - 1);
    ASSERT_EQ(R.SkippedRecords.size(), 1u);
  }

  // Torn tail: the intact prefix loads and the tear is reported.
  {
    Instance B(Source.c_str());
    SummaryLoadReport R =
        loadSummariesFileReport(*B.DynSum, Dir + "truncated_records.dsum");
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.Truncated);
    EXPECT_LT(R.EntriesLoaded, Base.EntriesLoaded);
    EXPECT_EQ(B.DynSum->cacheSize(), R.EntriesLoaded);
  }
}

/// Round trip over a generated program: every cached summary survives
/// byte-for-byte (queries on the loaded instance produce identical
/// results and the cache never grows past the donor's).
TEST(SummaryIOTest, GeneratedProgramRoundTripIsExact) {
  workload::GenOptions Gen;
  Gen.Scale = 1.0 / 256;
  auto P1 = generateProgram(workload::paperSuite()[0], Gen);
  auto P2 = generateProgram(workload::paperSuite()[0], Gen);
  ASSERT_EQ(programFingerprint(*P1), programFingerprint(*P2))
      << "generator must be deterministic for persistence to apply";

  pag::BuiltPAG G1 = pag::buildPAG(*P1);
  pag::BuiltPAG G2 = pag::buildPAG(*P2);
  DynSumAnalysis A1(*G1.Graph, AnalysisOptions());
  DynSumAnalysis A2(*G2.Graph, AnalysisOptions());

  std::vector<ir::VarId> Queries;
  for (const ir::Variable &V : P1->variables())
    if (!V.IsGlobal && V.Id % 83 == 0)
      Queries.push_back(V.Id);
  for (ir::VarId V : Queries)
    A1.query(G1.Graph->nodeOfVar(V));

  ASSERT_TRUE(deserializeSummaries(A2, serializeSummaries(A1)));
  EXPECT_EQ(A1.cacheSize(), A2.cacheSize());

  for (ir::VarId V : Queries) {
    QueryResult R1 = A1.query(G1.Graph->nodeOfVar(V));
    QueryResult R2 = A2.query(G2.Graph->nodeOfVar(V));
    EXPECT_EQ(R1.allocSites(), R2.allocSites());
  }
  EXPECT_EQ(A1.cacheSize(), A2.cacheSize())
      << "warm queries must not recompute anything";
}

//===----------------------------------------------------------------------===//
// MappedSummaryFile: the disk tier's random-access reader
//===----------------------------------------------------------------------===//

/// One summary cache entry in on-disk key form, for probing the mmap
/// reader: the packed in-memory key decoded (bit 0 = state, bits 1..32
/// = node, bits 33..63 = field-stack id) and the node canonicalized
/// the way the serializer does (VarId, or numVars + AllocId for object
/// nodes).
struct CachedKey {
  uint32_t Canonical = 0;
  RsmState State = RsmState::S1;
  std::vector<uint32_t> Fields;
  PortableSummary Summary;
};

uint32_t canonicalOf(const Instance &A, pag::NodeId N) {
  const pag::Node &Node = A.Built.Graph->node(N);
  if (Node.Kind == pag::NodeKind::Object)
    return uint32_t(A.Prog->variables().size()) + Node.IrId;
  return Node.IrId;
}

std::vector<CachedKey> decodeCache(const Instance &A) {
  std::vector<CachedKey> Out;
  const StackPool &Stacks = A.DynSum->fieldStacks();
  for (const auto &[Packed, S] : A.DynSum->summaryCache()) {
    CachedKey K;
    K.Canonical = canonicalOf(A, pag::NodeId((Packed >> 1) & 0xffffffffu));
    K.State = (Packed & 1) == 0 ? RsmState::S1 : RsmState::S2;
    K.Fields = Stacks.elements(StackId{uint32_t(Packed >> 33)});
    K.Summary = A.DynSum->exportSummary(S);
    Out.push_back(std::move(K));
  }
  return Out;
}

/// The record's bytes must equal the donor cache entry exactly, with
/// tuple nodes compared in canonical form.
void expectRecordMatches(const Instance &A, const CachedKey &K,
                         const DecodedSummaryRecord &R) {
  EXPECT_EQ(R.CanonicalNode, K.Canonical);
  EXPECT_EQ(int(R.State), int(K.State));
  EXPECT_EQ(R.Fields, K.Fields);
  EXPECT_EQ(R.Objects, K.Summary.Objects);
  EXPECT_EQ(R.FieldData, K.Summary.FieldData);
  ASSERT_EQ(R.Tuples.size(), K.Summary.Tuples.size());
  for (size_t I = 0; I < R.Tuples.size(); ++I) {
    EXPECT_EQ(R.Tuples[I].CanonicalNode,
              canonicalOf(A, K.Summary.Tuples[I].Node));
    EXPECT_EQ(int(R.Tuples[I].State), int(K.Summary.Tuples[I].State));
    EXPECT_EQ(R.Tuples[I].FieldsLen, K.Summary.Tuples[I].FieldsLen);
  }
}

Instance warmFigure2Instance() {
  Instance A(dynsum::testing::kFigure2Source);
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));
  EXPECT_GT(A.DynSum->cacheSize(), 10u);
  return A;
}

TEST(MappedSummaryFileTest, FooterIndexRoundTripServesEveryRecord) {
  Instance A = warmFigure2Instance();
  std::string Path = ::testing::TempDir() + "/mapped_roundtrip.dsum";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  std::string Error;
  std::unique_ptr<MappedSummaryFile> File = MappedSummaryFile::open(
      Path, programFingerprint(*A.Prog), A.Prog->variables().size(),
      A.Prog->allocs().size(), &Error);
  ASSERT_NE(File, nullptr) << Error;
  EXPECT_TRUE(File->indexedOnOpen())
      << "the serializer appends a digest index; open must use it";
  EXPECT_EQ(File->records(), A.DynSum->cacheSize());

  std::vector<CachedKey> Keys = decodeCache(A);
  DecodedSummaryRecord R;
  for (const CachedKey &K : Keys) {
    ASSERT_TRUE(File->find(K.Canonical, K.State, K.Fields, R))
        << "canonical node " << K.Canonical;
    expectRecordMatches(A, K, R);
  }
  EXPECT_EQ(File->corruptRecords(), 0u);

  // A key that was never saved misses cleanly.
  EXPECT_FALSE(File->find(Keys[0].Canonical, RsmState::S1, {99, 99}, R));
  std::remove(Path.c_str());
}

TEST(MappedSummaryFileTest, DamagedIndexFallsBackToFrameScan) {
  Instance A = warmFigure2Instance();
  std::string Path = ::testing::TempDir() + "/mapped_badindex.dsum";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  std::ifstream In(Path, std::ios::binary);
  std::string Buf((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  In.close();
  size_t RecordsEnd = 0;
  for (int I = 7; I >= 0; --I)
    RecordsEnd = RecordsEnd << 8 | uint8_t(Buf[Buf.size() - 8 + I]);
  ASSERT_LT(RecordsEnd, Buf.size());

  std::vector<CachedKey> Keys = decodeCache(A);
  // Two damage shapes: a flipped byte inside the index (checksum
  // mismatch) and a torn-off footer (a pre-index-sized tail).  Both
  // must open, report the index unusable, and still serve every
  // record through the frame scan.
  std::string Flipped = Buf;
  Flipped[RecordsEnd + 5] = char(Flipped[RecordsEnd + 5] ^ 0x5a);
  std::string Torn = Buf.substr(0, RecordsEnd);
  for (const std::string &Damaged : {Flipped, Torn}) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Damaged.data(), std::streamsize(Damaged.size()));
    Out.close();

    std::string Error;
    std::unique_ptr<MappedSummaryFile> File = MappedSummaryFile::open(
        Path, programFingerprint(*A.Prog), A.Prog->variables().size(),
        A.Prog->allocs().size(), &Error);
    ASSERT_NE(File, nullptr) << Error;
    EXPECT_FALSE(File->indexedOnOpen());
    EXPECT_EQ(File->records(), A.DynSum->cacheSize());
    DecodedSummaryRecord R;
    for (const CachedKey &K : Keys) {
      ASSERT_TRUE(File->find(K.Canonical, K.State, K.Fields, R));
      expectRecordMatches(A, K, R);
    }
    EXPECT_EQ(File->corruptRecords(), 0u);
  }
  std::remove(Path.c_str());
}

TEST(MappedSummaryFileTest, RejectsHeaderDamageAndWrongFingerprint) {
  Instance A = warmFigure2Instance();
  std::string Path = ::testing::TempDir() + "/mapped_reject.dsum";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));
  uint64_t Fp = programFingerprint(*A.Prog);
  size_t NumVars = A.Prog->variables().size();
  size_t NumAllocs = A.Prog->allocs().size();

  std::string Error;
  EXPECT_EQ(MappedSummaryFile::open(Path, Fp + 1, NumVars, NumAllocs, &Error),
            nullptr);
  EXPECT_NE(Error.find("fingerprint"), std::string::npos) << Error;
  EXPECT_EQ(MappedSummaryFile::open("/nonexistent/x.dsum", Fp, NumVars,
                                    NumAllocs, &Error),
            nullptr);

  std::ifstream In(Path, std::ios::binary);
  std::string Buf((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  In.close();
  for (size_t Damage : {size_t(0), size_t(4), size_t(16)}) {
    std::string Bad = Buf;
    Bad[Damage] = char(Bad[Damage] ^ 0x7f);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bad.data(), std::streamsize(Bad.size()));
    Out.close();
    EXPECT_EQ(MappedSummaryFile::open(Path, Fp, NumVars, NumAllocs, &Error),
              nullptr)
        << "header byte " << Damage;
    EXPECT_FALSE(Error.empty());
  }
  std::remove(Path.c_str());
}

/// The disk tier's skip semantics must match the streaming loader
/// record-for-record over the golden corruption corpus: every record
/// the loader merges is servable through the mmap reader, every record
/// it skips or loses to a tear is a miss — and never a crash.  The
/// corpus files predate the digest index, so this also pins the
/// frame-scan fallback against real pre-index v3 bytes.
TEST(MappedSummaryFileTest, AgreesWithStreamingLoaderOnGoldenCorpus) {
  std::string Dir = std::string(DYNSUM_TESTS_DIR) + "/golden/dsum_corpus/";
  std::ifstream ProgIn(Dir + "figure2.ir");
  ASSERT_TRUE(ProgIn.good());
  std::stringstream Src;
  Src << ProgIn.rdbuf();
  std::string Source = Src.str();

  // The pristine file defines the full key set.
  Instance Pristine(Source.c_str());
  ASSERT_TRUE(loadSummariesFile(*Pristine.DynSum, Dir + "pristine.dsum"));
  std::vector<CachedKey> AllKeys = decodeCache(Pristine);
  ASSERT_GT(AllKeys.size(), 1u);
  uint64_t Fp = programFingerprint(*Pristine.Prog);
  size_t NumVars = Pristine.Prog->variables().size();
  size_t NumAllocs = Pristine.Prog->allocs().size();

  struct Expectation {
    const char *Name;
    uint64_t ExpectCorrupt; // records dead to CRC, counted on probe
  };
  for (const Expectation &E :
       {Expectation{"pristine.dsum", 0}, Expectation{"corrupt_record.dsum", 1},
        Expectation{"truncated_records.dsum", 0}}) {
    // What does the streaming loader accept from this file?
    Instance Loaded(Source.c_str());
    SummaryLoadReport Rep =
        loadSummariesFileReport(*Loaded.DynSum, Dir + E.Name);
    ASSERT_TRUE(Rep.Ok) << E.Name << ": " << Rep.Error;
    std::set<std::tuple<uint32_t, int, std::vector<uint32_t>>> Accepted;
    for (const CachedKey &K : decodeCache(Loaded))
      Accepted.insert({K.Canonical, int(K.State), K.Fields});

    std::string Error;
    std::unique_ptr<MappedSummaryFile> File =
        MappedSummaryFile::open(Dir + E.Name, Fp, NumVars, NumAllocs, &Error);
    ASSERT_NE(File, nullptr) << E.Name << ": " << Error;
    EXPECT_FALSE(File->indexedOnOpen())
        << E.Name << " predates the digest index";

    DecodedSummaryRecord R;
    size_t Hits = 0;
    for (const CachedKey &K : AllKeys) {
      bool Hit = File->find(K.Canonical, K.State, K.Fields, R);
      bool WasAccepted =
          Accepted.count({K.Canonical, int(K.State), K.Fields}) != 0;
      EXPECT_EQ(Hit, WasAccepted)
          << E.Name << ": mmap reader and streaming loader disagree on "
             "canonical node "
          << K.Canonical;
      if (Hit) {
        expectRecordMatches(Pristine, K, R);
        ++Hits;
      }
    }
    EXPECT_EQ(Hits, Rep.EntriesLoaded) << E.Name;
    EXPECT_EQ(File->corruptRecords(), E.ExpectCorrupt) << E.Name;
  }
}

/// Indexed golden files: a current-writer .dsum with its digest index
/// intact must open indexed; its bad_index sibling (one flipped byte
/// inside the index section) must fall back to the scan and still
/// serve everything.
TEST(MappedSummaryFileTest, GoldenIndexedCorpusServesMmapReader) {
  std::string Dir = std::string(DYNSUM_TESTS_DIR) + "/golden/dsum_corpus/";
  std::ifstream ProgIn(Dir + "figure2.ir");
  ASSERT_TRUE(ProgIn.good());
  std::stringstream Src;
  Src << ProgIn.rdbuf();
  std::string Source = Src.str();

  Instance Pristine(Source.c_str());
  ASSERT_TRUE(
      loadSummariesFile(*Pristine.DynSum, Dir + "pristine_indexed.dsum"));
  std::vector<CachedKey> Keys = decodeCache(Pristine);
  ASSERT_GT(Keys.size(), 1u);
  uint64_t Fp = programFingerprint(*Pristine.Prog);
  size_t NumVars = Pristine.Prog->variables().size();
  size_t NumAllocs = Pristine.Prog->allocs().size();

  struct Expectation {
    const char *Name;
    bool Indexed;
  };
  for (const Expectation &E : {Expectation{"pristine_indexed.dsum", true},
                               Expectation{"bad_index.dsum", false}}) {
    std::string Error;
    std::unique_ptr<MappedSummaryFile> File =
        MappedSummaryFile::open(Dir + E.Name, Fp, NumVars, NumAllocs, &Error);
    ASSERT_NE(File, nullptr) << E.Name << ": " << Error;
    EXPECT_EQ(File->indexedOnOpen(), E.Indexed) << E.Name;
    EXPECT_EQ(File->records(), Keys.size()) << E.Name;
    DecodedSummaryRecord R;
    for (const CachedKey &K : Keys) {
      ASSERT_TRUE(File->find(K.Canonical, K.State, K.Fields, R)) << E.Name;
      expectRecordMatches(Pristine, K, R);
    }
    EXPECT_EQ(File->corruptRecords(), 0u) << E.Name;
  }
}

} // namespace
