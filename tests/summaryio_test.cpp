//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of summary-cache persistence: round trips, warm-start step
/// savings, and rejection of mismatched or corrupt inputs.
///
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/FaultInjection.h"
#include "workload/Generator.h"

#include "TestPrograms.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// Builds the Figure 2 program with its PAG and a DYNSUM instance.
struct Instance {
  explicit Instance(const char *Source) {
    ir::ParseResult R = ir::parseProgram(Source);
    EXPECT_TRUE(R.ok()) << R.Error;
    Prog = std::move(R.Prog);
    Built = pag::buildPAG(*Prog);
    DynSum = std::make_unique<DynSumAnalysis>(*Built.Graph, AnalysisOptions());
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::unique_ptr<DynSumAnalysis> DynSum;
};

TEST(ProgramFingerprintTest, DeterministicAcrossRebuilds) {
  Instance A(dynsum::testing::kFigure2Source);
  Instance B(dynsum::testing::kFigure2Source);
  EXPECT_EQ(programFingerprint(*A.Prog), programFingerprint(*B.Prog));
}

TEST(ProgramFingerprintTest, SensitiveToStatementEdits) {
  Instance A(dynsum::testing::kFigure2Source);
  Instance B(dynsum::testing::kFigure2Source);
  uint64_t Before = programFingerprint(*B.Prog);
  // Append one assignment to Main.main.
  ir::Program &P = *B.Prog;
  ir::TypeId Main = P.findClass(P.names().lookup("Main"));
  ir::MethodId M = P.findMethod(Main, P.names().lookup("main"));
  ir::Statement S;
  S.Kind = ir::StmtKind::Assign;
  S.Dst = P.method(M).Stmts.front().Dst;
  S.Src = P.method(M).Stmts.front().Dst;
  P.addStatement(M, std::move(S));
  EXPECT_NE(programFingerprint(*B.Prog), Before);
  EXPECT_EQ(programFingerprint(*A.Prog), Before);
}

TEST(SummaryIOTest, EmptyCacheRoundTrips) {
  Instance A(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*A.DynSum);
  Instance B(dynsum::testing::kFigure2Source);
  EXPECT_TRUE(deserializeSummaries(*B.DynSum, Buf));
  EXPECT_EQ(B.DynSum->cacheSize(), 0u);
}

/// The central warm-start property: a fresh instance that loads another
/// instance's summaries answers the same queries with the same results
/// and strictly fewer traversal steps.
TEST(SummaryIOTest, WarmStartMatchesResultsWithFewerSteps) {
  Instance Cold(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = Cold.Prog->findClass(Cold.Prog->names().lookup("Main"));
  ir::MethodId Main =
      Cold.Prog->findMethod(MainCls, Cold.Prog->names().lookup("main"));
  std::vector<pag::NodeId> Queries;
  for (const ir::Variable &V : Cold.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      Queries.push_back(Cold.Built.Graph->nodeOfVar(V.Id));
  ASSERT_GT(Queries.size(), 3u);

  uint64_t ColdSteps = 0;
  std::vector<std::vector<ir::AllocId>> ColdResults;
  for (pag::NodeId N : Queries) {
    QueryResult R = Cold.DynSum->query(N);
    ColdSteps += R.Steps;
    ColdResults.push_back(R.allocSites());
  }
  ASSERT_GT(Cold.DynSum->cacheSize(), 0u);

  std::string Buf = serializeSummaries(*Cold.DynSum);
  Instance Warm(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(deserializeSummaries(*Warm.DynSum, Buf));
  EXPECT_EQ(Warm.DynSum->cacheSize(), Cold.DynSum->cacheSize());

  uint64_t WarmSteps = 0;
  for (size_t I = 0; I < Queries.size(); ++I) {
    QueryResult R = Warm.DynSum->query(Queries[I]);
    WarmSteps += R.Steps;
    EXPECT_EQ(R.allocSites(), ColdResults[I]);
  }
  EXPECT_LT(WarmSteps, ColdSteps)
      << "loaded summaries must replace PPTA traversals";
}

TEST(SummaryIOTest, FingerprintMismatchRejected) {
  Instance Fig2(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*Fig2.DynSum);

  Instance Other(dynsum::testing::kStraightLineSource);
  EXPECT_FALSE(deserializeSummaries(*Other.DynSum, Buf));
  EXPECT_EQ(Other.DynSum->cacheSize(), 0u);
}

/// v3 framing contract under truncation: a cut inside the header
/// rejects the whole file; a cut inside the record stream loads the
/// intact prefix and reports the tear — never garbage entries.
TEST(SummaryIOTest, TruncationLoadsIntactPrefixOnly) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));
  std::string Buf = serializeSummaries(*A.DynSum);
  ASSERT_GT(Buf.size(), 32u);
  uint64_t Full = A.DynSum->cacheSize();

  // Cuts inside the 32-byte header: hard rejection, nothing loads.
  for (size_t Cut : {size_t(3), size_t(9), size_t(24)}) {
    Instance B(dynsum::testing::kFigure2Source);
    SummaryLoadReport R = deserializeSummariesReport(
        *B.DynSum, std::string_view(Buf).substr(0, Cut));
    EXPECT_FALSE(R.Ok) << "cut at " << Cut;
    EXPECT_FALSE(R.Error.empty());
    EXPECT_EQ(B.DynSum->cacheSize(), 0u);
  }

  // Cuts inside the record stream: the intact prefix loads, the report
  // flags the tear, and no partially decoded entry ever merges.
  for (size_t Cut : {Buf.size() - 1, Buf.size() / 2, size_t(40)}) {
    Instance B(dynsum::testing::kFigure2Source);
    SummaryLoadReport R = deserializeSummariesReport(
        *B.DynSum, std::string_view(Buf).substr(0, Cut));
    EXPECT_TRUE(R.Ok) << "cut at " << Cut;
    EXPECT_TRUE(R.Truncated) << "cut at " << Cut;
    EXPECT_LT(R.EntriesLoaded, Full);
    EXPECT_EQ(B.DynSum->cacheSize(), R.EntriesLoaded);
  }
}

/// Flipping a byte inside one record's payload drops exactly that
/// record (checksum mismatch) and keeps every other entry.
TEST(SummaryIOTest, CorruptRecordIsSkippedAndReported) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));
  std::string Buf = serializeSummaries(*A.DynSum);
  uint64_t Full = A.DynSum->cacheSize();
  ASSERT_GT(Full, 1u);

  // Byte 44 sits inside the first record's payload (32-byte header +
  // 12-byte frame).
  std::string Corrupt = Buf;
  Corrupt[44] = char(Corrupt[44] ^ 0x5a);
  Instance B(dynsum::testing::kFigure2Source);
  SummaryLoadReport R = deserializeSummariesReport(*B.DynSum, Corrupt);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.RecordsSkipped, 1u);
  EXPECT_EQ(R.EntriesLoaded, Full - 1);
  EXPECT_FALSE(R.Truncated);
  ASSERT_EQ(R.SkippedRecords.size(), 1u);
  EXPECT_NE(R.SkippedRecords[0].find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(B.DynSum->cacheSize(), Full - 1);
}

TEST(SummaryIOTest, CorruptMagicVersionAndHeaderRejected) {
  Instance A(dynsum::testing::kFigure2Source);
  std::string Buf = serializeSummaries(*A.DynSum);
  Instance B(dynsum::testing::kFigure2Source);

  std::string BadMagic = Buf;
  BadMagic[0] = 'X';
  EXPECT_FALSE(deserializeSummaries(*B.DynSum, BadMagic));

  std::string BadVersion = Buf;
  BadVersion[4] = char(0x7f);
  SummaryLoadReport R = deserializeSummariesReport(*B.DynSum, BadVersion);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unsupported"), std::string::npos);

  // A damaged entry count is caught by the header checksum, not by a
  // garbage record walk.
  std::string BadCount = Buf;
  BadCount[16] = char(BadCount[16] ^ 0xff);
  R = deserializeSummariesReport(*B.DynSum, BadCount);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("checksum"), std::string::npos);
  EXPECT_EQ(B.DynSum->cacheSize(), 0u);
}

TEST(SummaryIOTest, FileRoundTrip) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));

  std::string Path = ::testing::TempDir() + "/dynsum_summaries.bin";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  Instance B(dynsum::testing::kFigure2Source);
  ASSERT_TRUE(loadSummariesFile(*B.DynSum, Path));
  EXPECT_EQ(B.DynSum->cacheSize(), A.DynSum->cacheSize());
  std::remove(Path.c_str());
}

TEST(SummaryIOTest, MissingFileRejected) {
  Instance A(dynsum::testing::kFigure2Source);
  EXPECT_FALSE(loadSummariesFile(*A.DynSum, "/nonexistent/dynsum.bin"));
}

/// An interrupted save must never clobber the previous snapshot: the
/// torn temp file is discarded and the target keeps its old bytes.
TEST(SummaryIOTest, FailedSaveLeavesPreviousFileIntact) {
  Instance A(dynsum::testing::kFigure2Source);
  ir::TypeId MainCls = A.Prog->findClass(A.Prog->names().lookup("Main"));
  ir::MethodId Main =
      A.Prog->findMethod(MainCls, A.Prog->names().lookup("main"));
  for (const ir::Variable &V : A.Prog->variables())
    if (!V.IsGlobal && V.Owner == Main)
      A.DynSum->query(A.Built.Graph->nodeOfVar(V.Id));

  std::string Path = ::testing::TempDir() + "/dynsum_atomic_save.dsum";
  ASSERT_TRUE(saveSummariesFile(*A.DynSum, Path));

  // Arm a torn write at byte 100: the next save truncates mid-stream,
  // fails, and must not touch the published file.
  support::FaultSpec Torn;
  Torn.Kind = support::FaultKind::TornWrite;
  Torn.Param = 100;
  support::armFault("save.write", Torn);
  EXPECT_FALSE(saveSummariesFile(*A.DynSum, Path));
  support::clearFaults();

  Instance B(dynsum::testing::kFigure2Source);
  SummaryLoadReport R = loadSummariesFileReport(*B.DynSum, Path);
  EXPECT_TRUE(R.Ok);
  EXPECT_FALSE(R.Truncated);
  EXPECT_EQ(R.RecordsSkipped, 0u);
  EXPECT_EQ(B.DynSum->cacheSize(), A.DynSum->cacheSize());
  std::remove(Path.c_str());
}

/// Regression corpus: checked-in corrupted/truncated .dsum files (made
/// from tests/golden/dsum_corpus/pristine.dsum by flipping or cutting
/// bytes — see the corpus README) must keep degrading exactly as the
/// v3 format promises, across format and compiler changes.
TEST(SummaryIOTest, GoldenCorruptionCorpusDegradesGracefully) {
  std::string Dir = std::string(DYNSUM_TESTS_DIR) + "/golden/dsum_corpus/";
  std::ifstream ProgIn(Dir + "figure2.ir");
  ASSERT_TRUE(ProgIn.good()) << "missing corpus program";
  std::stringstream Src;
  Src << ProgIn.rdbuf();
  std::string Source = Src.str();
  Instance Pristine(Source.c_str());
  SummaryLoadReport Base =
      loadSummariesFileReport(*Pristine.DynSum, Dir + "pristine.dsum");
  ASSERT_TRUE(Base.Ok) << Base.Error;
  ASSERT_GT(Base.EntriesLoaded, 1u);
  EXPECT_EQ(Base.RecordsSkipped, 0u);
  EXPECT_FALSE(Base.Truncated);

  // Header-level damage: hard rejection, nothing merges.
  for (const char *Name : {"truncated_header.dsum", "bad_magic.dsum",
                           "bad_version.dsum", "bad_header_crc.dsum",
                           "empty.dsum"}) {
    Instance B(Source.c_str());
    SummaryLoadReport R = loadSummariesFileReport(*B.DynSum, Dir + Name);
    EXPECT_FALSE(R.Ok) << Name;
    EXPECT_FALSE(R.Error.empty()) << Name;
    EXPECT_EQ(B.DynSum->cacheSize(), 0u) << Name;
  }

  // One corrupted record: skipped and attributed, everything else
  // loads.
  {
    Instance B(Source.c_str());
    SummaryLoadReport R =
        loadSummariesFileReport(*B.DynSum, Dir + "corrupt_record.dsum");
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.RecordsSkipped, 1u);
    EXPECT_EQ(R.EntriesLoaded, Base.EntriesLoaded - 1);
    ASSERT_EQ(R.SkippedRecords.size(), 1u);
  }

  // Torn tail: the intact prefix loads and the tear is reported.
  {
    Instance B(Source.c_str());
    SummaryLoadReport R =
        loadSummariesFileReport(*B.DynSum, Dir + "truncated_records.dsum");
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.Truncated);
    EXPECT_LT(R.EntriesLoaded, Base.EntriesLoaded);
    EXPECT_EQ(B.DynSum->cacheSize(), R.EntriesLoaded);
  }
}

/// Round trip over a generated program: every cached summary survives
/// byte-for-byte (queries on the loaded instance produce identical
/// results and the cache never grows past the donor's).
TEST(SummaryIOTest, GeneratedProgramRoundTripIsExact) {
  workload::GenOptions Gen;
  Gen.Scale = 1.0 / 256;
  auto P1 = generateProgram(workload::paperSuite()[0], Gen);
  auto P2 = generateProgram(workload::paperSuite()[0], Gen);
  ASSERT_EQ(programFingerprint(*P1), programFingerprint(*P2))
      << "generator must be deterministic for persistence to apply";

  pag::BuiltPAG G1 = pag::buildPAG(*P1);
  pag::BuiltPAG G2 = pag::buildPAG(*P2);
  DynSumAnalysis A1(*G1.Graph, AnalysisOptions());
  DynSumAnalysis A2(*G2.Graph, AnalysisOptions());

  std::vector<ir::VarId> Queries;
  for (const ir::Variable &V : P1->variables())
    if (!V.IsGlobal && V.Id % 83 == 0)
      Queries.push_back(V.Id);
  for (ir::VarId V : Queries)
    A1.query(G1.Graph->nodeOfVar(V));

  ASSERT_TRUE(deserializeSummaries(A2, serializeSummaries(A1)));
  EXPECT_EQ(A1.cacheSize(), A2.cacheSize());

  for (ir::VarId V : Queries) {
    QueryResult R1 = A1.query(G1.Graph->nodeOfVar(V));
    QueryResult R2 = A2.query(G2.Graph->nodeOfVar(V));
    EXPECT_EQ(R1.allocSites(), R2.allocSites());
  }
  EXPECT_EQ(A1.cacheSize(), A2.cacheSize())
      << "warm queries must not recompute anything";
}

} // namespace
