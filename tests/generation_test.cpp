//===----------------------------------------------------------------------===//
///
/// \file
/// Generation-lifetime tests for the copy-on-write snapshot machinery:
/// retained generations must answer DynSum queries bit-identically to
/// their capture time while later commits rewrite the current graph in
/// place; PAG snapshots destroyed in arbitrary order must free their
/// chunks exactly once (ASan/TSan verify); retained memory must be
/// proportional to the committed deltas, not to program size; and the
/// shared-store warm path (service.shared_over_clear_all in the bench)
/// is pinned here via the per-store counters so the cliff ROADMAP.md
/// records cannot regress silently again.
///
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "analysis/DynSum.h"
#include "incremental/Invalidation.h"
#include "pag/PAGBuilder.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <random>
#include <unordered_set>
#include <thread>
#include <vector>

using namespace dynsum;
using namespace dynsum::service;
using analysis::AnalysisOptions;
using incremental::InvalidationPolicy;
using workload::applyScriptEdit;
using workload::probeVariables;

namespace {

std::unique_ptr<ir::Program> makeWorkload(uint64_t Seed = 7) {
  workload::GenOptions GO;
  GO.Scale = 1.0 / 256;
  GO.Seed = Seed;
  return workload::generateProgram(workload::specByName("soot-c"), GO);
}

std::vector<std::vector<ir::AllocId>>
answersOf(const ServiceBatchResult &R) {
  std::vector<std::vector<ir::AllocId>> Out;
  Out.reserve(R.Outcomes.size());
  for (const engine::QueryOutcome &O : R.Outcomes)
    Out.push_back(O.AllocSites);
  return Out;
}

} // namespace

/// Each retained generation keeps answering exactly as it did when it
/// was the current one, no matter how many commits rewrite the current
/// graph afterwards — the chunk tables it shares with its successors
/// must never observe their writes.
TEST(GenerationTest, RetainedGenerationsAnswerAtCaptureTime) {
  constexpr unsigned kCommits = 5;

  ServiceOptions SO;
  SO.KeepGenerations = kCommits; // retain the full history
  AnalysisService S(makeWorkload(), SO);
  std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
  ASSERT_GT(Probe.size(), 8u);

  // Capture (generation number, answers) after every commit.
  std::vector<std::pair<uint64_t, std::vector<std::vector<ir::AllocId>>>>
      Captured;
  Captured.emplace_back(S.generation(), answersOf(S.queryVars(Probe)));
  for (unsigned I = 0; I < kCommits; ++I) {
    S.editProgram([I](ir::Program &Q) { return applyScriptEdit(Q, I); });
    S.submitCommit().wait();
    Captured.emplace_back(S.generation(), answersOf(S.queryVars(Probe)));
  }

  // The history holds every superseded generation plus the current one.
  std::vector<GenerationInfo> Gens = S.generations();
  ASSERT_EQ(Gens.size(), kCommits + 1);
  EXPECT_TRUE(Gens.back().IsCurrent);
  for (size_t I = 0; I + 1 < Gens.size(); ++I) {
    EXPECT_FALSE(Gens[I].IsCurrent);
    EXPECT_LT(Gens[I].Number, Gens[I + 1].Number);
  }

  // Replay every capture against its retained snapshot.
  for (const auto &[Gen, Expected] : Captured) {
    std::optional<ServiceBatchResult> R = S.queryVarsAt(Gen, Probe);
    ASSERT_TRUE(R.has_value()) << "generation " << Gen << " not retained";
    EXPECT_EQ(R->Generation, Gen);
    EXPECT_EQ(answersOf(*R), Expected)
        << "generation " << Gen << " drifted from its capture";
  }

  // The edits were not no-ops: at least one capture pair differs.
  bool AnyDiff = false;
  for (size_t I = 0; I + 1 < Captured.size(); ++I)
    AnyDiff |= Captured[I].second != Captured[I + 1].second;
  EXPECT_TRUE(AnyDiff) << "edit script never changed a probe answer";
}

/// The history ring trims to KeepGenerations; evicted snapshots stop
/// being queryable and release their exclusively held chunks.
TEST(GenerationTest, HistoryTrimsToKeepGenerations) {
  ServiceOptions SO;
  SO.KeepGenerations = 2;
  AnalysisService S(makeWorkload(), SO);
  std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);

  uint64_t FirstGen = S.generation();
  for (unsigned I = 0; I < 4; ++I) {
    S.editProgram([I](ir::Program &Q) { return applyScriptEdit(Q, I); });
    S.submitCommit().wait();
  }

  std::vector<GenerationInfo> Gens = S.generations();
  ASSERT_EQ(Gens.size(), 3u) << "2 retained + current";
  EXPECT_FALSE(S.queryVarsAt(FirstGen, Probe).has_value())
      << "evicted generation must not answer";
  EXPECT_TRUE(S.queryVarsAt(Gens.front().Number, Probe).has_value());
  EXPECT_EQ(S.stats().RetainedGenerations, 2u);
}

/// Retaining a generation behind a single-method delta commit costs
/// memory proportional to the delta: the retained snapshot's exclusive
/// bytes are a small fraction of the full graph footprint, and far
/// below what a Scratch commit (which rewrites every chunk) retains.
TEST(GenerationTest, RetainedMemoryProportionalToDelta) {
  // ~850 methods so the chunk tables span a couple hundred chunks; at
  // the default test scale every table is a single chunk and one write
  // splits it all, which is granularity, not leakage.
  auto MakeProgram = [] {
    workload::GenOptions GO;
    GO.Scale = 1.0 / 4;
    GO.Seed = 7;
    return workload::generateProgram(workload::specByName("soot-c"), GO);
  };

  auto RetainedAfter = [&](CommitMode Mode) {
    ServiceOptions SO;
    SO.KeepGenerations = 1;
    AnalysisService S(MakeProgram(), SO);
    S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
    S.submitCommit({Mode, /*Background=*/false}).wait();
    std::vector<GenerationInfo> Gens = S.generations();
    EXPECT_EQ(Gens.size(), 2u);
    EXPECT_FALSE(Gens.front().IsCurrent);
    return Gens.front();
  };

  GenerationInfo Delta = RetainedAfter(CommitMode::Delta);
  ASSERT_GT(Delta.TotalBytes, 0u);
  EXPECT_GT(Delta.RetainedBytes, 0u)
      << "a delta commit must split at least one chunk";
  // The one-method delta touches a bounded set of chunks; the bench
  // gates the 100k-method build at 5%, this scale lands around 12%.
  EXPECT_LT(Delta.RetainedBytes, Delta.TotalBytes / 4)
      << "retained generation duplicates too much of the graph";

  // Scale-independent version of the same claim: a Scratch commit
  // rewrites every method, so it must strand several times more bytes
  // in the retained snapshot than the single-method delta does.
  GenerationInfo Scratch = RetainedAfter(CommitMode::Scratch);
  EXPECT_GT(Scratch.RetainedBytes, 2 * Delta.RetainedBytes)
      << "delta commits no longer share most chunks with the snapshot";
}

/// PAG snapshots form a copy chain patched between captures; destroying
/// them in shuffled orders (including mid-chain first) must leave every
/// survivor answering exactly its capture-time results.  Under ASan
/// this also proves each chunk is freed exactly once.
TEST(GenerationTest, SnapshotChainSurvivesShuffledDestruction) {
  constexpr unsigned kSnapshots = 6;

  for (uint64_t Seed : {1u, 2u, 3u}) {
    auto P = makeWorkload();
    std::vector<ir::VarId> Probe = probeVariables(*P, 61);
    pag::BuiltPAG Built = pag::buildPAG(*P);

    struct Snapshot {
      std::unique_ptr<pag::PAG> Graph;
      pag::CallGraph Calls;
      std::vector<std::vector<ir::AllocId>> Answers;
    };
    auto answersOn = [&](const pag::PAG &G) {
      analysis::DynSumAnalysis A(G, AnalysisOptions());
      std::vector<std::vector<ir::AllocId>> Out;
      for (ir::VarId V : Probe)
        Out.push_back(A.query(G.nodeOfVar(V)).allocSites());
      return Out;
    };

    std::vector<std::unique_ptr<Snapshot>> Snaps;
    for (unsigned I = 0; I < kSnapshots; ++I) {
      auto Snap = std::make_unique<Snapshot>();
      Snap->Graph = std::make_unique<pag::PAG>(*Built.Graph); // CoW copy
      Snap->Calls = Built.Calls;
      Snap->Answers = answersOn(*Snap->Graph);
      Snaps.push_back(std::move(Snap));
      applyScriptEdit(*P, I);
      pag::buildPAGDelta(*Built.Graph, Built.Calls);
    }

    std::vector<size_t> Order(Snaps.size());
    std::iota(Order.begin(), Order.end(), 0u);
    std::mt19937 Rng(Seed * 7919);
    std::shuffle(Order.begin(), Order.end(), Rng);

    for (size_t Victim : Order) {
      Snaps[Victim].reset();
      for (size_t I = 0; I < Snaps.size(); ++I) {
        if (!Snaps[I])
          continue;
        EXPECT_EQ(answersOn(*Snaps[I]->Graph), Snaps[I]->Answers)
            << "snapshot " << I << " drifted after destroying " << Victim
            << " (seed " << Seed << ")";
      }
    }
  }
}

/// Readers streaming batches against retained generations while commits
/// rewrite the current graph: every answer must match its generation's
/// capture (TSan additionally proves the chunk refcounts and the
/// history ring are race-free).
TEST(GenerationTest, ConcurrentReadersOnRetainedGenerations) {
  constexpr unsigned kCommits = 4;
  constexpr unsigned kReaders = 3;

  ServiceOptions SO;
  SO.KeepGenerations = kCommits;
  AnalysisService S(makeWorkload(), SO);
  std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);

  // Capture the baseline generation, then race readers against commits.
  std::vector<std::pair<uint64_t, std::vector<std::vector<ir::AllocId>>>>
      Captured;
  std::mutex CapturedMutex;
  Captured.emplace_back(S.generation(), answersOf(S.queryVars(Probe)));

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Replays{0};
  std::vector<std::thread> Readers;
  for (unsigned W = 0; W < kReaders; ++W)
    Readers.emplace_back([&, W] {
      std::mt19937 Rng(W * 31 + 5);
      do {
        std::pair<uint64_t, std::vector<std::vector<ir::AllocId>>> Pick;
        {
          std::lock_guard<std::mutex> Lock(CapturedMutex);
          Pick = Captured[Rng() % Captured.size()];
        }
        std::optional<ServiceBatchResult> R = S.queryVarsAt(Pick.first, Probe);
        if (!R.has_value())
          continue; // evicted between pick and query (keep == kCommits
                    // so this only happens for a racing rollback)
        ASSERT_EQ(answersOf(*R), Pick.second)
            << "generation " << Pick.first << " drifted under readers";
        Replays.fetch_add(1, std::memory_order_relaxed);
      } while (!Done.load(std::memory_order_relaxed));
    });

  for (unsigned I = 0; I < kCommits; ++I) {
    S.editProgram([I](ir::Program &Q) { return applyScriptEdit(Q, I); });
    S.submitCommit().wait();
    auto Capture =
        std::make_pair(S.generation(), answersOf(S.queryVars(Probe)));
    std::lock_guard<std::mutex> Lock(CapturedMutex);
    Captured.push_back(std::move(Capture));
  }
  Done.store(true, std::memory_order_relaxed);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Replays.load(), 0u);
}

/// rollback() republishes a retained snapshot in O(1): subsequent
/// queries answer exactly as that generation did at capture, under a
/// fresh generation number (the lineage branched, so summaries reset).
TEST(GenerationTest, RollbackRestoresCaptureAnswers) {
  ServiceOptions SO;
  SO.KeepGenerations = 3;
  AnalysisService S(makeWorkload(), SO);
  std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);

  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
  S.submitCommit().wait();
  uint64_t TargetGen = S.generation();
  auto TargetAnswers = answersOf(S.queryVars(Probe));

  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 1); });
  S.submitCommit().wait();
  uint64_t HeadGen = S.generation();
  EXPECT_GT(HeadGen, TargetGen);

  EXPECT_FALSE(S.rollback(HeadGen + 1000)) << "unknown generation";
  ASSERT_TRUE(S.rollback(TargetGen));
  EXPECT_GT(S.generation(), HeadGen)
      << "rollback republishes under a fresh, monotonic number";
  EXPECT_EQ(answersOf(S.queryVars(Probe)), TargetAnswers);
  EXPECT_EQ(S.stats().Rollbacks, 1u);

  // The service keeps committing normally after a rollback: the next
  // delta builds on the republished snapshot, not the abandoned head.
  S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 2); });
  incremental::CommitStats CS = S.submitCommit().wait();
  EXPECT_GT(CS.MethodsRelowered, 0u);
  EXPECT_EQ(S.queryVars(Probe).Outcomes.size(), Probe.size());
}

/// Pins the shared-store warm path behind service.shared_over_clear_all:
/// after a single-method commit, the PerMethod policy must keep most of
/// the store warm (hits on the re-query, few invalidations) while
/// ClearAll drops everything.  The per-store counters make the cliff
/// measurable — if an engine change stops fetching from the shared
/// store or invalidation turns indiscriminate, this fails before the
/// bench does.
TEST(GenerationTest, SharedStoreStaysWarmOverClearAll) {
  auto RunPolicy = [](InvalidationPolicy Policy) {
    ServiceOptions SO;
    SO.Policy = Policy;
    AnalysisService S(makeWorkload(), SO);
    std::vector<ir::VarId> Probe = probeVariables(S.program(), 61);
    (void)S.queryVars(Probe); // warm the store

    S.editProgram([](ir::Program &Q) { return applyScriptEdit(Q, 0); });
    S.submitCommit().wait();

    engine::StoreCounters Before = S.stats().Store;
    (void)S.queryVars(Probe); // the gated re-query
    engine::StoreCounters After = S.stats().Store;

    struct Result {
      uint64_t RequeryHits;
      uint64_t Invalidated;
      size_t StoreSize;
    };
    return Result{After.Hits - Before.Hits, After.Invalidated,
                  S.stats().StoreSize};
  };

  auto PerMethod = RunPolicy(InvalidationPolicy::PerMethod);
  auto ClearAll = RunPolicy(InvalidationPolicy::ClearAll);

  // ClearAll drops the whole store at commit; PerMethod drops only the
  // edited methods' summaries.
  EXPECT_GT(PerMethod.StoreSize, 0u);
  EXPECT_LT(PerMethod.Invalidated, ClearAll.Invalidated)
      << "per-method invalidation turned indiscriminate";

  // The warm path: the re-query after a PerMethod commit must hit the
  // surviving entries.  This is the regression service.shared_over_
  // clear_all measures (1.80x in PR 3, 0.18x in PR 5) — if this count
  // collapses, the warm path is gone no matter what the bench ratio
  // says about wall clock.
  EXPECT_GT(PerMethod.RequeryHits, 0u)
      << "re-query after a per-method commit never hit the shared store";
  EXPECT_GT(PerMethod.RequeryHits, ClearAll.RequeryHits)
      << "PerMethod must stay warmer than ClearAll across a commit";
}

/// The O(delta) invalidation patch (carried snapshot + the repack's
/// dirty-node list) must produce exactly the plan a full
/// position-for-position diff would, and must leave the carried
/// snapshot bit-identical to a fresh sweep of the new graph — for a
/// chain of edits, so a patched snapshot is a valid carry for the next
/// patch.
TEST(GenerationTest, PatchedInvalidationMatchesFullDiff) {
  auto P = makeWorkload(11);
  pag::BuiltPAG Built = pag::buildPAG(*P);
  pag::PAG &G = *Built.Graph;

  incremental::BoundarySnapshot Carried = incremental::snapshotBoundary(G);
  for (int I = 0; I < 6; ++I) {
    applyScriptEdit(*P, I);
    // Full-diff reference needs the pre-edit flags; the patch path
    // reuses Carried from the previous round.
    incremental::BoundarySnapshot Old = Carried;
    pag::DeltaStats DS = pag::buildPAGDelta(G, Built.Calls);
    std::unordered_set<ir::MethodId> Dirty(DS.Touched.begin(),
                                           DS.Touched.end());
    incremental::InvalidationPlan Full =
        incremental::planInvalidation(Old, G, Dirty);
    ASSERT_FALSE(G.lastRepackCompacted())
        << "edit " << I << " compacted; pick a smaller edit script";
    incremental::InvalidationPlan Patched = incremental::patchInvalidation(
        Carried, G, G.lastRepackAffectedNodes(), Dirty);
    EXPECT_EQ(Patched.Methods, Full.Methods) << "plan diverged at edit " << I;

    incremental::BoundarySnapshot Fresh = incremental::snapshotBoundary(G);
    ASSERT_EQ(Carried.Flags.size(), Fresh.Flags.size());
    for (size_t N = 0; N < Fresh.Flags.size(); ++N) {
      const incremental::BoundaryFlags &A = Carried.Flags[N];
      const incremental::BoundaryFlags &B = Fresh.Flags[N];
      ASSERT_TRUE(A.Method == B.Method && A.HasLocalEdge == B.HasLocalEdge &&
                  A.HasGlobalIn == B.HasGlobalIn &&
                  A.HasGlobalOut == B.HasGlobalOut)
          << "patched snapshot diverged at node " << N << " after edit " << I;
    }
  }
}
