//===----------------------------------------------------------------------===//
///
/// \file
/// Representation-equivalence tests for the kind-partitioned CSR PAG
/// and the iterative PPTA engine.
///
/// tests/golden/csr_corpus.txt holds the answer of every query in the
/// engine-test corpus (soot-c and jython at 1/64 scale, every 37th
/// local), captured from the seed implementation (per-node
/// vector-of-vectors adjacency, recursive PptaEngine::visit) before the
/// CSR/worklist rewrite.  The tests assert that the rewritten stack
/// reproduces those answers bit-for-bit — sequentially and through the
/// batched engine at 1 and N threads — plus structural CSR invariants
/// and a >100k-deep assign chain that would have overflowed the
/// recursive engine's call stack.
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "engine/QueryScheduler.h"
#include "ir/Builder.h"
#include "pag/PAGBuilder.h"
#include "workload/Generator.h"

#include "RepackCorpus.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// One golden record: the canonical alloc-site answer of a query.
struct GoldenEntry {
  bool BudgetExceeded = false;
  std::vector<ir::AllocId> AllocSites;
};

/// Parses tests/golden/csr_corpus.txt ("<spec> <idx> <exceeded> : a...").
std::map<std::string, std::vector<GoldenEntry>> loadGolden() {
  std::map<std::string, std::vector<GoldenEntry>> Out;
  std::ifstream In(std::string(DYNSUM_TESTS_DIR) + "/golden/csr_corpus.txt");
  EXPECT_TRUE(In.good()) << "missing golden corpus file";
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Spec, Colon;
    size_t Idx = 0;
    int Exceeded = 0;
    LS >> Spec >> Idx >> Exceeded >> Colon;
    EXPECT_EQ(Colon, ":") << "malformed golden line: " << Line;
    GoldenEntry E;
    E.BudgetExceeded = Exceeded != 0;
    ir::AllocId A = 0;
    while (LS >> A)
      E.AllocSites.push_back(A);
    EXPECT_EQ(Out[Spec].size(), Idx) << "golden lines out of order";
    Out[Spec].push_back(std::move(E));
  }
  return Out;
}

/// The exact corpus the golden file was generated from.
struct Corpus {
  explicit Corpus(const char *SpecName) {
    workload::GenOptions GO;
    GO.Scale = 1.0 / 64;
    Prog = workload::generateProgram(workload::specByName(SpecName), GO);
    Built = pag::buildPAG(*Prog);
    for (const ir::Variable &V : Prog->variables())
      if (!V.IsGlobal && V.Id % 37 == 0)
        Nodes.push_back(Built.Graph->nodeOfVar(V.Id));
  }

  std::unique_ptr<ir::Program> Prog;
  pag::BuiltPAG Built;
  std::vector<pag::NodeId> Nodes;
};

} // namespace

//===----------------------------------------------------------------------===//
// Query results are identical across the representation change
//===----------------------------------------------------------------------===//

TEST(CsrEquivalenceTest, SequentialMatchesSeedGolden) {
  auto Golden = loadGolden();
  for (const char *Spec : {"soot-c", "jython"}) {
    Corpus C(Spec);
    const std::vector<GoldenEntry> &G = Golden[Spec];
    ASSERT_EQ(C.Nodes.size(), G.size()) << Spec;

    DynSumAnalysis A(*C.Built.Graph, AnalysisOptions());
    for (size_t I = 0; I < C.Nodes.size(); ++I) {
      QueryResult R = A.query(C.Nodes[I]);
      EXPECT_EQ(R.BudgetExceeded, G[I].BudgetExceeded)
          << Spec << " query " << I;
      EXPECT_EQ(R.allocSites(), G[I].AllocSites) << Spec << " query " << I;
    }
  }
}

TEST(CsrEquivalenceTest, BatchedEngineMatchesSeedGoldenAt1AndNThreads) {
  auto Golden = loadGolden();
  for (const char *Spec : {"soot-c", "jython"}) {
    Corpus C(Spec);
    const std::vector<GoldenEntry> &G = Golden[Spec];
    ASSERT_EQ(C.Nodes.size(), G.size()) << Spec;

    for (unsigned Threads : {1u, 4u}) {
      engine::EngineOptions EO;
      EO.NumThreads = Threads;
      engine::QueryScheduler S(*C.Built.Graph, EO);
      engine::BatchResult R = S.run(C.Nodes);
      ASSERT_EQ(R.Outcomes.size(), G.size());
      for (size_t I = 0; I < G.size(); ++I) {
        EXPECT_EQ(R.Outcomes[I].BudgetExceeded, G[I].BudgetExceeded)
            << Spec << " query " << I << " at " << Threads << " threads";
        EXPECT_EQ(R.Outcomes[I].AllocSites, G[I].AllocSites)
            << Spec << " query " << I << " at " << Threads << " threads";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// CSR structural invariants
//===----------------------------------------------------------------------===//

TEST(CsrStructureTest, KindSpansPartitionTheNodeSpan) {
  Corpus C("soot-c");
  const pag::PAG &G = *C.Built.Graph;
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    size_t InTotal = 0, OutTotal = 0;
    for (unsigned K = 0; K < pag::kNumEdgeKinds; ++K) {
      pag::EdgeKind Kind = pag::EdgeKind(K);
      for (pag::EdgeId E : G.inEdgesOfKind(N, Kind)) {
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Dst, N);
        ++InTotal;
      }
      for (pag::EdgeId E : G.outEdgesOfKind(N, Kind)) {
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Src, N);
        ++OutTotal;
      }
    }
    EXPECT_EQ(InTotal, G.inEdges(N).size()) << "node " << N;
    EXPECT_EQ(OutTotal, G.outEdges(N).size()) << "node " << N;
  }
}

TEST(CsrStructureTest, EveryEdgeAppearsOncePerDirection) {
  Corpus C("jython");
  const pag::PAG &G = *C.Built.Graph;
  std::vector<unsigned> InSeen(G.numEdges(), 0), OutSeen(G.numEdges(), 0);
  size_t InTotal = 0, OutTotal = 0;
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    for (pag::EdgeId E : G.inEdges(N)) {
      ++InSeen[E];
      ++InTotal;
    }
    for (pag::EdgeId E : G.outEdges(N)) {
      ++OutSeen[E];
      ++OutTotal;
    }
  }
  EXPECT_EQ(InTotal, G.numEdges());
  EXPECT_EQ(OutTotal, G.numEdges());
  for (pag::EdgeId E = 0; E < G.numEdges(); ++E) {
    EXPECT_EQ(InSeen[E], 1u) << "edge " << E;
    EXPECT_EQ(OutSeen[E], 1u) << "edge " << E;
  }
}

TEST(CsrStructureTest, FieldSpansHoldExactlyTheLabelledAccesses) {
  Corpus C("soot-c");
  const pag::PAG &G = *C.Built.Graph;
  std::vector<size_t> Stores(C.Prog->fields().size(), 0);
  std::vector<size_t> Loads(C.Prog->fields().size(), 0);
  for (pag::EdgeId E = 0; E < G.numEdges(); ++E) {
    if (G.edge(E).Kind == pag::EdgeKind::Store)
      ++Stores[G.edge(E).Aux];
    else if (G.edge(E).Kind == pag::EdgeKind::Load)
      ++Loads[G.edge(E).Aux];
  }
  for (ir::FieldId F = 0; F < C.Prog->fields().size(); ++F) {
    EXPECT_EQ(G.storesOfField(F).size(), Stores[F]) << "field " << F;
    EXPECT_EQ(G.loadsOfField(F).size(), Loads[F]) << "field " << F;
    for (pag::EdgeId E : G.storesOfField(F)) {
      EXPECT_EQ(G.edge(E).Kind, pag::EdgeKind::Store);
      EXPECT_EQ(G.edge(E).Aux, F);
    }
    for (pag::EdgeId E : G.loadsOfField(F)) {
      EXPECT_EQ(G.edge(E).Kind, pag::EdgeKind::Load);
      EXPECT_EQ(G.edge(E).Aux, F);
    }
  }
}

//===----------------------------------------------------------------------===//
// Dirty-partition repacks: the incremental CSR keeps its invariants
// through growth (region relocation), shrink (holes) and slot reuse
//===----------------------------------------------------------------------===//

namespace {

/// Re-checks every CSR invariant on \p G, tolerating the relocation
/// holes and dead slots a delta repack leaves behind.
void expectCsrInvariants(const pag::PAG &G) {
  std::vector<unsigned> InSeen(G.numEdgeSlots(), 0),
      OutSeen(G.numEdgeSlots(), 0);
  for (pag::NodeId N = 0; N < G.numNodes(); ++N) {
    size_t InTotal = 0, OutTotal = 0;
    for (unsigned K = 0; K < pag::kNumEdgeKinds; ++K) {
      pag::EdgeKind Kind = pag::EdgeKind(K);
      for (pag::EdgeId E : G.inEdgesOfKind(N, Kind)) {
        ASSERT_TRUE(G.edgeAlive(E));
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Dst, N);
        ++InSeen[E];
        ++InTotal;
      }
      for (pag::EdgeId E : G.outEdgesOfKind(N, Kind)) {
        ASSERT_TRUE(G.edgeAlive(E));
        EXPECT_EQ(G.edge(E).Kind, Kind);
        EXPECT_EQ(G.edge(E).Src, N);
        ++OutSeen[E];
        ++OutTotal;
      }
    }
    EXPECT_EQ(InTotal, G.inEdges(N).size()) << "node " << N;
    EXPECT_EQ(OutTotal, G.outEdges(N).size()) << "node " << N;
  }
  for (pag::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    unsigned Want = G.edgeAlive(E) ? 1 : 0;
    EXPECT_EQ(InSeen[E], Want) << "edge " << E;
    EXPECT_EQ(OutSeen[E], Want) << "edge " << E;
  }
}

/// Appends \p Count alloc+assign pairs to \p M, each assigning into
/// \p M's first local: that node's in-bucket grows every round, so its
/// CSR region must relocate (leaving a hole) on every delta repack.
void growMethod(ir::Program &P, ir::MethodId M, unsigned Count) {
  ir::VarId Base = ir::kNone;
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M) {
      Base = V.Id;
      break;
    }
  for (unsigned I = 0; I < Count; ++I) {
    ir::VarId V = P.createLocal(
        P.name("grow" + std::to_string(P.variables().size())), M,
        ir::kObjectType);
    ir::Statement S;
    S.Kind = ir::StmtKind::Alloc;
    S.Dst = V;
    S.Type = ir::kObjectType;
    S.Alloc = P.createAllocSite(ir::kObjectType, M, Symbol{});
    P.addStatement(M, std::move(S));
    if (Base != ir::kNone) {
      ir::Statement A;
      A.Kind = ir::StmtKind::Assign;
      A.Src = V;
      A.Dst = Base;
      P.addStatement(M, std::move(A));
    }
  }
}

} // namespace

TEST(CsrDeltaRepackTest, GrowShrinkAndReuseKeepInvariants) {
  workload::GenOptions GO;
  GO.Scale = 1.0 / 128;
  auto Prog = workload::generateProgram(workload::specByName("soot-c"), GO);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);
  pag::PAG &G = *Built.Graph;

  // Grow one method hard: its nodes' regions outgrow their slots and
  // must relocate to the array tail.
  ir::MethodId M0 = Prog->methods()[3].Id;
  growMethod(*Prog, M0, 40);
  pag::DeltaStats DS = pag::buildPAGDelta(G, Built.Calls);
  EXPECT_FALSE(DS.Compacted);
  EXPECT_EQ(DS.Relowered.size(), 1u);
  expectCsrInvariants(G);

  // Shrink another method to nothing: dead slots + in-place holes.
  ir::MethodId M1 = Prog->methods()[5].Id;
  size_t Before = G.numEdges();
  size_t SegmentSize = G.segmentEdges(M1).size();
  ASSERT_GT(SegmentSize, 0u);
  Prog->method(M1).Stmts.clear();
  Prog->touchMethod(M1);
  pag::buildPAGDelta(G, Built.Calls);
  EXPECT_LT(G.numEdges(), Before);
  EXPECT_TRUE(G.segmentEdges(M1).empty());
  EXPECT_GT(G.deadEdgeSlots(), 0u);
  expectCsrInvariants(G);

  // Refill it: freed slots are reused, buckets rebuilt once more.
  growMethod(*Prog, M1, unsigned(SegmentSize));
  pag::buildPAGDelta(G, Built.Calls);
  expectCsrInvariants(G);
}

TEST(CsrDeltaRepackTest, AccumulatedSlackTriggersCompaction) {
  workload::GenOptions GO;
  GO.Scale = 1.0 / 256;
  auto Prog = workload::generateProgram(workload::specByName("soot-c"), GO);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);
  pag::PAG &G = *Built.Graph;

  // Hammer one method: its first local's in-bucket grows every round,
  // so the region relocates each repack and the abandoned copies pile
  // up quadratically until the slack policy forces a compacting full
  // pack; invariants must hold before and after.
  ir::MethodId M = Prog->methods()[1].Id;
  bool SawCompaction = false;
  for (unsigned Round = 0; Round < 80 && !SawCompaction; ++Round) {
    growMethod(*Prog, M, 16);
    pag::DeltaStats DS = pag::buildPAGDelta(G, Built.Calls);
    SawCompaction |= DS.Compacted;
    if (Round % 10 == 0)
      expectCsrInvariants(G);
  }
  EXPECT_TRUE(SawCompaction) << "slack never crossed the compaction bar";
  EXPECT_EQ(G.deadEdgeSlots(), 0u) << "compaction must reclaim dead slots";
  expectCsrInvariants(G);

  // After compaction the full pack is dense again: every slot is live
  // and the classic seed invariant (edge ids 0..numEdges) holds.
  EXPECT_EQ(G.numEdges(), G.numEdgeSlots());
}

//===----------------------------------------------------------------------===//
// Partitioned repack boundaries: the repack corpus drives dirty buckets
// adjacent across worker ranges, tail relocations, slot reuse and a
// slack-triggered compaction mid-sequence; answers must match the
// golden "repack-r<N>" sections captured from the serial seed build, at
// every repack worker count.
//===----------------------------------------------------------------------===//

TEST(CsrRepackGoldenTest, PartitionedRepackMatchesSeedGoldenAtAllThreads) {
  auto Golden = loadGolden();
  for (unsigned Threads : {1u, 2u, 8u}) {
    auto Prog = dynsum::testing::buildRepackCorpusProgram();
    ir::Program &P = *Prog;
    pag::PAG G(P);
    pag::CallGraph Calls;
    pag::buildPAGDelta(G, Calls, nullptr, false, Threads);

    bool SawCompaction = false, SawIncremental = false;
    for (unsigned Round = 0; Round < dynsum::testing::kRepackRounds;
         ++Round) {
      dynsum::testing::applyRepackRound(P, Round);
      pag::DeltaStats DS =
          pag::buildPAGDelta(G, Calls, nullptr, false, Threads);
      SawCompaction |= DS.Compacted;
      SawIncremental |= !DS.Compacted;
      expectCsrInvariants(G);

      const std::vector<GoldenEntry> &Gold =
          Golden["repack-r" + std::to_string(Round)];
      std::vector<ir::VarId> Probe =
          dynsum::testing::repackProbeVariables(P);
      ASSERT_EQ(Probe.size(), Gold.size())
          << "round " << Round << ": corpus drifted from its golden";

      DynSumAnalysis A(G, AnalysisOptions());
      for (size_t I = 0; I < Probe.size(); ++I) {
        QueryResult R = A.query(G.nodeOfVar(Probe[I]));
        EXPECT_EQ(R.BudgetExceeded, Gold[I].BudgetExceeded)
            << "threads " << Threads << ", round " << Round << ", probe "
            << I;
        EXPECT_EQ(R.allocSites(), Gold[I].AllocSites)
            << "threads " << Threads << ", round " << Round << ", probe "
            << I;
      }
    }
    EXPECT_TRUE(SawCompaction)
        << "the hammer rounds must cross the compaction bar";
    EXPECT_TRUE(SawIncremental)
        << "the structured rounds must exercise the partitioned repack";
  }
}

//===----------------------------------------------------------------------===//
// Deep chains: the worklist engine cannot overflow the call stack
//===----------------------------------------------------------------------===//

TEST(CsrEquivalenceTest, DeepAssignChainIsAnsweredWithoutRecursion) {
  // v0 = new A; v1 = v0; ...; v120000 = v119999.  The seed's recursive
  // visit() would push one native stack frame per assign and overflow;
  // the explicit worklist answers it in bounded stack space.
  constexpr uint32_t ChainLen = 120000;
  ir::ProgramBuilder B;
  B.cls("A");
  ir::MethodId M = B.method("main");
  B.alloc(M, "v0", "A", "origin");
  std::string Prev = "v0";
  for (uint32_t I = 1; I <= ChainLen; ++I) {
    std::string Cur = "v" + std::to_string(I);
    B.assign(M, Cur, Prev);
    Prev = Cur;
  }
  std::unique_ptr<ir::Program> Prog = B.takeProgram();
  pag::BuiltPAG Built = pag::buildPAG(*Prog);

  AnalysisOptions Opts;
  Opts.BudgetPerQuery = uint64_t(ChainLen) * 4; // chain must fit in budget
  DynSumAnalysis A(*Built.Graph, Opts);

  ir::VarId Tail = ir::kNone;
  Symbol TailName = Prog->names().lookup(Prev);
  for (const ir::Variable &V : Prog->variables())
    if (V.Name == TailName)
      Tail = V.Id;
  ASSERT_NE(Tail, ir::kNone);

  QueryResult R = A.query(Built.Graph->nodeOfVar(Tail));
  EXPECT_FALSE(R.BudgetExceeded);
  ASSERT_EQ(R.allocSites().size(), 1u);
  EXPECT_EQ(R.allocSites()[0], 0u); // the single allocation site
}
