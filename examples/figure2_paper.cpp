//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 2 walkthrough: parse the Vector/Client program
/// from its textual IR, dump the PAG, and replay the motivating queries
/// s1 and s2, showing the summary reuse of Section 4.3 / Table 1.
///
/// Run: build/examples/figure2_paper [--dump]
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "ir/Parser.h"
#include "pag/PAGBuilder.h"
#include "support/CommandLine.h"
#include "support/Debug.h"
#include "support/OStream.h"
#include "workload/PaperExample.h"

using namespace dynsum;
using namespace dynsum::analysis;

static pag::NodeId mainVar(const ir::Program &P, const pag::PAG &G,
                           const char *Name) {
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && P.names().text(V.Name) == std::string_view(Name) &&
        P.describeMethod(V.Owner) == "Main.main")
      return G.nodeOfVar(V.Id);
  fatalError("figure-2 variable not found");
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);

  ir::ParseResult R = ir::parseProgram(workload::figure2Source());
  if (!R.ok()) {
    errs() << "parse error: " << R.Error << '\n';
    return 1;
  }
  pag::BuiltPAG Built = pag::buildPAG(*R.Prog);

  outs() << "Figure 2 program: " << R.Prog->methods().size()
         << " methods, " << Built.Graph->numNodes() << " PAG nodes, "
         << Built.Graph->numEdges() << " PAG edges\n";
  if (CL.has("dump")) {
    outs() << '\n';
    Built.Graph->dump(outs());
  }

  AnalysisOptions Opts;
  DynSumAnalysis DynSum(*Built.Graph, Opts);

  auto RunQuery = [&](const char *Name) {
    QueryResult Res = DynSum.query(mainVar(*R.Prog, *Built.Graph, Name));
    outs() << "\npts(" << Name << ") = { ";
    for (ir::AllocId Site : Res.allocSites())
      outs() << R.Prog->describeAlloc(Site) << ' ';
    outs() << "}  -- " << Res.Steps << " steps, cache now holds "
           << DynSum.cacheSize() << " summaries";
  };

  // Section 3.4 / 4.3: s1 resolves to {o26}, s2 to {o29}; answering s2
  // after s1 reuses the summaries of Vector.get, Client.retrieve, ...
  RunQuery("s1");
  RunQuery("s2");
  outs() << "\n\nThe second query is cheaper: the summaries of the "
            "library methods (Vector.get, Client.retrieve, ...) were "
            "reused under new calling contexts --\n"
            "the \"local reachability reuse\" the paper is about.\n";

  // Contrast: REFINEPTS re-traverses for each query.
  RefinePtsAnalysis Refine(*Built.Graph, Opts);
  QueryResult R1 = Refine.query(mainVar(*R.Prog, *Built.Graph, "s1"));
  QueryResult R2 = Refine.query(mainVar(*R.Prog, *Built.Graph, "s2"));
  outs() << "\nREFINEPTS took " << R1.Steps << " + " << R2.Steps
         << " steps for the same two queries ("
         << Refine.lastIterations() << " refinement iterations on s2).\n";
  outs().flush();
  return 0;
}
