//===----------------------------------------------------------------------===//
///
/// \file
/// The IDE/JIT scenario the paper motivates (Sections 1 and 7): a
/// program is queried, *edited*, and re-queried.  DYNSUM's summaries
/// are per-method and context-independent, so an edit only invalidates
/// the edited method's summaries; everything else is reused.
///
/// Run: build/examples/ide_incremental [--bench=bloat] [--scale=0.02]
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "clients/Client.h"
#include "pag/PAGBuilder.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "workload/Generator.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  workload::GenOptions GO;
  GO.Scale = CL.getDouble("scale", 0.02);
  std::string Bench = CL.getString("bench", "bloat");

  std::unique_ptr<ir::Program> Prog =
      workload::generateProgram(workload::specByName(Bench), GO);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);

  NullDerefClient Client;
  std::vector<ClientQuery> Queries = Client.makeQueries(*Built.Graph, 120);

  AnalysisOptions Opts;
  DynSumAnalysis DynSum(*Built.Graph, Opts);

  auto RunAll = [&](const char *Label) {
    uint64_t Steps = 0;
    for (const ClientQuery &Q : Queries)
      Steps += DynSum.query(Q.Node).Steps;
    outs() << Label << ": " << Steps << " steps, cache holds "
           << DynSum.cacheSize() << " summaries\n";
    return Steps;
  };

  outs() << "IDE session on '" << Bench << "' (" << Queries.size()
         << " NullDeref inspections per pass)\n\n";

  uint64_t Cold = RunAll("initial analysis    (cold)");
  uint64_t Warm = RunAll("re-run, no edits    (warm)");

  // The user edits one hot library method: only its summaries drop.
  ir::MethodId Edited = 0; // rank 0 is the hottest container method
  size_t Before = DynSum.cacheSize();
  DynSum.invalidateMethod(Edited);
  outs() << "\nuser edits " << Prog->describeMethod(Edited)
         << ": invalidated " << Before - DynSum.cacheSize() << " of "
         << Before << " summaries\n\n";
  uint64_t AfterEdit = RunAll("re-run after edit   (mostly warm)");

  // Contrast with a full cache drop (what a whole-program static
  // summary approach like STASUM must effectively redo on every edit).
  DynSum.clearCache();
  uint64_t AfterClear = RunAll("re-run, cache wiped (cold again)");

  outs() << "\nsummary: cold " << Cold << " -> warm " << Warm
         << " -> after one edit " << AfterEdit << " -> after full wipe "
         << AfterClear << " steps\n";
  outs() << "An edit costs only the difference between warm and "
            "mostly-warm; a static summary scheme pays the cold price.\n";
  outs().flush();
  return Warm <= Cold && AfterEdit <= AfterClear ? 0 : 1;
}
