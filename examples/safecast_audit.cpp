//===----------------------------------------------------------------------===//
///
/// \file
/// A realistic client session: audit every downcast in a generated
/// benchmark-sized program with the SafeCast client, comparing DYNSUM
/// against REFINEPTS, and print a findings report.
///
/// Run: build/examples/safecast_audit [--bench=soot-c] [--scale=0.02]
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "clients/Client.h"
#include "pag/PAGBuilder.h"
#include "support/CommandLine.h"
#include "support/OStream.h"
#include "support/PrettyTable.h"
#include "workload/Generator.h"

using namespace dynsum;
using namespace dynsum::analysis;
using namespace dynsum::clients;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::string Bench = CL.getString("bench", "soot-c");
  workload::GenOptions GO;
  GO.Scale = CL.getDouble("scale", 0.02);

  outs() << "Generating '" << Bench << "' at scale " << GO.Scale << "...\n";
  std::unique_ptr<ir::Program> Prog =
      workload::generateProgram(workload::specByName(Bench), GO);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);
  outs() << "  " << Prog->methods().size() << " methods, "
         << Built.Graph->numEdges() << " PAG edges, "
         << Prog->castSites().size() << " cast sites\n\n";

  SafeCastClient Client;
  std::vector<ClientQuery> Queries = Client.makeQueries(*Built.Graph, 0);
  outs() << "Auditing " << Queries.size() << " downcasts...\n\n";

  AnalysisOptions Opts;
  DynSumAnalysis DynSum(*Built.Graph, Opts);
  RefinePtsAnalysis Refine(*Built.Graph, Opts);

  PrettyTable T;
  T.row()
      .cell("analysis")
      .cell("safe")
      .cell("unsafe")
      .cell("unknown")
      .cell("steps")
      .cell("seconds");
  for (DemandAnalysis *A : std::initializer_list<DemandAnalysis *>{
           &DynSum, &Refine}) {
    ClientReport Rep = runClient(Client, *A, Queries);
    T.row()
        .cell(A->name())
        .cell(Rep.Proven)
        .cell(Rep.Refuted)
        .cell(Rep.Unknown)
        .cell(Rep.TotalSteps)
        .cell(Rep.Seconds, 3);
  }
  T.print(outs());

  // List a few concrete findings, the way an IDE inspection would.
  outs() << "\nSample findings (unsafe downcasts):\n";
  unsigned Shown = 0;
  for (const ClientQuery &Q : Queries) {
    if (Shown >= 5)
      break;
    QueryResult R = DynSum.query(Q.Node);
    if (Client.judge(*Built.Graph, Q, R) != Verdict::Refuted)
      continue;
    const ir::CastSite &Site = Prog->castSite(Q.Site);
    outs() << "  cast #" << Site.Id << " in "
           << Prog->describeMethod(Site.Owner) << ": ("
           << Prog->names().text(Prog->classOf(Site.Target).Name) << ") "
           << Prog->describeVar(Site.Source) << " may hold { ";
    for (ir::AllocId A : R.allocSites()) {
      outs() << Prog->names().text(
                    Prog->classOf(Prog->alloc(A).Type).Name)
             << ' ';
      if (&A - R.allocSites().data() > 3)
        break;
    }
    outs() << "}\n";
    ++Shown;
  }
  outs() << "\nDYNSUM answered from " << DynSum.cacheSize()
         << " dynamic summaries.\n";
  outs().flush();
  return 0;
}
