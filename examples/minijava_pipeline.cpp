//===----------------------------------------------------------------------===//
///
/// \file
/// Example: the full MiniJava pipeline — compile Java-like source down
/// to the pointer IR, build the PAG, and answer demand queries with
/// DYNSUM, watching the summary cache grow and get reused.
///
/// Run: build/examples/minijava_pipeline
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "frontend/Frontend.h"
#include "ir/Printer.h"
#include "pag/PAGBuilder.h"
#include "support/OStream.h"

using namespace dynsum;

namespace {

/// An event-listener registry: handlers are stored in a shared list and
/// dispatched virtually — a miniature of the workloads that make
/// context-sensitive points-to analysis interesting.
const char *kSource = R"(
  class Event {
    Object payload;
    Event(Object p) { this.payload = p; }
  }

  class Handler {
    Object handle(Event e) { return e.payload; }
  }

  class LoggingHandler extends Handler {
    Object sink;
    LoggingHandler(Object s) { this.sink = s; }
    Object handle(Event e) { return this.sink; }
  }

  class Bus {
    Handler[] handlers;
    int count;
    Bus() { this.handlers = new Handler[4]; }
    void subscribe(Handler h) { this.handlers[this.count] = h; }
    Object publish(Event e) {
      Handler h = this.handlers[0];
      return h.handle(e);
    }
  }

  class Main {
    static void main() {
      Object secret = new Object();
      Object logFile = new Object();

      Bus plainBus = new Bus();
      plainBus.subscribe(new Handler());
      Object fromPlain = plainBus.publish(new Event(secret));

      Bus logBus = new Bus();
      logBus.subscribe(new LoggingHandler(logFile));
      Object fromLog = logBus.publish(new Event(secret));
    }
  }
)";

pag::NodeId varNode(const ir::Program &P, const pag::PAG &G,
                    std::string_view Cls, std::string_view Method,
                    std::string_view Var) {
  ir::TypeId T = P.findClass(P.names().lookup(Cls));
  ir::MethodId M = P.findMethod(T, P.names().lookup(Method));
  Symbol N = P.names().lookup(Var);
  for (const ir::Variable &V : P.variables())
    if (!V.IsGlobal && V.Owner == M && V.Name == N)
      return G.nodeOfVar(V.Id);
  return 0;
}

void report(const ir::Program &P, const char *Var,
            const analysis::QueryResult &R, size_t CacheBefore,
            size_t CacheAfter) {
  outs() << "  pts(" << Var << ") = {";
  bool First = true;
  for (ir::AllocId A : R.allocSites()) {
    if (!First)
      outs() << ", ";
    First = false;
    outs() << P.describeAlloc(A);
  }
  outs() << "}  [" << R.Steps << " steps, cache " << uint64_t(CacheBefore)
         << " -> " << uint64_t(CacheAfter) << " summaries]\n";
}

} // namespace

int main() {
  // 1. Compile MiniJava source to the pointer IR.
  frontend::CompileResult Compiled = frontend::compileMiniJava(kSource);
  if (!Compiled.ok()) {
    errs() << "compilation failed:\n" << Compiled.Diags.str() << '\n';
    return 1;
  }
  const ir::Program &P = *Compiled.Prog;
  outs() << "compiled " << uint64_t(P.methods().size()) << " methods, "
         << uint64_t(P.allocs().size()) << " allocation sites\n";

  // 2. Build the PAG (CHA call graph, recursion collapsed).
  pag::BuiltPAG Built = pag::buildPAG(P);
  outs() << "PAG: " << uint64_t(Built.Graph->numNodes()) << " nodes\n\n";

  // 3. Demand queries with DYNSUM.
  analysis::AnalysisOptions Opts;
  analysis::DynSumAnalysis DynSum(*Built.Graph, Opts);

  outs() << "DYNSUM demand queries:\n";
  for (const char *Var : {"secret", "fromPlain", "fromLog"}) {
    size_t Before = DynSum.cacheSize();
    analysis::QueryResult R =
        DynSum.query(varNode(P, *Built.Graph, "Main", "main", Var));
    report(P, Var, R, Before, DynSum.cacheSize());
  }

  outs() << "\nThe second publish() query reuses the Bus/Handler summaries\n"
            "computed for the first one — the paper's local reachability\n"
            "reuse across different calling contexts.\n";
  return 0;
}
