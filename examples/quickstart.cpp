//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a tiny program through the public builder API, run
/// all four analyses on one query, and print what they say.
///
/// Run: build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/DynSum.h"
#include "analysis/RefinePts.h"
#include "ir/Builder.h"
#include "pag/PAGBuilder.h"
#include "support/OStream.h"

using namespace dynsum;
using namespace dynsum::analysis;

int main() {
  // 1. Build a program: a Holder stores whatever it is given; main puts
  //    two different objects into two different holders.
  ir::ProgramBuilder B;
  B.cls("Holder");
  B.cls("Apple");
  B.cls("Banana");

  ir::MethodId Put =
      B.method("put", {{"h", "Holder"}, {"v", ""}});
  B.store(Put, "h", "item", "v");

  ir::MethodId Get = B.method("get", {{"h", "Holder"}});
  B.load(Get, "r", "h", "item");
  B.ret(Get, "r");

  ir::MethodId Main = B.method("main");
  B.alloc(Main, "h1", "Holder", "oh1");
  B.alloc(Main, "h2", "Holder", "oh2");
  B.alloc(Main, "apple", "Apple", "oapple");
  B.alloc(Main, "banana", "Banana", "obanana");
  B.call(Main, "", "put", {"h1", "apple"});
  B.call(Main, "", "put", {"h2", "banana"});
  B.call(Main, "x", "get", {"h1"}); // x should be the apple only
  std::unique_ptr<ir::Program> Prog = B.takeProgram();

  // 2. Build the PAG (the graph every analysis consumes).
  pag::BuiltPAG Built = pag::buildPAG(*Prog);
  outs() << "PAG has " << Built.Graph->numNodes() << " nodes and "
         << Built.Graph->numEdges() << " edges\n\n";

  // 3. Ask "what may x point to?" with each analysis.
  pag::NodeId X = 0;
  for (const ir::Variable &V : Prog->variables())
    if (!V.IsGlobal && Prog->names().text(V.Name) == "x")
      X = Built.Graph->nodeOfVar(V.Id);

  AnalysisOptions Opts;
  DynSumAnalysis DynSum(*Built.Graph, Opts);
  RefinePtsAnalysis RefinePts(*Built.Graph, Opts, /*Refinement=*/true);
  RefinePtsAnalysis NoRefine(*Built.Graph, Opts, /*Refinement=*/false);

  for (DemandAnalysis *A : std::initializer_list<DemandAnalysis *>{
           &DynSum, &RefinePts, &NoRefine}) {
    QueryResult R = A->query(X);
    outs() << A->name() << ": pts(x) = { ";
    for (ir::AllocId Site : R.allocSites())
      outs() << Prog->describeAlloc(Site) << ' ';
    outs() << "}  in " << R.Steps << " steps\n";
  }

  // Andersen (exhaustive, context-insensitive) conflates the holders.
  AndersenAnalysis Andersen(*Built.Graph);
  Andersen.solve();
  outs() << "ANDERSEN: pts(x) = { ";
  for (ir::AllocId Site : Andersen.allocSites(X))
    outs() << Prog->describeAlloc(Site) << ' ';
  outs() << "}   <- context-insensitive over-approximation\n";

  outs() << "\nDYNSUM cached " << DynSum.cacheSize()
         << " method summaries while answering.\n";
  outs().flush();
  return 0;
}
