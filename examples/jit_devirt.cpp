//===----------------------------------------------------------------------===//
///
/// \file
/// Example: a JIT-style devirtualization pass driven by demand queries.
///
/// The paper motivates demand-driven analysis with "environments with
/// small time budgets, such as just-in-time (JIT) compilers".  This
/// example plays the JIT: for every virtual call site that CHA cannot
/// devirtualize, it asks DYNSUM for the receiver's points-to set under a
/// small budget and reports which sites become inlinable.
///
/// Run: build/examples/jit_devirt
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "clients/Client.h"
#include "frontend/Frontend.h"
#include "pag/PAGBuilder.h"
#include "support/OStream.h"

using namespace dynsum;

namespace {

/// A rendering pipeline: the Renderer hierarchy is polymorphic to CHA,
/// but most pipelines are constructed with exactly one renderer.
const char *kSource = R"(
  class Surface {}

  class Renderer {
    Surface target;
    Surface draw() { return this.target; }
  }
  class GlRenderer extends Renderer {
    Surface draw() { return this.target; }
  }
  class SoftwareRenderer extends Renderer {
    Surface draw() { return this.target; }
  }

  class Pipeline {
    Renderer renderer;
    Pipeline(Renderer r) { this.renderer = r; }
    Surface frame() {
      Renderer r = this.renderer;
      return r.draw();
    }
  }

  class Main {
    static Renderer pickAtRuntime(Renderer a, Renderer b) {
      if (true) { return a; }
      return b;
    }
    static void main() {
      // A hot, monomorphic call: CHA sees three draw() implementations,
      // but the receiver set is the singleton {GlRenderer}.
      Renderer solo = new GlRenderer();
      Surface s0 = solo.draw();

      // Two pipelines sharing Pipeline.frame(): the call inside frame()
      // merges both pipelines' renderers when queried context-freely.
      Pipeline gl = new Pipeline(new GlRenderer());
      Surface s1 = gl.frame();
      Pipeline sw = new Pipeline(new SoftwareRenderer());
      Surface s2 = sw.frame();

      // A genuinely polymorphic call the JIT must leave virtual.
      Renderer dyn = Main.pickAtRuntime(new GlRenderer(),
                                        new SoftwareRenderer());
      Surface s3 = dyn.draw();
    }
  }
)";

} // namespace

int main() {
  frontend::CompileResult Compiled = frontend::compileMiniJava(kSource);
  if (!Compiled.ok()) {
    errs() << "compilation failed:\n" << Compiled.Diags.str() << '\n';
    return 1;
  }
  const ir::Program &P = *Compiled.Prog;
  pag::BuiltPAG Built = pag::buildPAG(P);

  // A JIT works under a small budget; 2,000 edges is plenty here and
  // guarantees bounded compile-time overhead.
  analysis::AnalysisOptions Opts;
  Opts.BudgetPerQuery = 2000;
  analysis::DynSumAnalysis DynSum(*Built.Graph, Opts);

  clients::DevirtClient Devirt;
  std::vector<clients::ClientQuery> Sites = Devirt.makeQueries(*Built.Graph, 0);
  outs() << "CHA left " << uint64_t(Sites.size())
         << " polymorphic call sites; querying DYNSUM:\n\n";

  unsigned Inlined = 0;
  for (const clients::ClientQuery &Q : Sites) {
    analysis::QueryResult R = DynSum.query(Q.Node);
    const ir::CallSite &Site = P.callSite(Q.Site);
    outs() << "  call site in " << P.describeMethod(Site.Caller) << " (line "
           << Site.Label << "): ";
    switch (Devirt.judge(*Built.Graph, Q, R)) {
    case clients::Verdict::Proven: {
      auto Targets = clients::DevirtClient::dispatchTargets(*Built.Graph, Q, R);
      outs() << "DEVIRTUALIZE -> "
             << (Targets.empty() ? std::string("<unreachable>")
                                 : P.describeMethod(Targets[0]))
             << " (" << R.Steps << " steps)\n";
      ++Inlined;
      break;
    }
    case clients::Verdict::Refuted:
      outs() << "stays virtual (receiver set is polymorphic)\n";
      break;
    case clients::Verdict::Unknown:
      outs() << "stays virtual (budget exhausted)\n";
      break;
    }
  }

  outs() << '\n'
         << Inlined << " of " << uint64_t(Sites.size())
         << " sites devirtualized; summary cache holds "
         << uint64_t(DynSum.cacheSize())
         << " reusable method summaries for the next compilation.\n\n"
         << "Note how the call inside the *shared* Pipeline.frame stays\n"
            "virtual: a context-free receiver query merges every\n"
            "pipeline's renderer.  Specializing it would need one query\n"
            "per calling context, which is exactly the per-context\n"
            "traversal DYNSUM's summaries make cheap.\n";
  return 0;
}
