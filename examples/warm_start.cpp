//===----------------------------------------------------------------------===//
///
/// \file
/// Example: persisting DYNSUM summaries across "compiler runs".
///
/// A JIT or IDE restarts constantly; recomputing every summary each
/// time wastes the work the previous run already did.  This example
/// simulates two runs of a tool on the same program: the first answers
/// a query batch cold and saves its summary cache to disk; the second
/// loads the cache and answers the same batch with a fraction of the
/// traversal steps.
///
/// Run: build/examples/warm_start
///
//===----------------------------------------------------------------------===//

#include "analysis/DynSum.h"
#include "analysis/SummaryIO.h"
#include "pag/PAGBuilder.h"
#include "support/OStream.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace dynsum;
using namespace dynsum::analysis;

namespace {

/// One "compiler run": build the program and PAG, optionally load a
/// summary file, answer the batch, optionally save.  Returns the total
/// step count.
uint64_t run(const char *Label, const std::string &CachePath, bool Load,
             bool Save) {
  workload::GenOptions Gen;
  Gen.Scale = 1.0 / 64;
  auto Prog = workload::generateProgram(workload::specByName("jython"), Gen);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);
  DynSumAnalysis DynSum(*Built.Graph, AnalysisOptions());

  if (Load) {
    if (loadSummariesFile(DynSum, CachePath))
      outs() << Label << ": loaded " << uint64_t(DynSum.cacheSize())
             << " summaries from " << CachePath << '\n';
    else
      outs() << Label << ": no usable summary file, starting cold\n";
  }

  uint64_t Steps = 0;
  unsigned Queries = 0;
  for (const ir::Variable &V : Prog->variables()) {
    if (V.IsGlobal || V.Id % 101 != 0)
      continue;
    Steps += DynSum.query(Built.Graph->nodeOfVar(V.Id)).Steps;
    ++Queries;
  }
  outs() << Label << ": " << Queries << " queries, " << Steps << " steps, "
         << uint64_t(DynSum.cacheSize()) << " summaries cached\n";

  if (Save && saveSummariesFile(DynSum, CachePath))
    outs() << Label << ": saved summaries to " << CachePath << '\n';
  return Steps;
}

} // namespace

int main() {
  std::string CachePath = "/tmp/dynsum_warm_start.bin";
  std::remove(CachePath.c_str());

  outs() << "--- run 1 (cold) ---\n";
  uint64_t Cold = run("run1", CachePath, /*Load=*/false, /*Save=*/true);

  outs() << "\n--- run 2 (warm) ---\n";
  uint64_t Warm = run("run2", CachePath, /*Load=*/true, /*Save=*/false);

  outs() << "\nwarm start removed "
         << (Cold == 0 ? 0 : (Cold - Warm) * 100 / Cold)
         << "% of the traversal steps.\n";
  std::remove(CachePath.c_str());
  return 0;
}
