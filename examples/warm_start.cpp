//===----------------------------------------------------------------------===//
///
/// \file
/// Example: persisting batch-engine summaries across "compiler runs".
///
/// A JIT or IDE restarts constantly; recomputing every summary each
/// time wastes the work the previous run already did.  This example
/// simulates two runs of a tool on the same program: the first answers
/// a query batch cold through the parallel batch engine and saves the
/// engine's shared summary store to disk; the second loads the store
/// back (warm start through SummaryIO) and answers the same batch with
/// a fraction of the summary computations.
///
/// Run: build/examples/warm_start
///
//===----------------------------------------------------------------------===//

#include "engine/QueryScheduler.h"
#include "pag/PAGBuilder.h"
#include "support/OStream.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace dynsum;
using namespace dynsum::engine;

namespace {

/// One "compiler run": build the program and PAG, optionally load the
/// summary store, answer the batch, optionally save.  Returns the total
/// step count.
uint64_t run(const char *Label, const std::string &CachePath, bool Load,
             bool Save) {
  workload::GenOptions Gen;
  Gen.Scale = 1.0 / 64;
  auto Prog = workload::generateProgram(workload::specByName("jython"), Gen);
  pag::BuiltPAG Built = pag::buildPAG(*Prog);

  EngineOptions Opts;
  Opts.NumThreads = 4;
  QueryScheduler Scheduler(*Built.Graph, Opts);

  if (Load) {
    if (Scheduler.loadSummaries(CachePath))
      outs() << Label << ": loaded " << uint64_t(Scheduler.store().size())
             << " summaries from " << CachePath << '\n';
    else
      outs() << Label << ": no usable summary file, starting cold\n";
  }

  QueryBatch Batch;
  for (const ir::Variable &V : Prog->variables()) {
    if (V.IsGlobal || V.Id % 101 != 0)
      continue;
    Batch.add(Built.Graph->nodeOfVar(V.Id));
  }
  BatchResult R = Scheduler.run(Batch);
  outs() << Label << ": " << uint64_t(Batch.size()) << " queries over "
         << R.Stats.ThreadsUsed << " threads, " << R.Stats.TotalSteps
         << " steps, " << R.Stats.SummariesComputed
         << " summaries computed, " << R.Stats.SharedHits
         << " shared-store hits, " << uint64_t(R.Stats.StoreSize)
         << " summaries stored\n";

  if (Save && Scheduler.saveSummaries(CachePath))
    outs() << Label << ": saved summary store to " << CachePath << '\n';
  return R.Stats.TotalSteps;
}

} // namespace

int main() {
  std::string CachePath = "/tmp/dynsum_warm_start.bin";
  std::remove(CachePath.c_str());

  outs() << "--- run 1 (cold) ---\n";
  uint64_t Cold = run("run1", CachePath, /*Load=*/false, /*Save=*/true);

  outs() << "\n--- run 2 (warm) ---\n";
  uint64_t Warm = run("run2", CachePath, /*Load=*/true, /*Save=*/false);

  outs() << "\nwarm start removed "
         << (Cold == 0 ? 0 : (Cold - Warm) * 100 / Cold)
         << "% of the traversal steps.\n";
  std::remove(CachePath.c_str());
  return 0;
}
